"""Recovery policies: what the platform *does* about faults.

The paper's adaptivity claim (sections 3, 4.3) is that the DRCR reacts
to run-time failure "without breaking the contracts of already-admitted
components".  This module packages the three recovery behaviours the
fault-injection subsystem exercises:

* :class:`BackoffPolicy` -- capped exponential backoff (+jitter) for
  bridge command retries
  (:meth:`repro.hybrid.bridge.CommandBridge.send_command_reliable`);
* :class:`QuarantinePolicy` -- the DRCR's quarantine/re-admission
  lifecycle: a faulting component goes DISABLED, is automatically
  re-enabled after a cool-down, and is quarantined permanently after
  ``max_failures`` faults;
* :class:`GracefulDegradationService` -- a resolving service that sheds
  the lowest-importance admitted components (largest priority number;
  lower number = higher priority throughout the repo) when a CPU's
  declared utilization exceeds its cap.
"""

from repro.core.lifecycle import ComponentState
from repro.core.resolving import Decision, ResolvingService


class BackoffPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay_ns(attempt)`` returns the wait before retry number
    ``attempt`` (1-based: the delay after the first failed try).
    Jitter (a symmetric ``±jitter`` fraction) draws from the stream the
    caller passes, so retry schedules reproduce under a fixed seed.
    """

    def __init__(self, initial_ns=1_000_000, factor=2.0,
                 max_delay_ns=100_000_000, max_attempts=6, jitter=0.1):
        if initial_ns <= 0:
            raise ValueError("initial delay must be positive")
        if factor < 1.0:
            raise ValueError("factor must be >= 1.0")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.initial_ns = int(initial_ns)
        self.factor = float(factor)
        self.max_delay_ns = int(max_delay_ns)
        self.max_attempts = int(max_attempts)
        self.jitter = float(jitter)

    def delay_ns(self, attempt, stream=None):
        """Delay before retry ``attempt`` (1-based), jittered if a
        ``random.Random`` stream is given."""
        if attempt < 1:
            raise ValueError("attempt is 1-based, got %r" % (attempt,))
        delay = self.initial_ns * (self.factor ** (attempt - 1))
        delay = min(delay, float(self.max_delay_ns))
        if stream is not None and self.jitter:
            delay *= 1.0 + stream.uniform(-self.jitter, self.jitter)
        return max(1, int(delay))

    def __repr__(self):
        return ("BackoffPolicy(initial=%dns, x%.1f, cap=%dns, "
                "max_attempts=%d)"
                % (self.initial_ns, self.factor, self.max_delay_ns,
                   self.max_attempts))


class QuarantinePolicy:
    """Failure accounting for the DRCR's quarantine lifecycle.

    The DRCR (when given a policy via
    :meth:`~repro.core.drcr.DRCR.set_recovery_policy`) quarantines a
    faulting component to DISABLED, schedules re-enablement after
    ``cooldown_ns``, and stops re-admitting once the component has
    faulted ``max_failures`` times (an operator can still
    ``enableRTComponent`` it manually).
    """

    def __init__(self, cooldown_ns=100_000_000, max_failures=3):
        if cooldown_ns <= 0:
            raise ValueError("cooldown must be positive")
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        self.cooldown_ns = int(cooldown_ns)
        self.max_failures = int(max_failures)
        #: component name -> lifetime fault count.
        self.failures = {}

    def record_failure(self, name):
        """Count one fault; returns the component's new total."""
        self.failures[name] = self.failures.get(name, 0) + 1
        return self.failures[name]

    def is_permanent(self, name):
        """Whether the component exhausted its re-admission budget."""
        return self.failures.get(name, 0) >= self.max_failures

    def forgive(self, name):
        """Reset one component's fault count (operator pardon)."""
        self.failures.pop(name, None)

    def __repr__(self):
        return "QuarantinePolicy(cooldown=%dns, max_failures=%d)" % (
            self.cooldown_ns, self.max_failures)


def _importance_key(component):
    """Sort key: largest = least important (shed first).

    Lower priority *number* means higher importance, so the
    least-important admitted component is the max of
    ``(priority, name)``; the name tie-break keeps shedding
    deterministic.
    """
    return (component.contract.priority, component.name)


def shed_lowest_priority(drcr, cpu=None):
    """One-shot graceful degradation: disable the least-important
    admitted component (optionally restricted to one CPU).

    Returns the shed component's name, or ``None`` when nothing is
    admitted.  The freed budget is redistributed by the reconfiguration
    ``disable_component`` triggers.
    """
    candidates = [component for component in drcr.registry.active()
                  if cpu is None or component.contract.cpu == cpu]
    if not candidates:
        return None
    victim = max(candidates, key=_importance_key)
    drcr.disable_component(victim.name)
    return victim.name


class GracefulDegradationService(ResolvingService):
    """A resolving service that sheds load instead of thrashing.

    On revalidation it checks the component's CPU: while the declared
    utilization exceeds ``cap``, the least-important admitted
    components (largest priority number, name tie-break) are marked for
    shedding; a component in that shed set loses its admission.
    Admission enforces the same cap (a shed component must not bounce
    straight back in -- the reconfiguration fixpoint would oscillate).

    Register it in OSGi under
    :data:`~repro.core.resolving.RESOLVING_SERVICE_INTERFACE` and lower
    :attr:`cap` at run time (then call ``drcr.reconfigure()``) to
    degrade gracefully.
    """

    name = "graceful-degradation"

    def __init__(self, cap=1.0):
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.cap = float(cap)
        #: Names shed by the most recent revalidation sweep.
        self.shed = []

    def admit(self, candidate, view):
        cpu = candidate.contract.cpu
        total = view.declared_utilization(cpu, include_candidate=True)
        if total > self.cap:
            return Decision.no(
                "cpu %d would exceed degradation cap %.2f "
                "(%.2f declared)" % (cpu, self.cap, total))
        return Decision.yes("within degradation cap")

    def revalidate(self, component, view):
        cpu = component.contract.cpu
        admitted = [peer for peer in view.registry.active()
                    if peer.contract.cpu == cpu
                    and peer.state is not ComponentState.DEACTIVATING]
        total = sum(peer.contract.cpu_usage for peer in admitted)
        if total <= self.cap:
            return Decision.yes("cpu %d within budget" % cpu)
        victims = set()
        remaining = sorted(admitted, key=_importance_key)
        while remaining and total > self.cap:
            victim = remaining.pop()  # least important last
            victims.add(victim.name)
            total -= victim.contract.cpu_usage
        self.shed = sorted(victims)
        if component.name in victims:
            return Decision.no(
                "shed: cpu %d over budget (cap %.2f), lowest-priority "
                "components go first" % (cpu, self.cap))
        return Decision.yes("survives degradation")
