"""The fault engine: arms a :class:`FaultPlan` against a platform.

One :class:`FaultEngine` owns a chaos experiment: it installs the
plan's recovery machinery (watchdog, quarantine policy), intercepts
container creation and descriptor parsing for the injectors that need
it, schedules every timed injector, and keeps the authoritative record
of what was actually injected.

Observability: every injection lands in the ``faults`` metrics
registry (``injected_total``, ``injected_<kind>_total``,
``skipped_total``, ``overrun_jobs_total``) and as a ``fault_inject``
trace row, so a chaos run reads exactly like any other run in the
Chrome trace and the system report (see ``docs/FAULT_INJECTION.md``).

Determinism: the engine draws from its own
:class:`~repro.sim.rng.RandomStreams` rooted at ``plan.seed`` --
independent of the simulation's master seed -- so the same plan
produces the same fault schedule on any platform.
"""

from repro.faults.injectors import make_injector
from repro.faults.plan import load_plan
from repro.faults.recovery import QuarantinePolicy
from repro.rtos.watchdog import Watchdog
from repro.sim.rng import RandomStreams


class FaultEngine:
    """Arms and tracks one fault plan on one platform."""

    def __init__(self, platform, plan, cluster=None):
        self.platform = platform
        #: The :class:`~repro.cluster.federation.Cluster` for
        #: federation-scope faults (``node_crash``/``partition``);
        #: ``platform`` is then typically one of its nodes.
        self.cluster = cluster
        self.plan = load_plan(plan)
        self.sim = platform.sim
        self.kernel = platform.kernel
        self.drcr = platform.drcr
        self.streams = RandomStreams(self.plan.seed)
        #: (time_ns, kind, target, detail-dict) per actual injection.
        self.injections = []
        #: (time_ns, kind, reason) per skipped injection.
        self.skips = []
        self.watchdog = None
        self._armed = False
        self._original_factory = None
        self._descriptor_filters = []
        self._injectors = [make_injector(spec, index)
                           for index, spec in enumerate(self.plan.faults)]
        self._factory_injectors = [injector
                                   for injector in self._injectors
                                   if injector.factory_kind]
        metrics = platform.telemetry.registry("faults")
        self._metrics = metrics
        self._m_injected = metrics.counter("injected_total")
        self._m_skipped = metrics.counter("skipped_total")
        self._m_overrun_jobs = metrics.counter("overrun_jobs_total")

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def arm(self):
        """Install recovery machinery and schedule every injector
        (idempotent).  Returns self for chaining."""
        if self._armed:
            return self
        self._armed = True
        if self.plan.quarantine is not None:
            self.drcr.set_recovery_policy(
                QuarantinePolicy(**self.plan.quarantine))
        if self.plan.watchdog is not None:
            self.watchdog = Watchdog(self.kernel,
                                     **self.plan.watchdog).start()
        if self._factory_injectors:
            self._original_factory = self.drcr._container_factory
            self.drcr._container_factory = self._intercept_factory
        for injector in self._injectors:
            injector.arm(self)
        return self

    def disarm(self):
        """Stop the watchdog and remove the interception points.

        Already-scheduled injector events stay scheduled (the simulator
        has no retraction API for third parties); tests that need a
        clean platform build a fresh one instead.
        """
        if not self._armed:
            return
        self._armed = False
        if self.watchdog is not None:
            self.watchdog.stop()
        if self._original_factory is not None:
            self.drcr._container_factory = self._original_factory
            self._original_factory = None
        if self.drcr.descriptor_filter is self._filter_descriptor:
            self.drcr.descriptor_filter = None

    # ------------------------------------------------------------------
    # interception points
    # ------------------------------------------------------------------
    def _intercept_factory(self, component, drcr):
        container = self._original_factory(component, drcr)
        for injector in self._factory_injectors:
            container = injector.wrap_container(self, component,
                                                container)
        return container

    def add_descriptor_filter(self, filter_fn):
        """Register a descriptor corruption filter (installs the DRCR
        hook on first use)."""
        if not self._descriptor_filters:
            self.drcr.descriptor_filter = self._filter_descriptor
        self._descriptor_filters.append(filter_fn)

    def _filter_descriptor(self, xml_text, bundle, path):
        for filter_fn in self._descriptor_filters:
            xml_text = filter_fn(self, xml_text, bundle, path)
        return xml_text

    # ------------------------------------------------------------------
    # accounting (called by injectors)
    # ------------------------------------------------------------------
    def stream_for(self, index):
        """The plan-seeded random stream of injector ``index``."""
        return self.streams.stream("fault/%d" % index)

    def record_injection(self, spec, **detail):
        """Count + trace one actual perturbation."""
        now = self.kernel.now
        self.injections.append((now, spec.kind.value,
                                detail.get("target", spec.target),
                                detail))
        self._m_injected.inc()
        self._metrics.counter(
            "injected_%s_total" % spec.kind.value).inc()
        self.sim.trace.record(now, "fault_inject", kind=spec.kind.value,
                              plan=self.plan.name, **detail)

    def record_skip(self, spec, reason):
        """Count one injection that found no purchase."""
        self.skips.append((self.kernel.now, spec.kind.value, reason))
        self._m_skipped.inc()

    def count_overrun_job(self):
        """Count one job whose compute time was inflated."""
        self._m_overrun_jobs.inc()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self):
        """Plain-data summary of the experiment so far."""
        return {
            "plan": self.plan.name,
            "seed": self.plan.seed,
            "injections": [
                {"time_ns": time_ns, "kind": kind, "target": target,
                 **detail}
                for time_ns, kind, target, detail in self.injections
            ],
            "skips": [
                {"time_ns": time_ns, "kind": kind, "reason": reason}
                for time_ns, kind, reason in self.skips
            ],
            "watchdog_interventions": (
                len(self.watchdog.interventions)
                if self.watchdog is not None else 0),
        }

    def format_report(self):
        """Human-readable experiment summary (printed by the CLI)."""
        lines = ["fault plan %r (seed %d): %d injected, %d skipped"
                 % (self.plan.name, self.plan.seed,
                    len(self.injections), len(self.skips))]
        for time_ns, kind, target, detail in self.injections:
            extra = ", ".join(
                "%s=%s" % (key, value)
                for key, value in sorted(detail.items())
                if key != "target")
            lines.append("  %12d ns  %-20s %s%s"
                         % (time_ns, kind, target,
                            "  (%s)" % extra if extra else ""))
        if self.watchdog is not None:
            lines.append("  watchdog: %d interventions (policy %s)"
                         % (len(self.watchdog.interventions),
                            self.watchdog.policy))
        return "\n".join(lines)

    def __repr__(self):
        return "FaultEngine(%s, %s, %d injected)" % (
            self.plan.name, "armed" if self._armed else "idle",
            len(self.injections))
