"""Experiment A7 -- the other half of Table 1: user-space delivery.

Table 1 shows that Linux load cannot touch the *RT side*.  The
complementary fact -- which the paper's split architecture (section 3)
silently relies on -- is that the *user-space* side is exactly as
vulnerable as plain Linux: data exported from the RT domain through a
FIFO reaches its user-space consumer promptly on an idle system and
tens of milliseconds late under the stress workload.

This is why the paper keeps the management/adaptation parts in the
non-RT container but the *data path* entirely in the RT domain
(section 3.3): anything crossing into user space inherits Linux's
latency.
"""

import pytest

from repro.rtos.load import apply_stress
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml, noisy_platform, run_once

EXPORTER_XML = make_descriptor_xml(
    "EXPRT0", cpuusage=0.02, frequency=1000, priority=2,
    outports=[("EXPFIF", "RTAI.FIFO", "Integer", 8192)])


def run_mode(stress, seed=8):
    platform = noisy_platform(seed=seed)
    deploy(platform, EXPORTER_XML, "a7.exporter")
    fifo = platform.kernel.lookup("EXPFIF")
    received = []
    fifo.set_user_handler(received.extend)
    # The synthetic implementation writes one record per job... it
    # writes outports automatically; nothing else to wire.
    if stress:
        apply_stress(platform.kernel)
    task = platform.kernel.lookup("EXPRT0")
    platform.run_for(50 * MSEC)
    fifo.delivery_latencies_ns.clear()
    platform.run_for(2 * SEC)
    latencies = fifo.delivery_latencies_ns
    return {
        "mean_ms": sum(latencies) / len(latencies) / 1e6,
        "max_ms": max(latencies) / 1e6,
        "samples": len(latencies),
        "rt_misses": task.stats.deadline_misses,
        "fifo_drops": fifo.dropped_count,
    }


@pytest.mark.benchmark(group="fifo-userspace")
def test_userspace_delivery_asymmetry(benchmark):
    def experiment():
        return {
            "light": run_mode(stress=False),
            "stress": run_mode(stress=True),
        }

    results = run_once(benchmark, experiment)
    print("\nA7 -- RT->user-space delivery via FIFO (1 kHz exporter):")
    print("%-8s %12s %12s %10s %10s %8s"
          % ("mode", "mean[ms]", "max[ms]", "samples", "rt-misses",
             "drops"))
    for label, r in results.items():
        print("%-8s %12.3f %12.3f %10d %10d %8d"
              % (label, r["mean_ms"], r["max_ms"], r["samples"],
                 r["rt_misses"], r["fifo_drops"]))
    benchmark.extra_info["results"] = results

    light, stress = results["light"], results["stress"]

    # The RT producer is untouched in both modes.
    assert light["rt_misses"] == 0
    assert stress["rt_misses"] == 0
    assert light["fifo_drops"] == 0
    assert stress["fifo_drops"] == 0

    # User-space delivery is prompt when Linux idles...
    assert light["mean_ms"] < 0.5
    # ...and degrades by more than an order of magnitude under stress.
    assert stress["mean_ms"] > 10 * light["mean_ms"]
    assert stress["max_ms"] > 5.0
