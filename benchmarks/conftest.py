"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper's evaluation
(see DESIGN.md, "Experiment index") and asserts the *shape* of the
result -- who wins, by what rough factor, where the crossovers are --
rather than absolute numbers.
"""

from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC


def make_descriptor_xml(name, *, task_type="periodic", enabled=True,
                        cpuusage=0.05, frequency=1000, priority=2, cpu=0,
                        outports=(), inports=(), properties=(),
                        deadline_ns=None, bincode=None):
    """Compose DRCom descriptor XML (same shape as the test helper)."""
    lines = ['<?xml version="1.0" encoding="UTF-8"?>']
    lines.append(
        '<drt:component name="%s" desc="bench component" type="%s" '
        'enabled="%s" cpuusage="%s">'
        % (name, task_type, "true" if enabled else "false", cpuusage))
    lines.append('  <implementation bincode="%s"/>'
                 % (bincode or "bench.%s.Impl" % name))
    if task_type == "periodic":
        deadline = (' deadline_ns="%d"' % deadline_ns) if deadline_ns \
            else ""
        lines.append('  <periodictask frequence="%s" runoncpu="%d" '
                     'priority="%d"%s/>'
                     % (frequency, cpu, priority, deadline))
    else:
        lines.append('  <aperiodictask runoncpu="%d" priority="%d"/>'
                     % (cpu, priority))
    for pname, iface, dtype, size in outports:
        lines.append('  <outport name="%s" interface="%s" type="%s" '
                     'size="%d"/>' % (pname, iface, dtype, size))
    for pname, iface, dtype, size in inports:
        lines.append('  <inport name="%s" interface="%s" type="%s" '
                     'size="%d"/>' % (pname, iface, dtype, size))
    for pname, ptype, value in properties:
        lines.append('  <property name="%s" type="%s" value="%s"/>'
                     % (pname, ptype, value))
    lines.append("</drt:component>")
    return "\n".join(lines)


def deploy(platform, xml, bundle_name):
    """Install + start a one-descriptor bundle."""
    return platform.install_and_start(
        {"Bundle-SymbolicName": bundle_name,
         "RT-Component": "OSGI-INF/c.xml"},
        resources={"OSGI-INF/c.xml": xml})


def quiet_platform(seed=0, **kwargs):
    """Platform with the zero-jitter latency model (exact scheduling)."""
    kwargs.setdefault("kernel_config",
                      KernelConfig(latency_model=NullLatencyModel()))
    platform = build_platform(seed=seed, **kwargs)
    platform.start_timer(1 * MSEC)
    return platform


def noisy_platform(seed=0, **kwargs):
    """Platform with the calibrated Table-1 latency model."""
    platform = build_platform(seed=seed, **kwargs)
    platform.start_timer(1 * MSEC)
    return platform


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The simulations are deterministic, so statistical repetition adds
    nothing but wall-clock time; one round measures the cost honestly.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
