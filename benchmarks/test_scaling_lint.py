"""Scaling: deployment-plan lint cost vs fleet size.

The DRT6xx family re-derives placement, N-1 failover and cross-node
wiring for a whole fleet, and the ``PlanGuard`` runs it on the deploy
path -- so its cost must stay comfortably sub-quadratic in the
component count or plan-gated deployment stops scaling.  This
benchmark ladders synthetic plans at 16/64/256 components (override
with ``LINT_PLAN_SIZES=16,64``), measures a full ``lint_plan`` pass
(all six families: per-node contract/wiring/admission units plus the
plan topology checks), and records the growth exponent
``log(t_max/t_min) / log(n_max/n_min)`` in ``BENCH_lint.json`` --
guarded by ``check_scaling_guardrail.py`` against the committed
baseline (hard cap: exponent < 2.0).
"""

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.core.descriptor import ComponentDescriptor
from repro.core.ports import PortDirection, PortSpec
from repro.lint import lint_plan
from repro.rtos.task import TaskType

from conftest import run_once

DEFAULT_PLAN_SIZES = (16, 64, 256)
REPEATS = 3
RESULT_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_lint.json"


def plan_sizes():
    override = os.environ.get("LINT_PLAN_SIZES")
    if not override:
        return DEFAULT_PLAN_SIZES
    return tuple(int(part) for part in override.split(",") if part)


def build_plan(count):
    """A clean synthetic plan: ``count`` components over
    ``max(2, count // 8)`` nodes, every third trio wired as an
    application, per-node load 0.4 (so N-1 placement has real work to
    do and still succeeds), plus one adaptation rule per plan."""
    node_count = max(2, count // 8)
    nodes = [{"name": "node%03d" % index, "num_cpus": 1}
             for index in range(node_count)]
    per_node = {}
    for index in range(count):
        per_node.setdefault(index % node_count, []).append(index)
    usage_of = {node: 0.4 / len(members)
                for node, members in per_node.items()}
    deployments = []
    applications = {}
    for node_index in sorted(per_node):
        components = []
        members = per_node[node_index]
        for position, index in enumerate(members):
            name = "C%05d" % index
            ports = []
            # Chain trios inside one node into a wired application.
            trio = position // 3
            if position % 3 in (0, 1) and position + 1 < len(members):
                ports.append(PortSpec(
                    "P%05d" % index, PortDirection.OUT, "RTAI.SHM",
                    "Integer", 2))
            if position % 3 in (1, 2):
                ports.append(PortSpec(
                    "P%05d" % (index - node_count), PortDirection.IN,
                    "RTAI.SHM", "Integer", 2))
            components.append({"xml": ComponentDescriptor(
                name=name, implementation="bench.C%05d" % index,
                task_type=TaskType.PERIODIC,
                cpu_usage=usage_of[node_index],
                frequency_hz=10.0, priority=10 + position,
                description="benchmark plan component",
                ports=ports).to_xml()})
            app = "app%03d_%02d" % (node_index, trio)
            applications.setdefault(app, []).append(name)
        deployments.append({"node": "node%03d" % node_index,
                            "components": components})
    applications = {app: members
                    for app, members in applications.items()
                    if len(members) > 1}
    return {
        "plan_version": 1,
        "name": "bench-%d" % count,
        "nodes": nodes,
        "deployments": deployments,
        "applications": applications,
        "rules": [{"document": {"schema_version": 1, "rules": [{
            "name": "bench-guard",
            "priority": 10,
            "when": {"param": "deadline_miss_rate", "op": ">",
                     "value": 0.05, "node": "node000",
                     "for_epochs": 2},
            "then": [{"action": "rebalance", "node": "node000",
                      "count": 1}],
            "cooldown_ns": 100_000_000,
        }]}}],
    }


def measure(count):
    plan = build_plan(count)
    best = None
    diagnostics = 0
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = lint_plan(plan)
        elapsed = time.perf_counter() - start
        diagnostics = len(result.diagnostics)
        best = elapsed if best is None else min(best, elapsed)
    return {
        "components": count,
        "nodes": max(2, count // 8),
        "lint_ms": best * 1e3,
        "diagnostics": diagnostics,
    }


@pytest.mark.benchmark(group="scaling")
def test_lint_scaling(benchmark):
    sizes = plan_sizes()

    def experiment():
        return [measure(count) for count in sizes]

    rows = run_once(benchmark, experiment)
    print("\nplan-lint scaling (full six-family lint_plan):")
    print("%12s %8s %12s %12s"
          % ("components", "nodes", "lint[ms]", "diagnostics"))
    for row in rows:
        print("%12d %8d %12.2f %12d"
              % (row["components"], row["nodes"], row["lint_ms"],
                 row["diagnostics"]))

    small, large = rows[0], rows[-1]
    growth_exponent = (
        math.log(max(large["lint_ms"], 1e-9)
                 / max(small["lint_ms"], 1e-9))
        / math.log(large["components"] / small["components"]))
    print("growth exponent %.2f over %d -> %d components"
          % (growth_exponent, small["components"],
             large["components"]))

    document = {
        "benchmark": "lint",
        "component_sizes": list(sizes),
        "rows": rows,
        "growth_exponent": growth_exponent,
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    benchmark.extra_info["rows"] = rows

    # The synthetic plans are defect-free: any finding is a bug in
    # the generator or the analyzers.
    assert all(row["diagnostics"] == 0 for row in rows)
    # The whole point: plan lint must stay sub-quadratic.
    assert growth_exponent < 2.0
