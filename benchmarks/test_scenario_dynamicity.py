"""Experiment S1 -- the section 4.3 dynamicity scenario.

"Component Display needs component Calcuation's output to satisfy its
functional constraints. ... When both services return positive results,
the DRCR will create and activate the component Display's instance.
While if component Calcuation is stopped, the DRCR gets notified about
this event and consults its internal resolving service and the external
customized service again ... the DRCR will find component Display's
instance is unsatisfied and should be disabled."

This benchmark replays the scenario, asserts the exact DRCR decision
sequence, verifies that the customized resolving service was consulted
at each step, and times the full replay.
"""

import pytest

from repro.core import (
    RESOLVING_SERVICE_INTERFACE,
    ComponentEventType,
    ComponentState,
    Decision,
    ResolvingService,
)
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml, quiet_platform, run_once

CALC_XML = make_descriptor_xml(
    "CALC00", cpuusage=0.03, frequency=1000, priority=2,
    outports=[("LATDAT", "RTAI.SHM", "Integer", 4)])
DISP_XML = make_descriptor_xml(
    "DISP00", cpuusage=0.01, frequency=250, priority=3,
    inports=[("LATDAT", "RTAI.SHM", "Integer", 4)])


class CountingResolvingService(ResolvingService):
    """The 'external customized service' of the scenario; accepts
    everything but records every consultation."""

    name = "external-customized"

    def __init__(self):
        self.admit_calls = []
        self.revalidate_calls = []

    def admit(self, candidate, view):
        self.admit_calls.append(candidate.name)
        return Decision.yes("external ok")

    def revalidate(self, component, view):
        self.revalidate_calls.append(component.name)
        return Decision.yes("still ok")


def run_scenario():
    platform = quiet_platform(seed=43)
    external = CountingResolvingService()
    platform.framework.registry.register(
        RESOLVING_SERVICE_INTERFACE, external)

    trace = {}
    # Display first: functional constraint unmet.
    deploy(platform, DISP_XML, "scenario.display")
    trace["display_alone"] = platform.drcr.component_state("DISP00")
    # Calculation arrives: both activate.
    calc_bundle = deploy(platform, CALC_XML, "scenario.calc")
    trace["after_calc"] = (platform.drcr.component_state("CALC00"),
                           platform.drcr.component_state("DISP00"))
    platform.run_for(100 * MSEC)
    # Calculation stops: DRCR notified, display unsatisfied.
    calc_bundle.stop()
    trace["after_stop"] = platform.drcr.component_state("DISP00")
    # Calculation returns: display reactivates.
    calc_bundle.start()
    trace["after_restart"] = platform.drcr.component_state("DISP00")
    platform.run_for(100 * MSEC)
    return platform, external, trace


@pytest.mark.benchmark(group="scenario")
def test_section_4_3_dynamicity(benchmark):
    platform, external, trace = run_once(benchmark, run_scenario)

    # -- the narrated state sequence ------------------------------------
    assert trace["display_alone"] is ComponentState.UNSATISFIED
    assert trace["after_calc"] == (ComponentState.ACTIVE,
                                   ComponentState.ACTIVE)
    assert trace["after_stop"] is ComponentState.UNSATISFIED
    assert trace["after_restart"] is ComponentState.ACTIVE

    # -- exact DRCR event sequence for the Display component ------------
    sequence = [e.event_type for e in
                platform.drcr.events.for_component("DISP00")]
    assert sequence == [
        ComponentEventType.REGISTERED,
        ComponentEventType.SATISFIED,     # calc arrived, both said yes
        ComponentEventType.ACTIVATED,
        ComponentEventType.DEACTIVATED,   # calc stopped
        ComponentEventType.UNSATISFIED,
        ComponentEventType.SATISFIED,     # calc restarted
        ComponentEventType.ACTIVATED,
    ]

    # -- the customized service was consulted for every admission -------
    assert external.admit_calls.count("DISP00") == 2
    assert external.admit_calls.count("CALC00") == 2
    # ...and revalidated on context changes.
    assert external.revalidate_calls

    print("\nSection 4.3 scenario replay:")
    for event in platform.drcr.events:
        print("  t=%-12d %-20s %-8s %s"
              % (event.time, event.event_type.value, event.component,
                 event.reason))
    benchmark.extra_info["events"] = len(list(platform.drcr.events))


@pytest.mark.benchmark(group="scenario")
def test_dynamicity_reconfiguration_latency(benchmark):
    """How long (wall clock) one stop->cascade->restart cycle costs the
    runtime -- the price of DRCR-managed dynamicity."""
    platform = quiet_platform(seed=44)
    deploy(platform, DISP_XML, "scenario.display")
    calc_bundle = deploy(platform, CALC_XML, "scenario.calc")

    def cycle():
        calc_bundle.stop()
        calc_bundle.start()

    benchmark.pedantic(cycle, rounds=20, iterations=1)
    assert platform.drcr.component_state("DISP00") \
        is ComponentState.ACTIVE
    activations = platform.drcr.events.of_type(
        ComponentEventType.ACTIVATED)
    assert len([e for e in activations if e.component == "DISP00"]) \
        == 21
