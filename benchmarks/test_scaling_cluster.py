"""Experiment C3 -- cluster scaling: migration latency, failover time
vs fleet size, and gossip traffic vs node count.

Part one: a three-node federation hosts fleets of 8..64 components on
one node (override the ladder with ``C3_FLEET_SIZES=8,16``).  Per
fleet size the benchmark measures, in *simulated* time (deterministic,
so the shape assertions are machine-independent):

* snapshot-based migration latency for one component (initiation to
  ack over the default 500us links),
* failover time: node crash to the coordinator's failover round
  (detection by missed probes dominates -- the C3 claim),
* how many of the dead node's components the failover re-homed, and
  that every one of them is ACTIVE on a survivor afterwards.

Part two: idle federations of 64..256 *nodes* (override with
``C3_GOSSIP_SIZES=32,64``) measure steady-state cluster messages per
probe interval.  SWIM's per-node probe budget is constant, so the
fleet-wide rate must grow ~linearly -- the old full heartbeat mesh
grew O(n^2) and made fleets this size unaffordable.  At the largest
size one node is crashed to show detection time does not grow with
the fleet.

Shape asserted: migration latency is fleet-size independent; failover
time sits in ``[deadline, deadline + 3 intervals]`` at every size;
failover re-homes the whole fleet; gossip traffic's log-log growth
exponent stays below 2 (sub-quadratic) and within an O(n log n)
envelope.  Both tests merge their sections into ``BENCH_cluster.json``
for the guardrail in ``benchmarks/check_scaling_guardrail.py``.
"""

import json
import math
import os
from pathlib import Path

import pytest

from repro.cluster import Cluster
from repro.core import ComponentState
from repro.sim.engine import MSEC

from conftest import make_descriptor_xml, run_once

DEFAULT_FLEET_SIZES = (8, 16, 32, 64)
DEFAULT_GOSSIP_SIZES = (64, 128, 256)
HEARTBEAT_INTERVAL_NS = 10 * MSEC
MISS_LIMIT = 3
RESULT_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_cluster.json"


def _sizes_from_env(variable, default):
    override = os.environ.get(variable)
    if not override:
        return default
    return tuple(int(part) for part in override.split(",") if part)


def fleet_sizes():
    return _sizes_from_env("C3_FLEET_SIZES", DEFAULT_FLEET_SIZES)


def gossip_sizes():
    return _sizes_from_env("C3_GOSSIP_SIZES", DEFAULT_GOSSIP_SIZES)


def measure_fleet(size):
    cluster = Cluster(("node0", "node1", "node2"), seed=size,
                      heartbeat_interval_ns=HEARTBEAT_INTERVAL_NS,
                      miss_limit=MISS_LIMIT)
    try:
        # The whole fleet on node0: the node we will kill.
        for index in range(size):
            cluster.deploy(make_descriptor_xml(
                "F%05d" % index, cpuusage=0.008, frequency=100,
                priority=min(200, index + 1)), node="node0")
        cluster.run_for(50 * MSEC)

        # One snapshot-based migration, timed initiation-to-ack.
        migration_id = cluster.migrate("F00000", dst="node1")
        cluster.run_for(50 * MSEC)
        migration = cluster.migration(migration_id)
        assert migration["outcome"] == "restored", migration

        # Crash the host; failover fires when detection declares it.
        crash_at = cluster.sim.now
        cluster.crash_node("node0")
        cluster.run_for(10 * MISS_LIMIT * HEARTBEAT_INTERVAL_NS)
        assert len(cluster.failovers) == 1
        failover = cluster.failovers[0]
        rehomed = len(failover["moved"])
        active = sum(
            1 for name, home in failover["moved"].items()
            if cluster.node(home).drcr.component_state(name)
            is ComponentState.ACTIVE)
        return {
            "size": size,
            "migration_latency_ms":
                migration["latency_ns"] / 1e6,
            "failover_time_ms":
                (failover["at_ns"] - crash_at) / 1e6,
            "rehomed": rehomed,
            "rehomed_active": active,
            "unplaced": len(failover["unplaced"]),
        }
    finally:
        cluster.shutdown()


def write_results(section):
    """Merge one test's section into the shared BENCH_cluster.json.

    The failover and gossip tests run independently (and either may be
    skipped via its ladder env var), so each merges its keys instead of
    clobbering the other's."""
    document = {"benchmark": "cluster"}
    if RESULT_PATH.exists():
        try:
            previous = json.loads(RESULT_PATH.read_text())
        except ValueError:
            previous = {}
        if previous.get("benchmark") == "cluster":
            document.update(previous)
    document.update(section)
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")


@pytest.mark.benchmark(group="scaling")
def test_cluster_scaling(benchmark):
    sizes = fleet_sizes()
    rows = run_once(benchmark,
                    lambda: [measure_fleet(size) for size in sizes])

    deadline_ms = MISS_LIMIT * HEARTBEAT_INTERVAL_NS / 1e6
    interval_ms = HEARTBEAT_INTERVAL_NS / 1e6
    print("\nC3 -- cluster scaling (3 nodes, fleet on the victim):")
    print("%6s %15s %15s %8s %8s"
          % ("size", "migration[ms]", "failover[ms]", "rehomed",
             "active"))
    for row in rows:
        print("%6d %15.3f %15.1f %8d %8d"
              % (row["size"], row["migration_latency_ms"],
                 row["failover_time_ms"], row["rehomed"],
                 row["rehomed_active"]))

    latencies = [row["migration_latency_ms"] for row in rows]
    document = {
        "benchmark": "cluster",
        "fleet_sizes": list(sizes),
        "heartbeat_interval_ms": interval_ms,
        "miss_limit": MISS_LIMIT,
        "detection_deadline_ms": deadline_ms,
        "rows": rows,
        "migration_latency_spread": max(latencies) / min(latencies),
        "max_failover_over_deadline":
            max(row["failover_time_ms"] for row in rows) / deadline_ms,
    }
    write_results(document)
    benchmark.extra_info["rows"] = rows

    for row in rows:
        # The failover re-homed the whole fleet (minus the migrated
        # component, which already lives on node1), all ACTIVE.
        assert row["rehomed"] == row["size"] - 1
        assert row["rehomed_active"] == row["rehomed"]
        assert row["unplaced"] == 0
        # Detection dominates: crash-to-failover within the staleness
        # deadline plus a few beat/latency grace intervals.
        assert deadline_ms <= row["failover_time_ms"] \
            <= deadline_ms + 3 * interval_ms

    # Moving one component costs the same whatever the fleet size.
    assert document["migration_latency_spread"] < 3.0


def measure_gossip(nodes):
    """Steady-state gossip traffic for an idle ``nodes``-node fleet.

    Kernel timers are muted (one long period) so the message counters
    see only membership traffic: probes, acks, indirect pings, digest
    announcements and the anti-entropy sweep."""
    names = ["n%03d" % index for index in range(nodes)]
    cluster = Cluster(names, seed=nodes,
                      heartbeat_interval_ns=HEARTBEAT_INTERVAL_NS,
                      miss_limit=MISS_LIMIT,
                      timer_period_ns=10_000 * MSEC)
    try:
        # Let join gossip, digests and the first pulls converge.
        cluster.run_for(100 * MSEC)
        metrics = cluster.sim.telemetry.registry("cluster")
        before = metrics.get("messages_sent_total").value
        intervals = 20
        cluster.run_for(intervals * HEARTBEAT_INTERVAL_NS)
        sent = metrics.get("messages_sent_total").value - before
        rate = sent / float(intervals)

        # Crash one node: detection must not scale with the fleet.
        victim = names[nodes // 2]
        crash_at = cluster.sim.now
        cluster.crash_node(victim)
        deadline = cluster.membership.deadline_ns
        interval = cluster.membership.heartbeat_interval_ns
        while not cluster.membership.is_dead(victim) \
                and cluster.sim.now < crash_at + deadline \
                + 8 * interval:
            cluster.run_for(interval)
        assert cluster.membership.is_dead(victim)
        return {
            "nodes": nodes,
            "messages_per_interval": rate,
            "detection_ms": (cluster.sim.now - crash_at) / 1e6,
        }
    finally:
        cluster.shutdown()


@pytest.mark.benchmark(group="scaling")
def test_gossip_scaling(benchmark):
    sizes = gossip_sizes()
    rows = run_once(benchmark,
                    lambda: [measure_gossip(size) for size in sizes])

    deadline_ms = MISS_LIMIT * HEARTBEAT_INTERVAL_NS / 1e6
    interval_ms = HEARTBEAT_INTERVAL_NS / 1e6
    print("\nC3 -- gossip scaling (idle fleet, SWIM traffic only):")
    print("%6s %18s %14s" % ("nodes", "msgs/interval", "detect[ms]"))
    for row in rows:
        print("%6d %18.1f %14.1f"
              % (row["nodes"], row["messages_per_interval"],
                 row["detection_ms"]))

    small, large = rows[0], rows[-1]
    growth_exponent = (
        math.log(large["messages_per_interval"]
                 / small["messages_per_interval"])
        / math.log(large["nodes"] / small["nodes"]))
    # Rate divided by n*log2(n) is ~flat when growth is within the
    # O(n log n) envelope; the ladder-ends ratio of that quotient is
    # the machine-independent fit signal (1.0 = perfect fit, ~n ratio
    # when the mesh is back to quadratic).

    def nlogn_quotient(row):
        return row["messages_per_interval"] \
            / (row["nodes"] * math.log2(row["nodes"]))

    nlogn_fit_ratio = nlogn_quotient(large) / nlogn_quotient(small)
    write_results({
        "gossip": {
            "node_sizes": list(sizes),
            "rows": rows,
            "growth_exponent": growth_exponent,
            "nlogn_fit_ratio": nlogn_fit_ratio,
        },
    })
    benchmark.extra_info["gossip_rows"] = rows

    # Sub-quadratic by a wide margin: the old full mesh had exponent
    # 2.0, SWIM's constant per-node budget gives ~1.0.
    assert growth_exponent < 2.0
    # Within the O(n log n) envelope (quotient shrinking is fine).
    assert nlogn_fit_ratio <= 1.5
    for row in rows:
        # Detection stays deadline-dominated at every fleet size.
        assert deadline_ms <= row["detection_ms"] \
            <= deadline_ms + 8 * interval_ms
