"""Experiment C3 -- cluster scaling: migration latency and failover
time vs fleet size.

A three-node federation hosts fleets of 8..64 components on one node
(override the ladder with ``C3_FLEET_SIZES=8,16``).  Per fleet size the
benchmark measures, in *simulated* time (deterministic, so the shape
assertions are machine-independent):

* snapshot-based migration latency for one component (initiation to
  ack over the default 500us links),
* failover time: node crash to the coordinator's failover round
  (detection by missed heartbeats dominates -- the C3 claim),
* how many of the dead node's components the failover re-homed, and
  that every one of them is ACTIVE on a survivor afterwards.

Shape asserted: migration latency is fleet-size independent (one
component moves, not the fleet); failover time sits in
``[deadline, deadline + 3 intervals]`` at every size (detection
dominates, the redeploy itself is one batch round); failover re-homes
the whole fleet.  The rows land in ``BENCH_cluster.json`` for the
guardrail in ``benchmarks/check_scaling_guardrail.py``.
"""

import json
import os
from pathlib import Path

import pytest

from repro.cluster import Cluster
from repro.core import ComponentState
from repro.sim.engine import MSEC

from conftest import make_descriptor_xml, run_once

DEFAULT_FLEET_SIZES = (8, 16, 32, 64)
HEARTBEAT_INTERVAL_NS = 10 * MSEC
MISS_LIMIT = 3
RESULT_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_cluster.json"


def fleet_sizes():
    override = os.environ.get("C3_FLEET_SIZES")
    if not override:
        return DEFAULT_FLEET_SIZES
    return tuple(int(part) for part in override.split(",") if part)


def measure_fleet(size):
    cluster = Cluster(("node0", "node1", "node2"), seed=size,
                      heartbeat_interval_ns=HEARTBEAT_INTERVAL_NS,
                      miss_limit=MISS_LIMIT)
    try:
        # The whole fleet on node0: the node we will kill.
        for index in range(size):
            cluster.deploy(make_descriptor_xml(
                "F%05d" % index, cpuusage=0.008, frequency=100,
                priority=min(200, index + 1)), node="node0")
        cluster.run_for(50 * MSEC)

        # One snapshot-based migration, timed initiation-to-ack.
        migration_id = cluster.migrate("F00000", dst="node1")
        cluster.run_for(50 * MSEC)
        migration = cluster.migration(migration_id)
        assert migration["outcome"] == "restored", migration

        # Crash the host; failover fires when detection declares it.
        crash_at = cluster.sim.now
        cluster.crash_node("node0")
        cluster.run_for(10 * MISS_LIMIT * HEARTBEAT_INTERVAL_NS)
        assert len(cluster.failovers) == 1
        failover = cluster.failovers[0]
        rehomed = len(failover["moved"])
        active = sum(
            1 for name, home in failover["moved"].items()
            if cluster.node(home).drcr.component_state(name)
            is ComponentState.ACTIVE)
        return {
            "size": size,
            "migration_latency_ms":
                migration["latency_ns"] / 1e6,
            "failover_time_ms":
                (failover["at_ns"] - crash_at) / 1e6,
            "rehomed": rehomed,
            "rehomed_active": active,
            "unplaced": len(failover["unplaced"]),
        }
    finally:
        cluster.shutdown()


def write_results(document):
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")


@pytest.mark.benchmark(group="scaling")
def test_cluster_scaling(benchmark):
    sizes = fleet_sizes()
    rows = run_once(benchmark,
                    lambda: [measure_fleet(size) for size in sizes])

    deadline_ms = MISS_LIMIT * HEARTBEAT_INTERVAL_NS / 1e6
    interval_ms = HEARTBEAT_INTERVAL_NS / 1e6
    print("\nC3 -- cluster scaling (3 nodes, fleet on the victim):")
    print("%6s %15s %15s %8s %8s"
          % ("size", "migration[ms]", "failover[ms]", "rehomed",
             "active"))
    for row in rows:
        print("%6d %15.3f %15.1f %8d %8d"
              % (row["size"], row["migration_latency_ms"],
                 row["failover_time_ms"], row["rehomed"],
                 row["rehomed_active"]))

    latencies = [row["migration_latency_ms"] for row in rows]
    document = {
        "benchmark": "cluster",
        "fleet_sizes": list(sizes),
        "heartbeat_interval_ms": interval_ms,
        "miss_limit": MISS_LIMIT,
        "detection_deadline_ms": deadline_ms,
        "rows": rows,
        "migration_latency_spread": max(latencies) / min(latencies),
        "max_failover_over_deadline":
            max(row["failover_time_ms"] for row in rows) / deadline_ms,
    }
    write_results(document)
    benchmark.extra_info["rows"] = rows

    for row in rows:
        # The failover re-homed the whole fleet (minus the migrated
        # component, which already lives on node1), all ACTIVE.
        assert row["rehomed"] == row["size"] - 1
        assert row["rehomed_active"] == row["rehomed"]
        assert row["unplaced"] == 0
        # Detection dominates: crash-to-failover within the staleness
        # deadline plus a few beat/latency grace intervals.
        assert deadline_ms <= row["failover_time_ms"] \
            <= deadline_ms + 3 * interval_ms

    # Moving one component costs the same whatever the fleet size.
    assert document["migration_latency_spread"] < 3.0
