"""Experiment A4 -- the asynchronous intra-component command path.

Section 3.2: "in order to keep the real-time task's real-time behavior,
real-time code should not wait for the command sent by the non real-time
[counterpart].  Asynchronized communication mode was chosen ...  When
the task finishes its main functional routine, it tries to read command
message sent asynchronously through the management interface."

This benchmark quantifies that design:

* **turnaround**: a command's reply arrives within one task period of
  being sent (the poll happens once per job), never sooner than the
  next job boundary;
* **non-interference**: a storm of management commands leaves the RT
  task's scheduling-latency distribution untouched (bit-identical under
  the mechanical model) and causes zero deadline misses;
* **overload shedding**: when the command mailbox fills, sends drop at
  the sender (counted), never stalling either side.
"""

import pytest

from repro.hybrid.protocol import CommandKind
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml, quiet_platform, run_once

PERIOD_MS = 1

COMP_XML = make_descriptor_xml(
    "COMP00", cpuusage=0.05, frequency=1000 // PERIOD_MS, priority=2,
    properties=[("gain", "Integer", "1")])


def build(seed=3):
    platform = quiet_platform(seed=seed)
    deploy(platform, COMP_XML, "bridge.comp")
    component = platform.drcr.component("COMP00")
    return platform, component.container


@pytest.mark.benchmark(group="bridge")
def test_command_turnaround_bounded_by_one_period(benchmark):
    def experiment():
        platform, container = build()
        platform.run_for(10 * MSEC)
        turnarounds = []
        for index in range(200):
            # Send at a pseudo-random phase inside the period.
            platform.run_for((index * 137) % 1000 * 1000)  # 0..999 us
            sent_at = platform.now
            container.bridge.ping()
            platform.run_for(2 * PERIOD_MS * MSEC)
            reply = container.nrt_part.last_reply(CommandKind.PING)
            turnarounds.append(reply.time_ns - sent_at)
        return turnarounds

    turnarounds = run_once(benchmark, experiment)
    worst = max(turnarounds)
    best = min(turnarounds)
    mean = sum(turnarounds) / len(turnarounds)
    print("\nA4 -- command turnaround (period = %d ms): "
          "min=%.3f ms mean=%.3f ms max=%.3f ms"
          % (PERIOD_MS, best / 1e6, mean / 1e6, worst / 1e6))
    benchmark.extra_info["turnaround_ns"] = {
        "min": best, "mean": mean, "max": worst}
    # Replies arrive at the next job boundary: bounded by one period
    # plus the job's own compute time, and never negative.
    assert 0 <= best
    assert worst <= (PERIOD_MS * MSEC) + 200_000


@pytest.mark.benchmark(group="bridge")
def test_command_storm_does_not_disturb_rt_side(benchmark):
    def run(commands_per_period):
        platform, container = build()
        task = container.task
        platform.run_for(10 * MSEC)
        task.stats.latency.clear()
        for _ in range(1000):
            for _ in range(commands_per_period):
                container.set_property("gain", 2)
            platform.run_for(1 * PERIOD_MS * MSEC)
        return task, container

    def experiment():
        quiet_task, _ = run(0)
        stormy_task, stormy_container = run(8)
        return quiet_task, stormy_task, stormy_container

    quiet_task, stormy_task, container = run_once(benchmark, experiment)
    print("\nA4 -- storm: %d commands handled, latency quiet==storm: %s"
          % (container.bridge.commands_sent,
             quiet_task.stats.latency.values
             == stormy_task.stats.latency.values))
    # The RT dispatch path is untouched by management traffic: with the
    # mechanical latency model the distributions are bit-identical.
    assert quiet_task.stats.latency.values \
        == stormy_task.stats.latency.values
    assert stormy_task.stats.deadline_misses == 0
    # And the work actually happened.
    assert container.get_property("gain") == 2
    assert container.bridge.commands_sent >= 7000


@pytest.mark.benchmark(group="bridge")
def test_full_mailbox_drops_at_sender(benchmark):
    def experiment():
        platform, container = build()
        # The task never runs (time frozen): the mailbox fills, then
        # drops accumulate at the sender -- nobody blocks.
        results = [container.set_property("gain", value)
                   for value in range(40)]
        stats = container.bridge.stats()
        platform.run_for(5 * MSEC)  # now the task drains the queue
        return results, stats, container

    results, stats, container = run_once(benchmark, experiment)
    delivered = results.count(True)
    dropped = results.count(False)
    print("\nA4 -- overload: %d queued, %d dropped at sender"
          % (delivered, dropped))
    assert delivered == container.bridge.command_mailbox.capacity
    assert dropped == 40 - delivered
    assert stats["commands_dropped"] == dropped
    # The queue drained once the task ran; the last delivered value won.
    assert container.get_property("gain") == delivered - 1
