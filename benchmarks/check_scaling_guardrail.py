#!/usr/bin/env python3
"""Scaling guardrails: fail if a benchmark regressed >2x.

Usage::

    python benchmarks/check_scaling_guardrail.py \
        BENCH_scaling_drcr.json benchmarks/baselines/BENCH_scaling_drcr.json
    python benchmarks/check_scaling_guardrail.py \
        BENCH_cluster.json benchmarks/baselines/BENCH_cluster.json
    python benchmarks/check_scaling_guardrail.py \
        BENCH_throughput.json benchmarks/baselines/BENCH_throughput.json

Compares a fresh benchmark document against the committed baseline;
the document's ``benchmark`` field picks the check set.
Machine-independent shape ratios carry the regression signal:

* A3 (``scaling_drcr``): ``marginal_growth_per_fleet_growth`` (the
  ~O(affected) promise), ``incremental_speedup_at_max`` (incremental
  vs full sweep on the same machine/process), and the absolute
  ``marginal_deploy_ms`` at the largest fleet when both runs used the
  same ladder (CI baseline is recorded on the CI ladder, so this check
  is live there).
* C3 (``cluster``): ``max_failover_over_deadline`` (failover must stay
  detection-dominated) and ``migration_latency_spread`` (moving one
  component must not scale with the fleet) -- both simulated-time, so
  any drift is a protocol change, not machine noise -- plus the
  absolute ``migration_latency_ms`` at the largest fleet on matching
  ladders.  The ``gossip`` section adds membership traffic shape:
  ``growth_exponent`` is hard-capped below 2.0 (sub-quadratic, the
  SWIM promise) and, with baseline, bounded relatively along with
  ``nlogn_fit_ratio`` (the O(n log n) envelope) and the absolute
  per-interval message count at the largest fleet on matching ladders.
* Plan lint (``lint``): ``growth_exponent`` of a full six-family
  ``lint_plan`` pass across the component ladder is hard-capped below
  2.0 (the DRT6xx analyzers must stay sub-quadratic -- the PlanGuard
  runs them on the deploy path) and, with baseline, bounded relatively
  along with the absolute lint time at the largest plan on matching
  ladders.
* C6b (``contracts``): ``overhead_at_max`` (monitored vs bare run of
  the identical fleet in one process) is hard-capped below 2x and,
  with baseline, bounded relatively along with ``overhead_growth``
  (the ratio must not itself grow with the fleet) and the absolute
  monitored wall clock at the largest fleet on matching ladders.
* Engine speed (``throughput``): ``run_vs_step_speedup`` (the sorted-run
  drain against the legacy per-event API, measured in one process, so
  machine-independent), ``fleet_overhead_growth`` (per-event overhead
  across the fleet ladder), and the absolute events/s of every ladder
  row -- each must stay within ``TOLERANCE`` of the committed baseline.

A metric regresses when it is more than ``TOLERANCE`` (2x) worse than
the baseline.  Exit status 1 on any regression.
"""

import json
import sys

TOLERANCE = 2.0


def load(path):
    with open(path) as handle:
        return json.load(handle)


def check_drcr(current, baseline, check_at_most):
    check_at_most(
        "marginal_growth_per_fleet_growth",
        current["marginal_growth_per_fleet_growth"],
        TOLERANCE * baseline["marginal_growth_per_fleet_growth"])
    # Speedup shrinking by >2x counts as the same class of regression.
    check_at_most(
        "1 / incremental_speedup_at_max",
        1.0 / max(current["incremental_speedup_at_max"], 1e-9),
        TOLERANCE / max(baseline["incremental_speedup_at_max"], 1e-9))
    if current["fleet_sizes"] == baseline["fleet_sizes"]:
        check_at_most(
            "marginal_deploy_ms at max fleet",
            current["rows"][-1]["marginal_deploy_ms"],
            TOLERANCE * baseline["rows"][-1]["marginal_deploy_ms"])
    else:
        print("fleet ladders differ (%s vs %s): skipping the absolute "
              "marginal-deploy comparison"
              % (current["fleet_sizes"], baseline["fleet_sizes"]))


def check_cluster(current, baseline, check_at_most):
    check_at_most(
        "max_failover_over_deadline",
        current["max_failover_over_deadline"],
        TOLERANCE * baseline["max_failover_over_deadline"])
    check_at_most(
        "migration_latency_spread",
        current["migration_latency_spread"],
        TOLERANCE * baseline["migration_latency_spread"])
    if current["fleet_sizes"] == baseline["fleet_sizes"]:
        check_at_most(
            "migration_latency_ms at max fleet",
            current["rows"][-1]["migration_latency_ms"],
            TOLERANCE * baseline["rows"][-1]["migration_latency_ms"])
    else:
        print("fleet ladders differ (%s vs %s): skipping the absolute "
              "migration-latency comparison"
              % (current["fleet_sizes"], baseline["fleet_sizes"]))
    gossip = current.get("gossip")
    if gossip is None:
        print("no gossip section in the current document: skipping "
              "the gossip traffic checks")
        return
    # Hard cap regardless of baseline: membership traffic going
    # quadratic is exactly the regression the SWIM protocol exists to
    # prevent (exponent ~1.0 when healthy, 2.0 for a full mesh).
    check_at_most("gossip growth_exponent (hard cap)",
                  gossip["growth_exponent"], 2.0)
    reference = baseline.get("gossip")
    if reference is None:
        print("baseline has no gossip section: skipping the relative "
              "gossip comparisons")
        return
    check_at_most(
        "gossip growth_exponent",
        gossip["growth_exponent"],
        TOLERANCE * reference["growth_exponent"])
    check_at_most(
        "gossip nlogn_fit_ratio",
        gossip["nlogn_fit_ratio"],
        TOLERANCE * reference["nlogn_fit_ratio"])
    if gossip["node_sizes"] == reference["node_sizes"]:
        check_at_most(
            "gossip messages_per_interval at max nodes",
            gossip["rows"][-1]["messages_per_interval"],
            TOLERANCE
            * reference["rows"][-1]["messages_per_interval"])
    else:
        print("gossip ladders differ (%s vs %s): skipping the "
              "absolute traffic comparison"
              % (gossip["node_sizes"], reference["node_sizes"]))


def check_throughput(current, baseline, check_at_most):
    # A speedup ratio shrinking by >2x is the regression signal; both
    # legs of each ratio come from the same process, so the comparison
    # survives machine changes.
    check_at_most(
        "run_vs_step_speedup shrink factor",
        baseline["run_vs_step_speedup"]
        / max(current["run_vs_step_speedup"], 1e-9),
        TOLERANCE)
    check_at_most(
        "fleet_overhead_growth",
        current["fleet_overhead_growth"],
        TOLERANCE * baseline["fleet_overhead_growth"])
    baseline_rates = {row["workload"]: row["events_per_s"]
                      for row in baseline["rows"]}
    for row in current["rows"]:
        reference = baseline_rates.get(row["workload"])
        if reference is None:
            print("no baseline row for workload %r: skipping"
                  % row["workload"])
            continue
        # Rates are "bigger is better": bound the slowdown factor.
        check_at_most(
            "slowdown [%s]" % row["workload"],
            reference / max(row["events_per_s"], 1e-9),
            TOLERANCE)


def check_lint(current, baseline, check_at_most):
    # Hard cap regardless of baseline: the DRT6xx pass going
    # quadratic is exactly what would make plan-gated deployment
    # stop scaling.
    check_at_most("plan lint growth_exponent (hard cap)",
                  current["growth_exponent"], 2.0)
    # Small ladders time noisily, so floor the relative reference:
    # a healthy run sits around 1.0 (linear).
    check_at_most(
        "plan lint growth_exponent",
        current["growth_exponent"],
        TOLERANCE * max(baseline["growth_exponent"], 0.5))
    if current["component_sizes"] == baseline["component_sizes"]:
        check_at_most(
            "plan lint_ms at max components",
            current["rows"][-1]["lint_ms"],
            TOLERANCE * baseline["rows"][-1]["lint_ms"])
    else:
        print("component ladders differ (%s vs %s): skipping the "
              "absolute lint-time comparison"
              % (current["component_sizes"],
                 baseline["component_sizes"]))


def check_contracts(current, baseline, check_at_most):
    # Hard cap regardless of baseline: distribution checking that
    # doubles the cost of simulation would never be left on in a real
    # deployment (both legs of the ratio come from one process, so
    # the cap is machine-independent).
    check_at_most("monitor overhead_at_max (hard cap)",
                  current["overhead_at_max"], 2.0)
    # Ratios near 1.0 time noisily on small ladders: floor the
    # relative references at the break-even ratio.
    check_at_most(
        "monitor overhead_at_max",
        current["overhead_at_max"],
        TOLERANCE * max(baseline["overhead_at_max"], 1.0))
    check_at_most(
        "monitor overhead_growth",
        current["overhead_growth"],
        TOLERANCE * max(baseline["overhead_growth"], 1.0))
    if current["fleet_sizes"] == baseline["fleet_sizes"]:
        check_at_most(
            "monitored_s at max fleet",
            current["rows"][-1]["monitored_s"],
            TOLERANCE * baseline["rows"][-1]["monitored_s"])
    else:
        print("fleet ladders differ (%s vs %s): skipping the absolute "
              "monitored-run comparison"
              % (current["fleet_sizes"], baseline["fleet_sizes"]))


CHECKS = {
    "scaling_drcr": check_drcr,
    "cluster": check_cluster,
    "lint": check_lint,
    "throughput": check_throughput,
    "contracts": check_contracts,
}


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    current = load(argv[1])
    baseline = load(argv[2])
    kind = current.get("benchmark", "scaling_drcr")
    if kind != baseline.get("benchmark", "scaling_drcr"):
        print("benchmark kinds differ: %r vs %r"
              % (kind, baseline.get("benchmark")))
        return 2
    if kind not in CHECKS:
        print("no guardrail for benchmark %r" % (kind,))
        return 2
    failures = []

    def check_at_most(label, value, limit):
        verdict = "ok" if value <= limit else "REGRESSED"
        print("%-42s %10.3f (limit %10.3f)  %s"
              % (label, value, limit, verdict))
        if value > limit:
            failures.append(label)

    CHECKS[kind](current, baseline, check_at_most)

    if failures:
        print("guardrail FAILED: %s regressed more than %.0fx vs the "
              "committed baseline" % (", ".join(failures), TOLERANCE))
        return 1
    print("guardrail passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
