#!/usr/bin/env python3
"""A3 scaling guardrail: fail if marginal-deploy cost regressed >2x.

Usage::

    python benchmarks/check_scaling_guardrail.py \
        BENCH_scaling_drcr.json benchmarks/baselines/BENCH_scaling_drcr.json

Compares a fresh ``BENCH_scaling_drcr.json`` (written by
``benchmarks/test_scaling_drcr.py``) against the committed baseline.
Machine-independent shape ratios carry the regression signal:

* ``marginal_growth_per_fleet_growth`` -- how fast the marginal deploy
  grows relative to the fleet (the ~O(affected) promise);
* ``incremental_speedup_at_max`` -- incremental vs full-sweep marginal
  deploy on the same machine/process;
* absolute ``marginal_deploy_ms`` at the largest fleet, compared only
  when both runs used the same ladder (CI baseline is recorded on the
  CI ladder, so this check is live there).

A metric regresses when it is more than ``TOLERANCE`` (2x) worse than
the baseline.  Exit status 1 on any regression.
"""

import json
import sys

TOLERANCE = 2.0


def load(path):
    with open(path) as handle:
        return json.load(handle)


def main(argv):
    if len(argv) != 3:
        print(__doc__)
        return 2
    current = load(argv[1])
    baseline = load(argv[2])
    failures = []

    def check_at_most(label, value, limit):
        verdict = "ok" if value <= limit else "REGRESSED"
        print("%-42s %10.3f (limit %10.3f)  %s"
              % (label, value, limit, verdict))
        if value > limit:
            failures.append(label)

    check_at_most(
        "marginal_growth_per_fleet_growth",
        current["marginal_growth_per_fleet_growth"],
        TOLERANCE * baseline["marginal_growth_per_fleet_growth"])
    # Speedup shrinking by >2x counts as the same class of regression.
    check_at_most(
        "1 / incremental_speedup_at_max",
        1.0 / max(current["incremental_speedup_at_max"], 1e-9),
        TOLERANCE / max(baseline["incremental_speedup_at_max"], 1e-9))
    if current["fleet_sizes"] == baseline["fleet_sizes"]:
        check_at_most(
            "marginal_deploy_ms at max fleet",
            current["rows"][-1]["marginal_deploy_ms"],
            TOLERANCE * baseline["rows"][-1]["marginal_deploy_ms"])
    else:
        print("fleet ladders differ (%s vs %s): skipping the absolute "
              "marginal-deploy comparison"
              % (current["fleet_sizes"], baseline["fleet_sizes"]))

    if failures:
        print("guardrail FAILED: %s regressed more than %.0fx vs the "
              "committed baseline" % (", ".join(failures), TOLERANCE))
        return 1
    print("guardrail passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
