"""Experiment F1 -- Figure 1, the declarative real-time component
lifecycle.

Figure 1 is a state diagram, not a data plot; the regenerated artifact
is its transition table, checked for the structural properties the
paper narrates (section 2.2):

* external events (deployment, destruction) and management calls drive
  some transitions; Unsatisfied/Satisfied/Active are managed by DRCR;
* DISABLED components cannot reach ACTIVE without being enabled first;
* DISPOSED is terminal and reachable from everywhere;
* every state that owns an RT task can release it (reaches a
  non-instantiated state).

The benchmark also *exercises* every edge through the real DRCR and
measures the cost of a full lifecycle lap.
"""

import pytest

from repro.core import ComponentState, UtilizationBoundPolicy
from repro.core.lifecycle import (
    INSTANTIATED_STATES,
    TRANSITIONS,
    reachable_states,
)
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml, quiet_platform, run_once


def _print_figure():
    print("\nFigure 1 -- lifecycle transition table:")
    for state in ComponentState:
        successors = sorted(s.value for s in TRANSITIONS[state])
        print("  %-13s -> %s" % (state.value,
                                 ", ".join(successors) or "(terminal)"))


@pytest.mark.benchmark(group="figure1")
def test_figure1_structure(benchmark):
    def audit():
        edges = sum(len(v) for v in TRANSITIONS.values())
        return edges

    edges = run_once(benchmark, audit)
    _print_figure()
    benchmark.extra_info["edges"] = edges

    # Structural claims of section 2.2.
    assert TRANSITIONS[ComponentState.DISPOSED] == set()
    for state in ComponentState:
        assert ComponentState.DISPOSED in reachable_states(state)
    assert ComponentState.ACTIVE \
        not in reachable_states(ComponentState.DISPOSED)
    # DISABLED must pass through UNSATISFIED (enable) to ever activate.
    direct = TRANSITIONS[ComponentState.DISABLED]
    assert direct == {ComponentState.UNSATISFIED,
                      ComponentState.DISPOSED}
    # Instantiated states can all release the task.
    for state in INSTANTIATED_STATES:
        assert reachable_states(state) - INSTANTIATED_STATES


@pytest.mark.benchmark(group="figure1")
def test_figure1_full_lap_through_drcr(benchmark):
    """Drive one component through every lifecycle station via the real
    runtime and verify the visited sequence."""
    xml = make_descriptor_xml(
        "LAP000", cpuusage=0.05, frequency=1000, priority=2,
        enabled=False)

    def lap():
        platform = quiet_platform(
            seed=5, internal_policy=UtilizationBoundPolicy(cap=1.0))
        visited = []

        def watch(event):
            component = platform.drcr.registry.maybe_get("LAP000")
            if component is not None:
                visited.append(component.state)

        platform.drcr.events.listeners.add(watch)
        bundle = deploy(platform, xml, "figure1.lap")     # DISABLED
        platform.drcr.enable_component("LAP000")          # -> ACTIVE
        platform.run_for(5 * MSEC)
        platform.drcr.suspend_component("LAP000")         # SUSPENDED
        platform.run_for(5 * MSEC)
        platform.drcr.resume_component("LAP000")          # ACTIVE
        platform.drcr.disable_component("LAP000")         # DISABLED
        platform.drcr.enable_component("LAP000")          # ACTIVE
        bundle.stop()                                     # DISPOSED
        return visited

    visited = run_once(benchmark, lap)
    # Deduplicate consecutive repeats into the station sequence.
    stations = [visited[0]]
    for state in visited[1:]:
        if state is not stations[-1]:
            stations.append(state)
    assert stations == [
        ComponentState.INSTALLED,
        ComponentState.DISABLED,
        ComponentState.UNSATISFIED,
        ComponentState.SATISFIED,   # transient, observed via event
        ComponentState.ACTIVE,
        ComponentState.SUSPENDED,
        ComponentState.ACTIVE,
        ComponentState.DISABLED,
        ComponentState.UNSATISFIED,
        ComponentState.SATISFIED,
        ComponentState.ACTIVE,
        ComponentState.DISPOSED,
    ]
    print("\nlifecycle stations visited:",
          " -> ".join(s.value for s in stations))
