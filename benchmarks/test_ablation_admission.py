"""Experiment A1 -- ablation: global admission control on vs off.

The paper's core argument (sections 1, 2.1): ad-hoc solutions lack "an
accurate global view of the existing real-time context", so composition
"will eventually lead to possibly transient timing problems, including
missed deadline[s]".  DRCR's central budget enforcement is the cure.

Workload: N components each claiming 24% of CPU 0, deployed one by one
(total demand N x 0.24, far past 100%).  Two configurations:

* **DRCR admission ON** (the paper's design): the utilization-bound
  resolving service admits only a feasible subset; everything admitted
  runs with zero deadline misses, the rest waits UNSATISFIED;
* **admission OFF** (the ad-hoc baseline): everything activates, the
  CPU overloads, and the lower-priority components miss deadlines en
  masse.
"""

import pytest

from repro.core import (
    AlwaysAcceptPolicy,
    ComponentEventType,
    ComponentState,
    UtilizationBoundPolicy,
)
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml, quiet_platform, run_once

N_COMPONENTS = 6
PER_COMPONENT_USAGE = 0.24
WINDOW = 2 * SEC


def run_configuration(policy, seed=17):
    platform = quiet_platform(seed=seed, internal_policy=policy)
    for index in range(N_COMPONENTS):
        xml = make_descriptor_xml(
            "LOAD%02d" % index, cpuusage=PER_COMPONENT_USAGE,
            frequency=1000, priority=2 + index)
        deploy(platform, xml, "ablation.load%02d" % index)
    platform.run_for(WINDOW)
    result = {"active": 0, "unsatisfied": 0, "misses": 0,
              "completions": 0, "per_component": {}}
    for component in platform.drcr.registry.all():
        if component.state is ComponentState.ACTIVE:
            result["active"] += 1
            task = platform.kernel.lookup(component.descriptor.task_name)
            # Starved tasks never *complete* a job, so their missed
            # activations surface as overruns; count both.
            result["misses"] += (task.stats.deadline_misses
                                 + task.stats.overruns)
            result["completions"] += task.stats.completions
            result["per_component"][component.name] = (
                task.stats.deadline_misses + task.stats.overruns)
        elif component.state is ComponentState.UNSATISFIED:
            result["unsatisfied"] += 1
    return result


@pytest.mark.benchmark(group="ablation-admission")
def test_admission_on_vs_off(benchmark):
    def experiment():
        return {
            "admission ON (utilization bound)": run_configuration(
                UtilizationBoundPolicy(cap=1.0)),
            "admission OFF (ad-hoc baseline)": run_configuration(
                AlwaysAcceptPolicy()),
        }

    results = run_once(benchmark, experiment)
    print("\nA1 -- admission ablation (%d components x %.0f%% CPU "
          "demand):" % (N_COMPONENTS, PER_COMPONENT_USAGE * 100))
    print("%-36s %7s %12s %9s %12s"
          % ("configuration", "active", "unsatisfied", "misses",
             "completions"))
    for label, r in results.items():
        print("%-36s %7d %12d %9d %12d"
              % (label, r["active"], r["unsatisfied"], r["misses"],
                 r["completions"]))
    benchmark.extra_info["results"] = {
        k: {kk: vv for kk, vv in v.items() if kk != "per_component"}
        for k, v in results.items()}

    on = results["admission ON (utilization bound)"]
    off = results["admission OFF (ad-hoc baseline)"]

    # ON: exactly the feasible subset runs, contract-clean.
    assert on["active"] == 4          # 4 x 0.24 = 0.96 <= cap
    assert on["unsatisfied"] == 2
    assert on["misses"] == 0

    # OFF: everything runs, deadlines shatter.
    assert off["active"] == N_COMPONENTS
    assert off["misses"] > 100

    # The overload hits the *low-priority* components first (priority
    # inversion of responsibility the paper warns about): the two
    # highest-priority tasks still meet deadlines even in OFF.
    ordered = sorted(off["per_component"].items())
    assert ordered[0][1] == 0 and ordered[1][1] == 0
    assert ordered[-1][1] > 0


@pytest.mark.benchmark(group="ablation-admission")
def test_admitted_subset_unharmed_by_churn(benchmark):
    """Admission keeps *already deployed* components' contracts intact
    while rejected components churn -- "adjust the system [to] continue
    to operate without impairing the deployed components' real-time
    contracts" (abstract)."""

    def experiment():
        platform = quiet_platform(
            seed=19, internal_policy=UtilizationBoundPolicy(cap=0.6))
        deploy(platform,
               make_descriptor_xml("BASE00", cpuusage=0.5,
                                   frequency=1000, priority=1),
               "ablation.base")
        base_task = platform.kernel.lookup("BASE00")
        # Churn: 20 oversized components arrive and are all rejected.
        for index in range(20):
            xml = make_descriptor_xml(
                "CHRN%02d" % index, cpuusage=0.3, frequency=500,
                priority=5)
            bundle = deploy(platform, xml, "ablation.churn%02d" % index)
            platform.run_for(20 * MSEC)
            bundle.stop()
        platform.run_for(500 * MSEC)
        return platform, base_task

    platform, base_task = run_once(benchmark, experiment)
    assert base_task.stats.deadline_misses == 0
    assert base_task.stats.completions >= 890
    rejected = platform.drcr.events.of_type(
        ComponentEventType.ADMISSION_REJECTED)
    assert len(rejected) == 20
    print("\nchurn survived: %d rejections, base task %d completions, "
          "0 misses" % (len(rejected), base_task.stats.completions))
