#!/usr/bin/env python3
"""Profile the simulator/kernel hot paths and attribute the cost.

The attribution companion to ``test_simulator_throughput.py``: runs the
same workloads under ``cProfile`` and folds the per-function totals into
a **per-subsystem table** (sim / rtos / telemetry / osgi / workload), so
a speed regression can be blamed on a layer rather than hunted through
a flat profile.  See docs/PERFORMANCE.md for how the table is read.

Usage::

    PYTHONPATH=src python benchmarks/profile_hotpath.py
    PYTHONPATH=src python benchmarks/profile_hotpath.py \
        --workload fleet --tasks 50 --top 15
    PYTHONPATH=src python benchmarks/profile_hotpath.py \
        --scale 0.1 --output profile_hotpath.json   # CI smoke

``--scale`` shrinks every workload proportionally (CI smoke uses 0.1);
``--output`` writes the tables as JSON for artifact upload.
"""

import argparse
import cProfile
import io
import json
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from test_simulator_throughput import (  # noqa: E402
    run_drain,
    run_population,
    run_raw_dispatch,
)

#: Module-path fragment -> subsystem label, first match wins.
SUBSYSTEMS = (
    ("repro/sim/", "sim"),
    ("repro/rtos/", "rtos"),
    ("repro/telemetry/", "telemetry"),
    ("repro/osgi/", "osgi"),
    ("repro/", "repro-other"),
)


def classify(filename):
    path = filename.replace("\\", "/")
    for fragment, label in SUBSYSTEMS:
        if fragment in path:
            return label
    if "test_simulator_throughput" in path or "profile_hotpath" in path:
        return "workload"
    return "stdlib/other"


WORKLOADS = {
    "drain": lambda scale: run_drain("run"),
    "raw": lambda scale: run_raw_dispatch(),
    "fleet": None,  # handled specially (needs the task count)
}


def profile_workload(name, runner):
    """Run ``runner`` under cProfile; return (row, subsystem table)."""
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    row = runner()
    profiler.disable()
    wall = time.perf_counter() - start

    totals = {}
    calls = {}
    stats = pstats.Stats(profiler)
    for (filename, _line, _func), data in stats.stats.items():
        label = classify(filename)
        totals[label] = totals.get(label, 0.0) + data[2]  # tottime
        calls[label] = calls.get(label, 0) + data[1]      # ncalls
    table = [
        {
            "subsystem": label,
            "tottime_s": round(tottime, 4),
            "share": round(tottime / max(wall, 1e-9), 4),
            "calls": calls[label],
        }
        for label, tottime in sorted(totals.items(),
                                     key=lambda item: -item[1])
    ]
    row = dict(row)
    row["profiled_wall_s"] = wall
    # The profiler taxes every call, so this rate is only comparable
    # to other *profiled* rates -- never to the throughput benchmark.
    row["profiled_events_per_s"] = row["events"] / wall
    return row, table


def hot_functions(name, runner, top):
    """Flat top-N function listing for one workload."""
    profiler = cProfile.Profile()
    profiler.enable()
    runner()
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream) \
        .sort_stats("tottime").print_stats(top)
    return stream.getvalue()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="all",
                        choices=("all", "drain", "raw", "fleet"))
    parser.add_argument("--tasks", type=int, default=50,
                        help="fleet size for the fleet workload")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="shrink workloads by this factor (CI smoke)")
    parser.add_argument("--top", type=int, default=0,
                        help="also print the top-N hottest functions")
    parser.add_argument("--output", default=None,
                        help="write the tables to this JSON file")
    args = parser.parse_args(argv)

    if args.scale != 1.0:
        import test_simulator_throughput as bench
        bench.DRAIN_EVENTS = max(int(bench.DRAIN_EVENTS * args.scale),
                                 1000)
        bench.RAW_WINDOW = max(int(bench.RAW_WINDOW * args.scale),
                               1_000_000)
        bench.WINDOW = max(int(bench.WINDOW * args.scale), 100_000_000)

    selected = {}
    if args.workload in ("all", "drain"):
        selected["drain"] = lambda: run_drain("run")
    if args.workload in ("all", "raw"):
        selected["raw"] = run_raw_dispatch
    if args.workload in ("all", "fleet"):
        selected["fleet"] = lambda: run_population(args.tasks)

    report = {"scale": args.scale, "workloads": {}}
    for name, runner in selected.items():
        row, table = profile_workload(name, runner)
        report["workloads"][name] = {"run": row, "subsystems": table}
        print("\n== %s: %d events, %.3f s profiled (%.0f ev/s "
              "under profiler) =="
              % (name, row["events"], row["profiled_wall_s"],
                 row["profiled_events_per_s"]))
        print("%-14s %10s %8s %12s" % ("subsystem", "tottime[s]",
                                       "share", "calls"))
        for entry in table:
            print("%-14s %10.3f %7.1f%% %12d"
                  % (entry["subsystem"], entry["tottime_s"],
                     100 * entry["share"], entry["calls"]))
        if args.top:
            print(hot_functions(name, runner, args.top))

    if args.output:
        Path(args.output).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n")
        print("\nwrote %s" % args.output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
