"""Experiment C5b -- scaling: adaptation-rule evaluation cost.

The adaptation controller runs inside the simulation loop every epoch
(50 ms of simulated time by default), so its wall-clock cost per epoch
bounds how large a rule set a deployment can afford.  This benchmark
ladders the rule population 10..500 (override with
``C5_RULE_COUNTS=10,50``) and measures:

* the evaluator-only cost per epoch (predicates + damping + conflict
  resolution over a synthetic context),
* the full ``AdaptationController.step()`` cost on a live platform
  (context collection from real telemetry + OSGi provider query
  included),

and asserts the *shape*: evaluation stays roughly linear in the rule
count (growth across the ladder well below quadratic) and a live epoch
with the largest rule set stays under 50 ms of wall clock -- an epoch
that costs more than it simulates could never run in real time.  Rows
land in ``BENCH_scaling_adapt.json``.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.adapt.controller import AdaptationController
from repro.adapt.evaluator import RuleEvaluator
from repro.adapt.rules import parse_rule_document
from repro.sim.engine import MSEC

from conftest import quiet_platform, run_once

DEFAULT_RULE_COUNTS = (10, 50, 200, 500)
EPOCHS = 200
RESULT_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_scaling_adapt.json"


def rule_counts():
    override = os.environ.get("C5_RULE_COUNTS")
    if not override:
        return DEFAULT_RULE_COUNTS
    return tuple(int(part) for part in override.split(",") if part)


def make_rules(count):
    """``count`` distinct guards over the whole parameter alphabet:
    a third never fire, a third sit in cooldown, a third conflict."""
    params = ("deadline_miss_rate", "releases", "overruns",
              "dispatch_latency_p99", "rt_utilization",
              "active_components")
    rules = []
    for index in range(count):
        param = params[index % len(params)]
        fires = index % 3 == 0
        rules.append({
            "name": "guard-%04d" % index,
            "priority": index,
            "when": {"param": param,
                     "op": ">" if fires else "<",
                     "value": -1.0,
                     "for_epochs": 1 + index % 3},
            "then": [{"action": "reconfigure"}],
            "cooldown_ns": 10 * MSEC,
        })
    return parse_rule_document({"rules": rules})


def synthetic_context():
    return {
        "deadline_miss_rate": 0.5, "releases": 100.0,
        "overruns": 3.0, "dispatch_latency_p99": 40_000.0,
        "rt_utilization": 0.7, "active_components": 12.0,
    }


def measure_evaluator(count):
    rules = make_rules(count)
    evaluator = RuleEvaluator(max_actions_per_epoch=8)
    context = synthetic_context()
    start = time.perf_counter()
    fired = 0
    for epoch in range(EPOCHS):
        firings, _ = evaluator.evaluate(rules, dict(context),
                                        epoch * 50 * MSEC)
        fired += len(firings)
    elapsed = time.perf_counter() - start
    return {
        "rules": count,
        "epochs": EPOCHS,
        "fired": fired,
        "eval_epoch_us": elapsed / EPOCHS * 1e6,
        "eval_rule_ns": elapsed / EPOCHS / count * 1e9,
    }


def measure_live_step(count):
    """Full controller epoch on a live platform (real telemetry
    context, OSGi provider query, firing execution)."""
    platform = quiet_platform(seed=count)
    controller = AdaptationController(platform,
                                      rules=make_rules(count))
    platform.run_for(100 * MSEC)
    controller.step()  # warm the windows
    start = time.perf_counter()
    for _ in range(20):
        controller.step()
    elapsed = (time.perf_counter() - start) / 20
    platform.shutdown()
    return elapsed * 1e3


@pytest.mark.benchmark(group="scaling")
def test_adapt_scaling(benchmark):
    counts = rule_counts()

    def experiment():
        rows = [measure_evaluator(count) for count in counts]
        live_ms = measure_live_step(counts[-1])
        return rows, live_ms

    rows, live_ms = run_once(benchmark, experiment)
    print("\nC5b -- adaptation-rule evaluation scaling:")
    print("%6s %8s %14s %14s"
          % ("rules", "fired", "epoch[us]", "per-rule[ns]"))
    for row in rows:
        print("%6d %8d %14.1f %14.1f"
              % (row["rules"], row["fired"], row["eval_epoch_us"],
                 row["eval_rule_ns"]))
    print("live controller step at %d rules: %.2f ms"
          % (counts[-1], live_ms))

    small, large = rows[0], rows[-1]
    rule_growth = large["rules"] / small["rules"]
    cost_growth = large["eval_epoch_us"] / max(small["eval_epoch_us"],
                                               1e-6)
    print("cost growth %.2fx over a %.0fx rule growth"
          % (cost_growth, rule_growth))

    document = {
        "benchmark": "scaling_adapt",
        "rule_counts": list(counts),
        "epochs": EPOCHS,
        "rows": rows,
        "live_step_ms_at_max": live_ms,
        "rule_growth": rule_growth,
        "cost_growth": cost_growth,
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    benchmark.extra_info["rows"] = rows

    # The damped rule mix actually exercised every code path.
    assert all(row["fired"] > 0 for row in rows)
    # Roughly linear: far below quadratic growth across the ladder.
    assert cost_growth < rule_growth * 3
    # An epoch must cost (much) less wall clock than it simulates.
    assert live_ms < 50.0
