"""Simulator performance: how fast the substrate itself runs.

Not a paper artifact, but table stakes for anyone adopting the library:
how much simulated time one wall-clock second buys, as the task
population grows.  Also guards against accidental complexity
regressions in the kernel's hot path (the event loop, dispatch,
release chain).

The ladder (see docs/PERFORMANCE.md for the methodology):

* **drain / drain_step** -- a pre-scheduled backlog consumed with no
  further scheduling, via ``Simulator.run`` (the sorted-run drain) and
  via the legacy per-event ``step()`` API.  The pair is a live
  before/after of the drain overhaul measured in the same process.
* **raw_dispatch** -- self-rescheduling callback chains: one schedule +
  one fire per event, no kernel, the simulator's scheduling hot path.
* **fleet N** -- the original kernel workload: N periodic RTAI tasks
  in WaitPeriod/Compute loops over a 2 s simulated window, with
  telemetry enabled; plus a telemetry-disabled row at the largest
  fleet exercising the null-instrument fast path.

Results land in ``BENCH_throughput.json`` together with speedup factors
against the recorded pre-overhaul (seed) rates; CI uploads the document
and ``check_scaling_guardrail.py`` compares it against the committed
baseline so the overhaul can never silently regress.
"""

import json
import time
from pathlib import Path

import pytest

from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import NullLatencyModel
from repro.rtos.requests import Compute, WaitPeriod
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, SEC, Simulator
from repro.telemetry.metrics import Telemetry

TASK_COUNTS = (1, 10, 50)
WINDOW = 2 * SEC
DRAIN_EVENTS = 200_000
RAW_CHAINS = 64
RAW_WINDOW = 6 * MSEC  # 64 chains x 6000 one-us steps = 384k events
#: Timed repetitions per workload; the best rate is reported (the
#: others absorb allocator and cache warmup noise).
REPEATS = 3

RESULT_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_throughput.json"

#: Pre-overhaul (seed, commit 975549e) rates in events/s, measured on
#: the machine that produced ``benchmarks/baselines/``, best of three.
#: Machine-dependent -- the recorded ``speedup_vs_seed`` factors are
#: only meaningful on comparable hardware, which is why the pytest
#: assertions below use the same-process ``run`` vs ``step`` pair and
#: conservative absolute floors instead.  Re-measure per
#: docs/PERFORMANCE.md when re-baselining.
SEED_RATES = {
    "drain": 252_900.0,
    "drain_step": 257_500.0,
    "raw_dispatch": 346_500.0,
    "fleet_1": 210_400.0,
    "fleet_10": 149_500.0,
    "fleet_50": 134_400.0,
    "fleet_50_no_telemetry": 122_300.0,
}


def _best(run_once):
    """Run a workload REPEATS times; return the best-rate row."""
    best = None
    for _ in range(REPEATS):
        row = run_once()
        if best is None or row["events_per_s"] > best["events_per_s"]:
            best = row
    return best


def run_population(count, telemetry_enabled=True):
    """The kernel fleet workload (unchanged since the seed)."""
    sim = Simulator(seed=1,
                    telemetry=Telemetry(enabled=telemetry_enabled))
    kernel = RTKernel(sim, KernelConfig(
        latency_model=NullLatencyModel(), trace_kernel=False))
    kernel.start_timer(1 * MSEC)
    for index in range(count):
        period = (1 + index % 10) * MSEC
        wcet = period // (2 * count)

        def body(task, wcet=wcet):
            while True:
                yield WaitPeriod()
                yield Compute(wcet)

        task = kernel.create_task("T%05d" % index, body,
                                  priority=index,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=period)
        kernel.start_task(task)
    start = time.perf_counter()
    sim.run_for(WINDOW)
    elapsed = time.perf_counter() - start
    return {
        "workload": "fleet_%d%s" % (count,
                                    "" if telemetry_enabled
                                    else "_no_telemetry"),
        "tasks": count,
        "events": sim.processed_events,
        "wall_s": elapsed,
        "events_per_s": sim.processed_events / elapsed,
        "sim_per_wall": WINDOW / 1e9 / elapsed,
    }


def run_raw_dispatch():
    """Self-rescheduling chains: one schedule + one fire per event."""
    sim = Simulator(seed=1, max_events=10_000_000)

    def tick(index):
        sim.schedule(1000, tick, index)

    for index in range(RAW_CHAINS):
        sim.schedule(index, tick, index)
    start = time.perf_counter()
    sim.run_for(RAW_WINDOW)
    elapsed = time.perf_counter() - start
    return {
        "workload": "raw_dispatch",
        "events": sim.processed_events,
        "wall_s": elapsed,
        "events_per_s": sim.processed_events / elapsed,
    }


def run_drain(api="run"):
    """Drain a pre-scheduled backlog (scheduling cost excluded)."""
    sim = Simulator(seed=1, max_events=10_000_000)

    def noop():
        pass

    for when in range(DRAIN_EVENTS):
        sim.schedule_at(when, noop)
    start = time.perf_counter()
    if api == "run":
        sim.run()
    else:
        while sim.step():
            pass
    elapsed = time.perf_counter() - start
    assert sim.processed_events == DRAIN_EVENTS
    return {
        "workload": "drain" if api == "run" else "drain_step",
        "events": sim.processed_events,
        "wall_s": elapsed,
        "events_per_s": sim.processed_events / elapsed,
    }


def run_ladder():
    """Run every workload; return (rows, derived summary)."""
    rows = [
        _best(lambda: run_drain("run")),
        _best(lambda: run_drain("step")),
        _best(run_raw_dispatch),
    ]
    for count in TASK_COUNTS:
        rows.append(_best(lambda count=count: run_population(count)))
    rows.append(_best(
        lambda: run_population(TASK_COUNTS[-1], telemetry_enabled=False)))

    rates = {row["workload"]: row["events_per_s"] for row in rows}
    summary = {
        "run_vs_step_speedup": rates["drain"] / rates["drain_step"],
        "fleet_overhead_growth":
            rates["fleet_%d" % TASK_COUNTS[0]]
            / rates["fleet_%d" % TASK_COUNTS[-1]],
        "speedup_vs_seed": {
            name: rates[name] / seed
            for name, seed in SEED_RATES.items() if name in rates
        },
    }
    return rows, summary


@pytest.mark.benchmark(group="simulator")
def test_simulator_throughput_ladder(benchmark):
    rows, summary = benchmark.pedantic(run_ladder, rounds=1,
                                       iterations=1)

    print("\nsimulator throughput ladder:")
    print("%-24s %10s %9s %14s" % ("workload", "events", "wall[s]",
                                   "events/s"))
    for row in rows:
        print("%-24s %10d %9.3f %14.0f"
              % (row["workload"], row["events"], row["wall_s"],
                 row["events_per_s"]))
    print("run vs step drain speedup: %.2fx"
          % summary["run_vs_step_speedup"])
    for name, factor in sorted(summary["speedup_vs_seed"].items()):
        print("speedup vs seed %-22s %6.2fx" % (name, factor))

    document = {
        "benchmark": "throughput",
        "task_counts": list(TASK_COUNTS),
        "drain_events": DRAIN_EVENTS,
        "rows": rows,
        "seed_rates": SEED_RATES,
        **summary,
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2,
                                      sort_keys=True) + "\n")
    benchmark.extra_info["summary"] = summary

    rates = {row["workload"]: row["events_per_s"] for row in rows}
    # Same-process before/after: the sorted-run drain must beat the
    # legacy per-event step API decisively.
    assert summary["run_vs_step_speedup"] > 1.5
    # Per-event overhead must not blow up as the fleet grows.
    assert summary["fleet_overhead_growth"] < 3.0
    # Conservative absolute floors (CI machines vary widely).
    assert rates["drain"] > 200_000
    assert rates["raw_dispatch"] > 100_000
    for count in TASK_COUNTS:
        assert rates["fleet_%d" % count] > 20_000
    # Event count scales with the task population, not worse.
    fleet_rows = {row.get("tasks"): row for row in rows
                  if row["workload"].startswith("fleet_")
                  and not row["workload"].endswith("telemetry")}
    assert fleet_rows[TASK_COUNTS[-1]]["events"] \
        < fleet_rows[TASK_COUNTS[0]]["events"] * TASK_COUNTS[-1] * 3
