"""Simulator performance: how fast the substrate itself runs.

Not a paper artifact, but table stakes for anyone adopting the library:
how much simulated time one wall-clock second buys, as the task
population grows.  Also guards against accidental complexity
regressions in the kernel's hot path (the event loop, dispatch,
release chain).
"""

import time

import pytest

from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import NullLatencyModel
from repro.rtos.requests import Compute, WaitPeriod
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, SEC, Simulator

TASK_COUNTS = (1, 10, 50)
WINDOW = 2 * SEC


def run_population(count):
    sim = Simulator(seed=1)
    kernel = RTKernel(sim, KernelConfig(
        latency_model=NullLatencyModel(), trace_kernel=False))
    kernel.start_timer(1 * MSEC)
    for index in range(count):
        period = (1 + index % 10) * MSEC
        wcet = period // (2 * count)

        def body(task, wcet=wcet):
            while True:
                yield WaitPeriod()
                yield Compute(wcet)

        task = kernel.create_task("T%05d" % index, body,
                                  priority=index,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=period)
        kernel.start_task(task)
    start = time.perf_counter()
    sim.run_for(WINDOW)
    elapsed = time.perf_counter() - start
    return {
        "tasks": count,
        "events": sim.processed_events,
        "wall_s": elapsed,
        "events_per_s": sim.processed_events / elapsed,
        "sim_per_wall": WINDOW / 1e9 / elapsed,
    }


@pytest.mark.benchmark(group="simulator")
def test_kernel_event_throughput(benchmark):
    def experiment():
        return [run_population(count) for count in TASK_COUNTS]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print("\nsimulator throughput (2 s simulated window):")
    print("%6s %10s %9s %14s %14s"
          % ("tasks", "events", "wall[s]", "events/s", "sim-s/wall-s"))
    for row in rows:
        print("%6d %10d %9.2f %14.0f %14.1f"
              % (row["tasks"], row["events"], row["wall_s"],
                 row["events_per_s"], row["sim_per_wall"]))
    benchmark.extra_info["rows"] = rows

    # Sanity floors (very conservative; CI machines vary).
    for row in rows:
        assert row["events_per_s"] > 20_000
    # Event count scales with the task population, not worse.
    assert rows[-1]["events"] < rows[0]["events"] * TASK_COUNTS[-1] * 3
