"""Experiment A2 -- ablation: resolving-policy comparison.

"This system allows itself to be easily extended with other constraint
resolving policies to fit different context" (abstract).  This ablation
quantifies the trade-off across the shipped policies on random
component workloads:

* **utilization-bound** (the paper's own cpuusage budget),
* **Liu-Layland** (sufficient RM bound -- conservative),
* **RM response-time analysis** (exact for fixed priorities),
* **EDF** (run on the EDF kernel scheduler).

Metrics per policy: how many of the offered components were admitted
(admission ratio = capacity extracted) and how many deadline misses the
admitted set then actually suffered (safety).  Expected shape: every
analytic policy stays safe (0 misses); RTA admits at least as much as
Liu-Layland; EDF extracts the most capacity.
"""

import pytest

from repro.core import (
    ComponentState,
    EDFPolicy,
    LiuLaylandPolicy,
    ResponseTimeAnalysisPolicy,
    UtilizationBoundPolicy,
)
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import SEC
from repro.sim.rng import RandomStreams

from conftest import deploy, make_descriptor_xml, quiet_platform, run_once

N_WORKLOADS = 8
COMPONENTS_PER_WORKLOAD = 8
WINDOW = 1 * SEC


def random_workload(rng, workload_index):
    """A batch of components with random rates/usages, RM priorities."""
    stream = "workload/%d" % workload_index
    components = []
    frequencies = []
    for index in range(COMPONENTS_PER_WORKLOAD):
        frequency = rng.choice(stream, [100, 200, 250, 500, 1000])
        usage = round(rng.uniform(stream, 0.05, 0.30), 3)
        frequencies.append((frequency, index))
        components.append({"name": "W%02dC%02d" % (workload_index,
                                                   index),
                           "frequency": frequency, "cpuusage": usage})
    # Rate-monotonic priorities: faster tasks get smaller numbers.
    order = sorted(range(len(components)),
                   key=lambda i: (-components[i]["frequency"], i))
    for priority, index in enumerate(order):
        components[index]["priority"] = priority
    return components


def run_policy(policy, scheduler_policy, workloads):
    admitted_total = 0
    offered_total = 0
    misses_total = 0
    for workload_index, components in enumerate(workloads):
        # Zero dispatch overheads: the analytic tests assume the ideal
        # machine, and EDF admits sets that fit *exactly* (U = 1), so a
        # fair safety comparison must run on the machine the analyses
        # model.  (A1 covers the overhead-aware budget story.)
        platform = quiet_platform(
            seed=100 + workload_index,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel(),
                scheduler_policy=scheduler_policy,
                irq_entry_ns=0, scheduler_overhead_ns=0,
                context_switch_ns=0),
            internal_policy=policy)
        for spec in components:
            xml = make_descriptor_xml(
                spec["name"], cpuusage=spec["cpuusage"],
                frequency=spec["frequency"],
                priority=spec["priority"])
            deploy(platform, xml, "a2.%s" % spec["name"].lower())
        platform.run_for(WINDOW)
        offered_total += len(components)
        for component in platform.drcr.registry.all():
            if component.state is ComponentState.ACTIVE:
                admitted_total += 1
                task = platform.kernel.lookup(
                    component.descriptor.task_name)
                misses_total += (task.stats.deadline_misses
                                 + task.stats.overruns)
    return {
        "admitted": admitted_total,
        "offered": offered_total,
        "ratio": admitted_total / offered_total,
        "misses": misses_total,
    }


@pytest.mark.benchmark(group="ablation-policies")
def test_policy_comparison(benchmark):
    rng = RandomStreams(77)
    workloads = [random_workload(rng, i) for i in range(N_WORKLOADS)]

    def experiment():
        return {
            "utilization-bound": run_policy(
                UtilizationBoundPolicy(cap=0.95), "priority",
                workloads),
            "liu-layland": run_policy(
                LiuLaylandPolicy(), "priority", workloads),
            "rm-rta": run_policy(
                ResponseTimeAnalysisPolicy(), "priority", workloads),
            "edf": run_policy(EDFPolicy(), "edf", workloads),
        }

    results = run_once(benchmark, experiment)
    print("\nA2 -- resolving-policy ablation "
          "(%d random workloads x %d components):"
          % (N_WORKLOADS, COMPONENTS_PER_WORKLOAD))
    print("%-20s %9s %9s %8s %8s"
          % ("policy", "admitted", "offered", "ratio", "misses"))
    for label, r in results.items():
        print("%-20s %9d %9d %7.0f%% %8d"
              % (label, r["admitted"], r["offered"], r["ratio"] * 100,
                 r["misses"]))
    benchmark.extra_info["results"] = results

    # Safety: every analytic policy keeps the admitted set clean.
    for label in ("liu-layland", "rm-rta", "edf", "utilization-bound"):
        assert results[label]["misses"] == 0, label

    # Capacity ordering: the exact RM test dominates the sufficient RM
    # bound; EDF (optimal) extracts at least as much as RM-RTA.
    assert results["rm-rta"]["admitted"] \
        >= results["liu-layland"]["admitted"]
    assert results["edf"]["admitted"] >= results["rm-rta"]["admitted"]
    # And the differences are real on these workloads.
    assert results["edf"]["admitted"] \
        > results["liu-layland"]["admitted"]
