"""Experiment A3 -- scaling: DRCR resolve cost and registry throughput.

Continuous deployment (section 1) means resolution runs *during
operation*; its cost must stay civil as the component population grows.
This benchmark measures, for fleets of 10..200 components (override the
ladder with ``A3_FLEET_SIZES=10,40,80``):

* the wall-clock cost of deploying the fleet (one batched
  reconfiguration round) and of deploying one more component into it,
  under the default **incremental** (dirty-set) reconfiguration,
* the same marginal deploy under the full-sweep mode
  (``incremental = False``) at the largest fleet, so the incremental
  speedup is measured on the same machine in the same process,
* the wall-clock cost of the departure cascade,
* OSGi service-registry query throughput with one LDAP filter per
  lookup (how adaptation managers find management services).

Shape asserted: the marginal deploy is ~O(affected) -- its growth
across a KxK fleet growth stays far below K -- the incremental marginal
deploy at the largest fleet beats the full sweep by >= 5x, and a
registry lookup stays under a millisecond.  The measured rows land in
``BENCH_scaling_drcr.json`` (CI uploads it and the guardrail in
``benchmarks/check_scaling_guardrail.py`` compares it against the
committed baseline).
"""

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.core import MANAGEMENT_SERVICE_INTERFACE, ComponentState
from conftest import deploy, make_descriptor_xml, quiet_platform, run_once

DEFAULT_FLEET_SIZES = (10, 50, 100, 200)
#: Marginal-deploy probes per fleet (median reported).
MARGINAL_PROBES = 5
RESULT_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_scaling_drcr.json"


def fleet_sizes():
    override = os.environ.get("A3_FLEET_SIZES")
    if not override:
        return DEFAULT_FLEET_SIZES
    return tuple(int(part) for part in override.split(",") if part)


def build_fleet(platform, size):
    """Deploy ``size`` chained components (each depends on the
    previous one's outport -- the worst case for cascades)."""
    with platform.drcr.batch():
        for index in range(size):
            inports = []
            if index > 0:
                inports = [("P%05d" % (index - 1), "RTAI.SHM",
                            "Integer", 2)]
            xml = make_descriptor_xml(
                "C%05d" % index, cpuusage=0.002, frequency=100,
                priority=min(200, index + 1),
                outports=[("P%05d" % index, "RTAI.SHM", "Integer", 2)],
                inports=inports)
            deploy(platform, xml, "fleet.c%05d" % index)


def measure_marginal(platform, size, tag):
    """Median wall-clock of deploying one more consumer of the chain
    tail (deploy + undeploy per probe keeps the fleet size fixed)."""
    samples = []
    for probe in range(MARGINAL_PROBES):
        xml = make_descriptor_xml(
            "X%s%02d" % (tag, probe), cpuusage=0.002, frequency=100,
            priority=201,
            inports=[("P%05d" % (size - 1), "RTAI.SHM", "Integer", 2)])
        start = time.perf_counter()
        bundle = deploy(platform, xml, "fleet.extra.%s%02d"
                        % (tag, probe))
        samples.append(time.perf_counter() - start)
        bundle.stop()
    return statistics.median(samples)


def measure_fleet(size, incremental=True):
    platform = quiet_platform(seed=size)
    platform.drcr.incremental = incremental
    start = time.perf_counter()
    build_fleet(platform, size)
    deploy_s = time.perf_counter() - start
    active = len(platform.drcr.registry.in_state(ComponentState.ACTIVE))

    # Marginal deploy: one more component into the existing fleet.
    marginal_s = measure_marginal(platform, size,
                                  "I" if incremental else "F")
    drcr_metrics = platform.telemetry.registry("drcr")
    dirty_set_size = drcr_metrics.get("dirty_set_size").value
    skipped = drcr_metrics.get("components_skipped_total").value

    # Departure cascade: kill the root -> everything deactivates.
    root = platform.framework.get_bundle("fleet.c%05d" % 0)
    start = time.perf_counter()
    root.stop()
    cascade_s = time.perf_counter() - start
    unsatisfied = len(platform.drcr.registry.in_state(
        ComponentState.UNSATISFIED))

    # Registry lookups with filters.
    root.start()
    lookups = 200
    start = time.perf_counter()
    for index in range(lookups):
        name = "C%05d" % (index % size)
        platform.framework.registry.get_reference(
            MANAGEMENT_SERVICE_INTERFACE, "(drcom.name=%s)" % name)
    lookup_s = (time.perf_counter() - start) / lookups

    return {
        "size": size,
        "mode": "incremental" if incremental else "full",
        "active": active,
        "deploy_total_ms": deploy_s * 1e3,
        "deploy_per_component_ms": deploy_s * 1e3 / size,
        "marginal_deploy_ms": marginal_s * 1e3,
        "last_dirty_set_size": dirty_set_size,
        "components_skipped_total": skipped,
        "cascade_ms": cascade_s * 1e3,
        "cascade_unsatisfied": unsatisfied,
        "lookup_us": lookup_s * 1e6,
    }


def write_results(document):
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")


@pytest.mark.benchmark(group="scaling")
def test_drcr_scaling(benchmark):
    sizes = fleet_sizes()

    def experiment():
        rows = [measure_fleet(size) for size in sizes]
        # Full-sweep comparison point at the largest fleet only (it is
        # the expensive historical path this benchmark retired).
        full_row = measure_fleet(sizes[-1], incremental=False)
        return rows, full_row

    rows, full_row = run_once(benchmark, experiment)
    print("\nA3 -- DRCR scaling (dependency-chained fleets):")
    print("%6s %12s %7s %12s %12s %8s %12s %10s"
          % ("size", "mode", "active", "deploy[ms]", "marginal[ms]",
             "dirty", "cascade[ms]", "lookup[us]"))
    for row in rows + [full_row]:
        print("%6d %12s %7d %12.1f %12.3f %8d %12.2f %10.1f"
              % (row["size"], row["mode"], row["active"],
                 row["deploy_total_ms"], row["marginal_deploy_ms"],
                 row["last_dirty_set_size"], row["cascade_ms"],
                 row["lookup_us"]))

    small, large = rows[0], rows[-1]
    fleet_growth = large["size"] / small["size"]
    marginal_growth = large["marginal_deploy_ms"] / max(
        small["marginal_deploy_ms"], 1e-6)
    speedup = full_row["marginal_deploy_ms"] / max(
        large["marginal_deploy_ms"], 1e-6)
    print("marginal growth %.2fx over a %.0fx fleet; incremental "
          "speedup at %d: %.1fx"
          % (marginal_growth, fleet_growth, large["size"], speedup))

    document = {
        "benchmark": "scaling_drcr",
        "fleet_sizes": list(sizes),
        "marginal_probes": MARGINAL_PROBES,
        "rows": rows,
        "full_sweep_row": full_row,
        "fleet_growth": fleet_growth,
        "marginal_growth": marginal_growth,
        "marginal_growth_per_fleet_growth":
            marginal_growth / fleet_growth,
        "incremental_speedup_at_max": speedup,
    }
    write_results(document)
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["full_sweep_row"] = full_row

    # Everything deployed resolved and activated.
    for row in rows:
        assert row["active"] == row["size"]
        # The departure cascade reached the whole chain (everything
        # but the disposed root itself).
        assert row["cascade_unsatisfied"] == row["size"] - 1

    # ~O(affected): the dirty set of a marginal deploy stays O(1), so
    # its cost growth across the ladder must stay well below the fleet
    # growth (a full sweep grows at least linearly with it).
    assert large["last_dirty_set_size"] <= 4
    assert marginal_growth < max(4.0, fleet_growth / 2)

    # The incremental marginal deploy beats the full sweep >= 5x at the
    # largest fleet (ISSUE 3 acceptance criterion; only asserted on the
    # full ladder -- reduced CI ladders leave less sweep to skip).
    if large["size"] >= 200:
        assert speedup >= 5.0

    # Filtered registry lookups stay under a millisecond even at 200
    # components.
    assert large["lookup_us"] < 1000
