"""Experiment A3 -- scaling: DRCR resolve cost and registry throughput.

Continuous deployment (section 1) means resolution runs *during
operation*; its cost must stay civil as the component population grows.
This benchmark measures, for fleets of 10..200 components:

* the wall-clock cost of deploying one more component (one reconfigure
  pass over the global view),
* the wall-clock cost of the departure cascade,
* OSGi service-registry query throughput with one LDAP filter per
  lookup (how adaptation managers find management services).

Shape asserted: per-component resolve cost grows sub-quadratically
(doubling the fleet must not quadruple the marginal cost by more than
the fixed tolerance), and a registry lookup stays under a millisecond.
"""

import time

import pytest

from repro.core import MANAGEMENT_SERVICE_INTERFACE, ComponentState
from conftest import deploy, make_descriptor_xml, quiet_platform, run_once

FLEET_SIZES = (10, 50, 100, 200)


def build_fleet(platform, size):
    """Deploy ``size`` chained components (each depends on the
    previous one's outport -- the worst case for cascades)."""
    for index in range(size):
        inports = []
        if index > 0:
            inports = [("P%05d" % (index - 1), "RTAI.SHM", "Integer",
                        2)]
        xml = make_descriptor_xml(
            "C%05d" % index, cpuusage=0.002, frequency=100,
            priority=min(200, index + 1),
            outports=[("P%05d" % index, "RTAI.SHM", "Integer", 2)],
            inports=inports)
        deploy(platform, xml, "fleet.c%05d" % index)


def measure_fleet(size):
    platform = quiet_platform(seed=size)
    start = time.perf_counter()
    build_fleet(platform, size)
    deploy_s = time.perf_counter() - start
    active = len(platform.drcr.registry.in_state(ComponentState.ACTIVE))

    # Marginal deploy: one more component into the existing fleet.
    xml = make_descriptor_xml(
        "X%05d" % size, cpuusage=0.002, frequency=100, priority=201,
        inports=[("P%05d" % (size - 1), "RTAI.SHM", "Integer", 2)])
    start = time.perf_counter()
    extra = deploy(platform, xml, "fleet.extra")
    marginal_s = time.perf_counter() - start

    # Departure cascade: kill the root -> everything deactivates.
    root = platform.framework.get_bundle("fleet.c%05d" % 0)
    start = time.perf_counter()
    root.stop()
    cascade_s = time.perf_counter() - start
    unsatisfied = len(platform.drcr.registry.in_state(
        ComponentState.UNSATISFIED))

    # Registry lookups with filters.
    root.start()
    lookups = 200
    start = time.perf_counter()
    for index in range(lookups):
        name = "C%05d" % (index % size)
        platform.framework.registry.get_reference(
            MANAGEMENT_SERVICE_INTERFACE, "(drcom.name=%s)" % name)
    lookup_s = (time.perf_counter() - start) / lookups

    return {
        "size": size,
        "active": active,
        "deploy_total_ms": deploy_s * 1e3,
        "deploy_per_component_ms": deploy_s * 1e3 / size,
        "marginal_deploy_ms": marginal_s * 1e3,
        "cascade_ms": cascade_s * 1e3,
        "cascade_unsatisfied": unsatisfied,
        "lookup_us": lookup_s * 1e6,
    }


@pytest.mark.benchmark(group="scaling")
def test_drcr_scaling(benchmark):
    def experiment():
        return [measure_fleet(size) for size in FLEET_SIZES]

    rows = run_once(benchmark, experiment)
    print("\nA3 -- DRCR scaling (dependency-chained fleets):")
    print("%6s %7s %12s %14s %12s %12s %10s"
          % ("size", "active", "deploy[ms]", "per-comp[ms]",
             "marginal[ms]", "cascade[ms]", "lookup[us]"))
    for row in rows:
        print("%6d %7d %12.1f %14.3f %12.2f %12.2f %10.1f"
              % (row["size"], row["active"], row["deploy_total_ms"],
                 row["deploy_per_component_ms"],
                 row["marginal_deploy_ms"], row["cascade_ms"],
                 row["lookup_us"]))
    benchmark.extra_info["rows"] = rows

    # Everything deployed resolved and activated.
    for row in rows:
        assert row["active"] == row["size"]
        # The departure cascade reached the whole chain.
        assert row["cascade_unsatisfied"] == row["size"] - 1 + 1

    # Marginal deploy cost growth stays tame: 20x the fleet must not
    # cost more than ~80x per marginal deploy (sub-quadratic).
    small, large = rows[0], rows[-1]
    growth = large["marginal_deploy_ms"] / max(
        small["marginal_deploy_ms"], 1e-6)
    assert growth < (large["size"] / small["size"]) ** 2

    # Filtered registry lookups stay under a millisecond even at 200
    # components.
    assert large["lookup_us"] < 1000
