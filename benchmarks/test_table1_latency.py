"""Experiment T1 -- the paper's Table 1.

Scheduling latency (AVERAGE / AVEDEV / MIN / MAX, nanoseconds) of the
1000 Hz calculation task, measured for four cells:

* HRC (the hybrid declarative component) vs Pure RTAI (LXRT tasks
  created directly, no management poll), and
* light mode vs stress mode (the paper's three load commands driving
  Linux CPU usage to ~100%).

Paper values (Table 1)::

                     AVERAGE     AVEDEV      MIN       MAX
    HRC (light)      -1334.9     3760.03    -24125     21489
    Pure RTAI(light)  -633.8     3682.82    -25436     23798
    HRC (stress)    -21083.74     338.89    -23314    -17956
    Pure RTAI(str.) -21184.52     385.41    -25233    -18834

Shape asserted here:

* every average is negative (periodic-mode timer fires early);
* stress shifts the average to about -21 us and *tightens* the
  distribution by an order of magnitude;
* HRC is statistically indistinguishable from pure RTAI in both modes
  (mean gap well inside one AVEDEV) -- the paper's headline "the
  latency result in the declarative component mode actually has no much
  difference with the application in pure RTAI environments";
* the 30 us bound the paper quotes holds.

Scale-out variant (Experiment C4): ``T1_FLEET_MULT=10`` multiplies the
fleet -- the measured CALC00/DISP00 pair plus ``MULT - 1`` background
pairs at lower (numerically higher) priorities.  The assertions are
unchanged: every Table 1 cell must hold with 10x the components on the
platform, because scheduling latency here is a hardware wakeup-path
effect and the background fleet cannot preempt the measured task.  The
default (``1``) reproduces the paper's two-component app exactly.
"""

import os

import pytest

from repro.rtos.load import apply_stress
from repro.rtos.lxrt import LXRT
from repro.rtos.requests import Compute, WaitPeriod
from repro.sim.engine import MSEC, SEC, USEC

from conftest import deploy, make_descriptor_xml, noisy_platform, run_once

#: Simulated measurement window per cell (the paper samples thousands
#: of periods; 4 s at 1000 Hz gives 4000).
WINDOW = 4 * SEC
SETTLE = 50 * MSEC

#: Fleet multiplier (Experiment C4): total component pairs deployed
#: per cell; pairs beyond the first are unmeasured background load.
FLEET_MULT = max(int(os.environ.get("T1_FLEET_MULT", "1")), 1)

CALC_XML = make_descriptor_xml(
    "CALC00", cpuusage=0.03, frequency=1000, priority=2,
    outports=[("LATDAT", "RTAI.SHM", "Integer", 4)])
DISP_XML = make_descriptor_xml(
    "DISP00", cpuusage=0.01, frequency=250, priority=3,
    inports=[("LATDAT", "RTAI.SHM", "Integer", 4)])


def _deploy_background_fleet(platform):
    """``FLEET_MULT - 1`` extra HRC pairs below the measured app's
    priorities (the bitmap ready queues take the spread in stride)."""
    for index in range(FLEET_MULT - 1):
        port = ("BG%04d" % index, "RTAI.SHM", "Integer", 4)
        deploy(platform, make_descriptor_xml(
            "BGC%03d" % index, cpuusage=0.02, frequency=500,
            priority=10 + 2 * index, outports=[port]),
            "bench.bgc%03d" % index)
        deploy(platform, make_descriptor_xml(
            "BGD%03d" % index, cpuusage=0.01, frequency=125,
            priority=11 + 2 * index, inports=[port]),
            "bench.bgd%03d" % index)


def _create_background_fleet(lxrt):
    """The LXRT rendition of the same background pairs."""
    for index in range(FLEET_MULT - 1):
        def producer_body(task):
            while True:
                yield WaitPeriod()
                yield Compute(40 * USEC)

        def consumer_body(task):
            while True:
                yield WaitPeriod()
                yield Compute(20 * USEC)

        producer = lxrt.rt_task_init("BGP%03d" % index, producer_body,
                                     priority=10 + 2 * index)
        consumer = lxrt.rt_task_init("BGQ%03d" % index, consumer_body,
                                     priority=11 + 2 * index)
        lxrt.rt_task_make_periodic(producer, 2 * MSEC)
        lxrt.rt_task_make_periodic(consumer, 8 * MSEC)


def _measure(task, platform):
    platform.run_for(SETTLE)
    task.stats.latency.clear()
    platform.run_for(WINDOW)
    return task.stats.latency.summary()


def run_hrc_cell(stress, seed=2008):
    """The declarative-component implementation of the test app."""
    platform = noisy_platform(seed=seed)
    deploy(platform, CALC_XML, "bench.calc")
    deploy(platform, DISP_XML, "bench.disp")
    _deploy_background_fleet(platform)
    if stress:
        apply_stress(platform.kernel)
    task = platform.kernel.lookup("CALC00")
    summary = _measure(task, platform)
    summary["misses"] = task.stats.deadline_misses
    return summary


def run_pure_rtai_cell(stress, seed=2008):
    """The same application written directly against LXRT."""
    platform = noisy_platform(seed=seed)
    lxrt = LXRT(platform.kernel)
    shm = lxrt.rt_shm_alloc("LATDAT", "Integer", 4, owner="pure")

    def calc_body(task):
        counter = 0
        while True:
            yield WaitPeriod()
            yield Compute(30 * USEC)
            counter += 1
            shm.write_at(0, counter, writer=task.name)

    def disp_body(task):
        while True:
            yield WaitPeriod()
            yield Compute(10 * USEC)
            shm.read_at(0)

    calc = lxrt.rt_task_init("CALC00", calc_body, priority=2)
    disp = lxrt.rt_task_init("DISP00", disp_body, priority=3)
    lxrt.rt_task_make_periodic(calc, 1 * MSEC, collect_latency=True)
    lxrt.rt_task_make_periodic(disp, 4 * MSEC, collect_latency=True)
    _create_background_fleet(lxrt)
    if stress:
        apply_stress(platform.kernel)
    summary = _measure(calc, platform)
    summary["misses"] = calc.stats.deadline_misses
    return summary


def _print_table(cells):
    print()
    print("Table 1 -- Latency Test (light & stress) mode  [ns]")
    print("%-18s %12s %10s %10s %10s" % ("", "AVERAGE", "AVEDEV",
                                         "MIN", "MAX"))
    for label, s in cells.items():
        print("%-18s %12.2f %10.2f %10d %10d"
              % (label, s["average"], s["avedev"], s["min"], s["max"]))
    print("(paper)            HRC light -1334.9/3760; pure light "
          "-633.8/3683; HRC stress -21083.7/338.9; pure stress "
          "-21184.5/385.4")


@pytest.mark.benchmark(group="table1")
def test_table1_latency(benchmark):
    def experiment():
        return {
            "HRC (light)": run_hrc_cell(stress=False),
            "Pure RTAI (light)": run_pure_rtai_cell(stress=False),
            "HRC (stress)": run_hrc_cell(stress=True),
            "Pure RTAI (stress)": run_pure_rtai_cell(stress=True),
        }

    cells = run_once(benchmark, experiment)
    if FLEET_MULT > 1:
        print("\n(C4 scale-out: %d component pairs per cell, "
              "T1_FLEET_MULT=%d)" % (FLEET_MULT, FLEET_MULT))
    _print_table(cells)
    benchmark.extra_info["fleet_mult"] = FLEET_MULT
    benchmark.extra_info["cells"] = {
        label: {k: round(float(v), 2) for k, v in s.items()}
        for label, s in cells.items()}

    hrc_light = cells["HRC (light)"]
    pure_light = cells["Pure RTAI (light)"]
    hrc_stress = cells["HRC (stress)"]
    pure_stress = cells["Pure RTAI (stress)"]

    # -- every cell has thousands of samples and zero misses ----------
    for cell in cells.values():
        assert cell["count"] >= 3900
        assert cell["misses"] == 0

    # -- averages negative: the periodic timer fires early ------------
    for cell in cells.values():
        assert cell["average"] < 0

    # -- light mode: small mean, wide heavy-tailed jitter --------------
    for cell in (hrc_light, pure_light):
        assert -4000 < cell["average"] < 0
        assert 2500 < cell["avedev"] < 5000
        assert cell["min"] < -15_000
        assert cell["max"] > 10_000

    # -- stress mode: ~-21 us shift, an order of magnitude tighter ----
    for cell in (hrc_stress, pure_stress):
        assert -23_000 < cell["average"] < -19_000
        assert cell["avedev"] < 1000
        assert cell["max"] < 0
    assert hrc_stress["avedev"] < hrc_light["avedev"] / 5

    # -- HRC vs pure RTAI: "no much difference" ------------------------
    assert abs(hrc_light["average"] - pure_light["average"]) \
        < pure_light["avedev"]
    assert abs(hrc_stress["average"] - pure_stress["average"]) \
        < 3 * pure_stress["avedev"]

    # -- the paper's 30 us guarantee -----------------------------------
    for cell in cells.values():
        assert abs(cell["min"]) < 30_000
        assert abs(cell["max"]) < 30_000


@pytest.mark.benchmark(group="table1")
def test_table1_stress_isolation_is_structural(benchmark):
    """Sanity companion: with the mechanical (zero-jitter) model the
    latency under stress is *bit-identical* to light mode -- Linux load
    has no scheduling influence at all; Table 1's shift is purely a
    hardware wakeup-path effect."""
    from repro.rtos.kernel import KernelConfig
    from repro.rtos.latency import NullLatencyModel

    def run(stress):
        platform = noisy_platform(
            seed=3,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel()))
        deploy(platform, CALC_XML, "bench.calc")
        if stress:
            apply_stress(platform.kernel)
        task = platform.kernel.lookup("CALC00")
        platform.run_for(1 * SEC)
        return task.stats.latency.values

    def experiment():
        return run(False), run(True)

    light, stress = run_once(benchmark, experiment)
    assert light == stress
