"""Experiment C6b -- scaling: stochastic-contract monitor overhead.

The :class:`~repro.monitor.service.ContractMonitor` rides inside the
simulation loop (sample taps on four kernel hot-path sites, a
chi-square pass per monitored clause per epoch), so its wall-clock
overhead bounds how much of a fleet can afford distribution checking.
This benchmark ladders the monitored-component population 4..32
(override with ``C6_FLEET_SIZES=4,8``) and runs the *same* honest
fleet twice -- once bare, once monitored -- measuring:

* the wall-clock cost of one simulated second each way, and the
  monitored/bare overhead ratio (both legs run in one process, so the
  ratio survives machine changes);
* the per-component marginal cost of monitoring.

Asserted shape: the monitor's checks all actually ran (no silently
skipped epochs), the overhead ratio stays modest (< 2x) at every
ladder rung, and the ratio's growth across the ladder stays well
below linear-in-fleet (taps are O(1) per event, the GOF pass is
O(samples) per epoch).  Rows land in ``BENCH_contracts.json`` and
``benchmarks/check_scaling_guardrail.py`` compares them against the
committed baseline.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.contracts import DistributionSpec, StochasticContract
from repro.core.descriptor import ComponentDescriptor
from repro.hybrid.implementation import (
    RTImplementation,
    default_registry,
)
from repro.monitor.service import ContractMonitor
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, SEC
from repro.sim.rng import RandomStreams

from conftest import quiet_platform, run_once

DEFAULT_FLEET_SIZES = (4, 8, 16, 32)
RUN_NS = 1 * SEC
EPOCH_NS = 100 * MSEC
RESULT_PATH = Path(__file__).resolve().parent.parent \
    / "BENCH_contracts.json"

DECLARED = StochasticContract(
    exectime=DistributionSpec("uniform", min_ns=20_000, max_ns=40_000),
    tolerance=0.01, min_samples=32)


class HonestImplementation(RTImplementation):
    def __init__(self, stream):
        self._stream = stream

    def compute_ns(self, ctx):
        return int(self._stream.uniform(20_000, 40_000))


def fleet_sizes():
    override = os.environ.get("C6_FLEET_SIZES")
    if not override:
        return DEFAULT_FLEET_SIZES
    return tuple(int(part) for part in override.split(",") if part)


def _deploy_fleet(platform, count, bincode):
    # 500 Hz per component keeps ~50 samples per 100 ms epoch (the
    # check really evaluates) while the ladder stays schedulable on
    # the default CPU count.
    for index in range(count):
        platform.drcr.register_component(ComponentDescriptor(
            name="MON%03d" % index, implementation=bincode,
            task_type=TaskType.PERIODIC, cpu_usage=0.02,
            frequency_hz=500.0, priority=3 + index % 5,
            cpu=index % platform.kernel.config.num_cpus,
            stochastic=DECLARED))


def measure(count, monitored):
    bincode = "bench.contracts.honest"
    streams = RandomStreams(1000 + count)
    default_registry.register(
        bincode,
        lambda: HonestImplementation(streams.stream("honest")))
    try:
        platform = quiet_platform(seed=count)
        _deploy_fleet(platform, count, bincode)
        monitor = None
        if monitored:
            monitor = ContractMonitor(platform, epoch_ns=EPOCH_NS)
            monitor.start()
        start = time.perf_counter()
        platform.run_for(RUN_NS)
        elapsed = time.perf_counter() - start
        checks = violations = 0
        if monitor is not None:
            registry = platform.telemetry.registry("contracts")
            checks = registry.counter("checks_total").value
            violations = registry.counter("violations_total").value
            monitor.stop()
        platform.shutdown()
        return elapsed, checks, violations
    finally:
        default_registry.unregister(bincode)


@pytest.mark.benchmark(group="scaling")
def test_contracts_scaling(benchmark):
    sizes = fleet_sizes()

    def experiment():
        rows = []
        for count in sizes:
            bare_s, _, _ = measure(count, monitored=False)
            monitored_s, checks, violations = measure(count,
                                                      monitored=True)
            rows.append({
                "components": count,
                "bare_s": bare_s,
                "monitored_s": monitored_s,
                "overhead_ratio": monitored_s / max(bare_s, 1e-9),
                "marginal_us_per_component":
                    (monitored_s - bare_s) / count * 1e6,
                "checks": checks,
                "violations": violations,
            })
        return rows

    rows = run_once(benchmark, experiment)
    print("\nC6b -- contract-monitor overhead scaling:")
    print("%6s %10s %13s %10s %8s"
          % ("fleet", "bare[s]", "monitored[s]", "overhead", "checks"))
    for row in rows:
        print("%6d %10.3f %13.3f %9.2fx %8d"
              % (row["components"], row["bare_s"], row["monitored_s"],
                 row["overhead_ratio"], row["checks"]))

    small, large = rows[0], rows[-1]
    fleet_growth = large["components"] / small["components"]
    overhead_growth = large["overhead_ratio"] \
        / max(small["overhead_ratio"], 1e-9)
    print("overhead ratio grew %.2fx over a %.0fx fleet growth"
          % (overhead_growth, fleet_growth))

    document = {
        "benchmark": "contracts",
        "fleet_sizes": list(sizes),
        "run_ns": RUN_NS,
        "epoch_ns": EPOCH_NS,
        "rows": rows,
        "fleet_growth": fleet_growth,
        "overhead_growth": overhead_growth,
        "overhead_at_max": large["overhead_ratio"],
    }
    RESULT_PATH.write_text(json.dumps(document, indent=2) + "\n")
    benchmark.extra_info["rows"] = rows

    expected_epochs = RUN_NS // EPOCH_NS
    for row in rows:
        # every component was really checked every epoch...
        assert row["checks"] == row["components"] * expected_epochs
        # ...no honest component was ever (falsely) rejected with
        # patience=2 at tolerance 0.01...
        assert row["violations"] == 0
        # ...and monitoring never doubles the cost of the simulation.
        assert row["overhead_ratio"] < 2.0
    # Overhead stays flat-ish across the ladder: monitoring cost per
    # simulated event must not itself grow with the fleet.
    assert overhead_growth < fleet_growth / 2
