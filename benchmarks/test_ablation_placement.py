"""Experiment A5 -- ablation: automatic placement on a duo-core box.

The paper's testbed CPU was a duo-core T5500, but its descriptors pin
components to a CPU at design time (``runoncup``).  This ablation
quantifies what a placement service buys on two CPUs: admitted
capacity, balance, and contract-cleanliness, for a stream of components
all pinned (by their developers) to CPU 0.
"""

import pytest

from repro.core import ComponentState, UtilizationBoundPolicy
from repro.core.placement import BestFitPlacement, FirstFitPlacement
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml, run_once

N_COMPONENTS = 10
USAGE = 0.19


def run_configuration(placement):
    platform = build_platform(
        seed=23,
        kernel_config=KernelConfig(num_cpus=2,
                                   latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=0.95))
    platform.drcr.placement_service = placement
    platform.start_timer(1 * MSEC)
    for index in range(N_COMPONENTS):
        xml = make_descriptor_xml(
            "PLC%03d" % index, cpuusage=USAGE, frequency=1000,
            priority=1 + index, cpu=0)
        deploy(platform, xml, "a5.plc%03d" % index)
    platform.run_for(1 * SEC)
    active = platform.drcr.registry.in_state(ComponentState.ACTIVE)
    misses = sum(
        platform.kernel.lookup(c.descriptor.task_name)
        .stats.deadline_misses for c in active)
    return {
        "admitted": len(active),
        "cpu0": platform.drcr.registry.declared_utilization(0),
        "cpu1": platform.drcr.registry.declared_utilization(1),
        "misses": misses,
    }


@pytest.mark.benchmark(group="ablation-placement")
def test_placement_ablation(benchmark):
    def experiment():
        return {
            "pinned (paper default)": run_configuration(None),
            "first-fit": run_configuration(FirstFitPlacement(cap=0.95)),
            "best-fit": run_configuration(BestFitPlacement(cap=0.95)),
        }

    results = run_once(benchmark, experiment)
    print("\nA5 -- placement ablation (%d components x %.0f%%, "
          "2 CPUs, all descriptor-pinned to CPU 0):"
          % (N_COMPONENTS, USAGE * 100))
    print("%-24s %9s %8s %8s %8s"
          % ("placement", "admitted", "cpu0", "cpu1", "misses"))
    for label, r in results.items():
        print("%-24s %9d %7.0f%% %7.0f%% %8d"
              % (label, r["admitted"], r["cpu0"] * 100,
                 r["cpu1"] * 100, r["misses"]))
    benchmark.extra_info["results"] = results

    pinned = results["pinned (paper default)"]
    first_fit = results["first-fit"]
    best_fit = results["best-fit"]

    # Pinned: only CPU 0's budget usable -> 5 of 10 admitted.
    assert pinned["admitted"] == 5
    assert pinned["cpu1"] == 0.0

    # Both placement policies double the admitted capacity.
    for r in (first_fit, best_fit):
        assert r["admitted"] == 10
        assert r["misses"] == 0
        assert r["cpu1"] > 0

    # Best-fit balances; first-fit fills CPU 0 first.
    assert abs(best_fit["cpu0"] - best_fit["cpu1"]) < 0.2
    assert first_fit["cpu0"] >= first_fit["cpu1"]
