"""Experiment A6 -- Declarative Services vs the DRCom model.

Section 2.1's critique of OSGi's Declarative Services: "the policy for
service matching is predefined and static, whereas the requirements of
real-time applications are normally very complex and application
specific."  DS checks *functional* satisfaction only; it will happily
activate a set of components whose real-time contracts cannot coexist.

Both runtimes host the same six components (declared contracts totalling
~144% of one CPU) on the same kernel:

* **DS** activates every functionally-satisfied component -- the CPU
  overloads and the low-priority half misses en masse;
* **DRCR** admits only the feasible subset and keeps it contract-clean,
  while the rest wait UNSATISFIED for budget.
"""

import pytest

from repro.core import ComponentState, UtilizationBoundPolicy
from repro.osgi.declarative import ComponentDescription, DSRuntime
from repro.rtos.requests import Compute, WaitPeriod
from repro.rtos.task import TaskType
from repro.sim.engine import SEC

from conftest import deploy, make_descriptor_xml, quiet_platform, run_once

N_COMPONENTS = 6
USAGE = 0.24
WINDOW = 2 * SEC


def contract_parameters(index):
    return {
        "name": "SVC%03d" % index,
        "cpuusage": USAGE,
        "frequency": 1000,
        "priority": 2 + index,
    }


def run_drcom():
    platform = quiet_platform(
        seed=5, internal_policy=UtilizationBoundPolicy(cap=1.0))
    for index in range(N_COMPONENTS):
        params = contract_parameters(index)
        deploy(platform, make_descriptor_xml(**params),
               "a6.svc%03d" % index)
    platform.run_for(WINDOW)
    active = platform.drcr.registry.in_state(ComponentState.ACTIVE)
    misses = sum(
        platform.kernel.lookup(c.descriptor.task_name).stats
        .deadline_misses
        + platform.kernel.lookup(c.descriptor.task_name).stats.overruns
        for c in active)
    return {"active": len(active), "misses": misses}


def run_declarative_services():
    platform = quiet_platform(seed=5)
    kernel = platform.kernel
    ds = DSRuntime(platform.framework)

    class ServiceImpl:
        """A DS component that starts its RT task on activate --
        faithful to how a real-time bundle would behave on plain OSGi,
        with nobody checking the CPU budget."""

        def __init__(self, params):
            self.params = params
            self.task = None

        def activate(self, component):
            period = 1_000_000_000 // self.params["frequency"]
            wcet = int(self.params["cpuusage"] * period)

            def body(task):
                while True:
                    yield WaitPeriod()
                    yield Compute(wcet)

            self.task = kernel.create_task(
                self.params["name"], body, self.params["priority"],
                task_type=TaskType.PERIODIC, period_ns=period)
            kernel.start_task(self.task)

        def deactivate(self, component):
            kernel.delete_task(self.task)

    impls = []
    for index in range(N_COMPONENTS):
        params = contract_parameters(index)
        impl = ServiceImpl(params)
        impls.append(impl)
        ds.add_component(ComponentDescription(
            params["name"], lambda comp, impl=impl: impl,
            provides="IService"))
    platform.run_for(WINDOW)
    active = [impl for impl in impls if impl.task is not None]
    misses = sum(impl.task.stats.deadline_misses
                 + impl.task.stats.overruns for impl in active)
    return {"active": len(active), "misses": misses}


@pytest.mark.benchmark(group="ds-vs-drcom")
def test_ds_vs_drcom(benchmark):
    def experiment():
        return {
            "Declarative Services": run_declarative_services(),
            "DRCom/DRCR": run_drcom(),
        }

    results = run_once(benchmark, experiment)
    print("\nA6 -- DS vs DRCom (%d components x %.0f%% declared):"
          % (N_COMPONENTS, USAGE * 100))
    print("%-24s %8s %8s" % ("runtime", "active", "misses"))
    for label, r in results.items():
        print("%-24s %8d %8d" % (label, r["active"], r["misses"]))
    benchmark.extra_info["results"] = results

    ds = results["Declarative Services"]
    drcom = results["DRCom/DRCR"]

    # DS: functional satisfaction only -> everything activates and the
    # contract violations pile up.
    assert ds["active"] == N_COMPONENTS
    assert ds["misses"] > 100

    # DRCom: the admitted subset runs clean.
    assert drcom["active"] == 4          # 4 x 0.24 <= 1.0 < 5 x 0.24
    assert drcom["misses"] == 0
