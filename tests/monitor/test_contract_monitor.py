"""The runtime ContractMonitor: taps, epoch checks, quarantine routing
and the adaptation-context export."""

import os
import re

import pytest

from repro.core.contracts import DistributionSpec, StochasticContract
from repro.core.descriptor import ComponentDescriptor
from repro.faults.recovery import QuarantinePolicy
from repro.hybrid.implementation import (
    RTImplementation,
    default_registry,
)
from repro.monitor import ContractMonitor, StochasticContextProvider
from repro.platform import build_platform
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, SEC

DECLARED = StochasticContract(
    exectime=DistributionSpec("uniform", min_ns=40_000, max_ns=60_000),
    tolerance=0.01, min_samples=32)


class HonestImplementation(RTImplementation):
    """Draws execution times from the declared distribution."""

    def __init__(self, stream):
        self._stream = stream

    def compute_ns(self, ctx):
        return int(self._stream.uniform(40_000, 60_000))


class LyingImplementation(RTImplementation):
    """Bimodal reality against a uniform declaration."""

    def __init__(self, stream):
        self._stream = stream

    def compute_ns(self, ctx):
        if self._stream.random() < 0.4:
            return 95_000
        return 45_000


def _descriptor(name, bincode, stochastic=DECLARED):
    return ComponentDescriptor(
        name=name, implementation=bincode,
        task_type=TaskType.PERIODIC, cpu_usage=0.1,
        frequency_hz=1000.0, priority=5, stochastic=stochastic)


@pytest.fixture
def platform():
    p = build_platform(seed=3)
    p.drcr.set_recovery_policy(
        QuarantinePolicy(cooldown_ns=100 * SEC))
    p.start_timer(1 * MSEC)
    yield p
    p.shutdown()


@pytest.fixture
def bincode(platform):
    from repro.sim.rng import RandomStreams
    streams = RandomStreams(99)
    default_registry.register(
        "test.honest",
        lambda: HonestImplementation(streams.stream("honest")))
    default_registry.register(
        "test.lying",
        lambda: LyingImplementation(streams.stream("lying")))
    yield
    default_registry.unregister("test.honest")
    default_registry.unregister("test.lying")


class TestMonitorChecks:
    def test_honest_component_passes_every_epoch(self, platform,
                                                 bincode):
        platform.drcr.register_component(
            _descriptor("HONST0", "test.honest"))
        monitor = ContractMonitor(platform, epoch_ns=100 * MSEC)
        monitor.start()
        platform.run_for(1 * SEC)
        assert monitor.monitored == ["HONST0"]
        assert monitor.total_violations == 0
        registry = platform.telemetry.registry("contracts")
        assert registry.counter("checks_total").value == 10
        assert registry.counter("violations_total").value == 0
        # The per-clause p-value gauge is exported and plausible.
        gauge = registry.gauge("p_value.HONST0.exectime")
        assert 0.0 <= gauge.value <= 1.0
        assert platform.drcr.component_state("HONST0").value \
            == "active"

    def test_lying_component_is_quarantined(self, platform, bincode):
        platform.drcr.register_component(
            _descriptor("LIAR00", "test.lying"))
        monitor = ContractMonitor(platform, epoch_ns=100 * MSEC,
                                  patience=2)
        monitor.start()
        platform.run_for(1 * SEC)
        assert monitor.total_violations == 1
        (time_ns, component, clause, p_value) = monitor.violations[0]
        assert component == "LIAR00"
        assert clause == "exectime"
        assert p_value < DECLARED.tolerance
        # patience=2 at 100 ms epochs: quarantined at the second check
        assert time_ns == 200 * MSEC
        # Routed through DRCR quarantine, not torn down by hand.
        assert platform.drcr.component_state("LIAR00").value \
            == "disabled"
        assert monitor.monitored == []
        registry = platform.telemetry.registry("contracts")
        assert registry.counter("quarantines_total").value == 1

    def test_observe_only_mode_never_quarantines(self, platform,
                                                 bincode):
        platform.drcr.register_component(
            _descriptor("LIAR00", "test.lying"))
        monitor = ContractMonitor(platform, epoch_ns=100 * MSEC,
                                  quarantine=False)
        monitor.start()
        platform.run_for(1 * SEC)
        assert monitor.total_violations > 0
        assert platform.drcr.component_state("LIAR00").value \
            == "active"
        registry = platform.telemetry.registry("contracts")
        assert registry.counter("quarantines_total").value == 0

    def test_interarrival_clause_skipped_for_periodic(self, platform,
                                                      bincode):
        # The runtime twin of drtlint's DRT700: a periodic component
        # declaring only an interarrival distribution has nothing the
        # monitor can check, so it is not monitored at all.
        stochastic = StochasticContract(
            interarrival=DistributionSpec("exponential",
                                          mean_ns=1_000_000))
        platform.drcr.register_component(
            _descriptor("PERIA0", "test.honest",
                        stochastic=stochastic))
        monitor = ContractMonitor(platform, epoch_ns=100 * MSEC)
        monitor.start()
        platform.run_for(300 * MSEC)
        assert monitor.monitored == []

    def test_stop_detaches_and_stops_checking(self, platform,
                                              bincode):
        platform.drcr.register_component(
            _descriptor("HONST0", "test.honest"))
        monitor = ContractMonitor(platform, epoch_ns=100 * MSEC)
        monitor.start()
        platform.run_for(250 * MSEC)
        monitor.stop()
        registry = platform.telemetry.registry("contracts")
        checks = registry.counter("checks_total").value
        platform.run_for(500 * MSEC)
        assert registry.counter("checks_total").value == checks
        assert monitor.monitored == []

    def test_unmonitored_fleet_needs_no_monitor_state(self, platform):
        # Components without a <stochastic> clause are ignored.
        platform.drcr.register_component(ComponentDescriptor(
            name="PLAIN0", implementation="impl.Class",
            task_type=TaskType.PERIODIC, cpu_usage=0.05,
            frequency_hz=100.0, priority=4))
        monitor = ContractMonitor(platform, epoch_ns=100 * MSEC)
        monitor.start()
        platform.run_for(300 * MSEC)
        assert monitor.monitored == []
        registry = platform.telemetry.registry("contracts")
        assert registry.counter("checks_total").value == 0


class TestContextProvider:
    def test_exports_last_epoch_findings(self, platform, bincode):
        platform.drcr.register_component(
            _descriptor("LIAR00", "test.lying"))
        monitor = ContractMonitor(platform, epoch_ns=100 * MSEC,
                                  patience=2)
        provider = StochasticContextProvider(monitor, node="edge0")
        monitor.start()
        platform.run_for(150 * MSEC)
        early = provider.collect(platform.now)
        assert early["stochastic_violations"] == 0.0
        assert early["stochastic_checks"] == 1.0
        platform.run_for(100 * MSEC)  # second strike -> violation
        late = provider.collect(platform.now)
        assert late["stochastic_violations"] == 1.0
        assert late["stochastic_violations@edge0"] == 1.0

    def test_params_are_in_the_context_catalog(self):
        from repro.adapt.context import CONTEXT_PARAMS
        assert "stochastic_violations" in CONTEXT_PARAMS
        assert "stochastic_checks" in CONTEXT_PARAMS


def test_no_private_attribute_access_in_monitor_package():
    """The layering rule (docs/ARCHITECTURE.md): the monitor reads
    telemetry and acts only through public kernel/DRCR surfaces -- no
    ``obj._name`` access in repro.monitor except on ``self``/``cls``."""
    package = os.path.join(os.path.dirname(__file__), os.pardir,
                           os.pardir, "src", "repro", "monitor")
    pattern = re.compile(r"(\w+)\._")
    offenders = []
    for name in sorted(os.listdir(package)):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(package, name), encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for owner in pattern.findall(line):
                    if owner not in ("self", "cls"):
                        offenders.append("%s:%d: %s._"
                                         % (name, lineno, owner))
    assert not offenders, offenders
