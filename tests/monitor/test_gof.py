"""Unit tests for the stdlib chi-square goodness-of-fit machinery."""

import math
import random

import pytest

from repro.core.contracts import DistributionSpec
from repro.monitor.gof import (
    chi_square_gof,
    chi_square_sf,
    equal_probability_edges,
)


class TestChiSquareSf:
    def test_zero_statistic_is_certain(self):
        for dof in (1, 2, 7, 40):
            assert chi_square_sf(0.0, dof) == pytest.approx(1.0)

    def test_textbook_critical_values(self):
        # The classic 5 % critical values: P(X2_1 > 3.841) = 0.05,
        # P(X2_2 > 5.991) = 0.05, P(X2_7 > 14.067) = 0.05.
        assert chi_square_sf(3.841, 1) == pytest.approx(0.05, abs=1e-3)
        assert chi_square_sf(5.991, 2) == pytest.approx(0.05, abs=1e-3)
        assert chi_square_sf(14.067, 7) == pytest.approx(0.05,
                                                         abs=1e-3)

    def test_dof_two_is_exponential(self):
        # With two degrees of freedom the survival function has the
        # closed form exp(-x/2) -- a strong cross-check of both the
        # series and the continued-fraction branch.
        for stat in (0.5, 1.0, 3.0, 10.0, 40.0):
            assert chi_square_sf(stat, 2) \
                == pytest.approx(math.exp(-stat / 2.0), rel=1e-9)

    def test_monotone_in_statistic(self):
        values = [chi_square_sf(stat, 5)
                  for stat in (0.0, 1.0, 5.0, 20.0, 100.0)]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 1e-15


class TestEqualProbabilityEdges:
    def test_uniform_edges_are_evenly_spaced(self):
        spec = DistributionSpec("uniform", min_ns=0.0, max_ns=100.0)
        assert equal_probability_edges(spec, 4) \
            == pytest.approx([25.0, 50.0, 75.0])

    def test_exponential_edges_are_quantiles(self):
        spec = DistributionSpec("exponential", mean_ns=1000.0)
        edges = equal_probability_edges(spec, 2)
        # The single edge is the median: mean * ln 2.
        assert edges == pytest.approx([1000.0 * math.log(2.0)])

    def test_normal_edges_bracket_the_mean(self):
        spec = DistributionSpec("normal", mean_ns=500.0, std_ns=50.0)
        edges = equal_probability_edges(spec, 4)
        assert edges[1] == pytest.approx(500.0, abs=1e-3)
        assert edges[0] < 500.0 < edges[2]
        # quartiles of a normal sit at +/- 0.6745 sigma
        assert edges[2] - edges[0] == pytest.approx(2 * 0.6745 * 50.0,
                                                    rel=1e-3)


class TestChiSquareGof:
    def test_matching_samples_accepted(self):
        spec = DistributionSpec("uniform", min_ns=0.0, max_ns=1000.0)
        edges = equal_probability_edges(spec, 8)
        rng = random.Random(11)
        samples = [rng.uniform(0.0, 1000.0) for _ in range(400)]
        stat, dof, p_value = chi_square_gof(samples, edges)
        assert dof == 7
        assert p_value > 0.01

    def test_mismatched_samples_rejected(self):
        spec = DistributionSpec("uniform", min_ns=0.0, max_ns=1000.0)
        edges = equal_probability_edges(spec, 8)
        rng = random.Random(11)
        # Everything piles into the first bucket.
        samples = [rng.uniform(0.0, 100.0) for _ in range(400)]
        stat, dof, p_value = chi_square_gof(samples, edges)
        assert p_value < 1e-10

    def test_perfectly_balanced_samples_score_one(self):
        edges = [1.0, 2.0, 3.0]
        samples = [0.5, 1.5, 2.5, 3.5] * 25
        stat, dof, p_value = chi_square_gof(samples, edges)
        assert stat == pytest.approx(0.0)
        assert p_value == pytest.approx(1.0)
