"""Tests for application descriptors and atomic group deployment."""

import pytest

from repro.core import ComponentState, UtilizationBoundPolicy
from repro.core.application import ApplicationDescriptor
from repro.core.errors import AdmissionError, DescriptorError, \
    LifecycleError

from conftest import make_descriptor_xml


def component_block(name, cpuusage=0.1, frequency=1000, priority=2,
                    outports=(), inports=()):
    """The component element without the <?xml?> prologue."""
    xml = make_descriptor_xml(name, cpuusage=cpuusage,
                              frequency=frequency, priority=priority,
                              outports=outports, inports=inports)
    return xml.split("\n", 1)[1]


def app_xml(name="vision", complete=False, components=()):
    return ('<?xml version="1.0" encoding="UTF-8"?>\n'
            '<drt:application name="%s" desc="test app" complete="%s">\n'
            "%s\n</drt:application>"
            % (name, "true" if complete else "false",
               "\n".join(components)))


PIPELINE = [
    component_block("CAMERA", cpuusage=0.10,
                    outports=[("FRAME0", "RTAI.SHM", "Byte", 16)]),
    component_block("TRACKR", cpuusage=0.20, frequency=500, priority=3,
                    inports=[("FRAME0", "RTAI.SHM", "Byte", 16)]),
]


class TestApplicationDescriptor:
    def test_parse_pipeline(self):
        app = ApplicationDescriptor.from_xml(app_xml(
            components=PIPELINE))
        assert app.name == "vision"
        assert app.component_names() == ["CAMERA", "TRACKR"]
        assert app.declared_utilization() == pytest.approx(0.30)
        assert app.cpus_used() == {0}

    def test_complete_app_validates_wiring(self):
        app = ApplicationDescriptor.from_xml(app_xml(
            complete=True, components=PIPELINE))
        assert app.complete

    def test_complete_app_with_dangling_inport_rejected(self):
        dangling = [component_block(
            "LONELY", inports=[("NOPE00", "RTAI.SHM", "Integer", 2)])]
        with pytest.raises(DescriptorError):
            ApplicationDescriptor.from_xml(app_xml(
                complete=True, components=dangling))

    def test_incomplete_flag_skips_wiring_check(self):
        dangling = [component_block(
            "LONELY", inports=[("NOPE00", "RTAI.SHM", "Integer", 2)])]
        app = ApplicationDescriptor.from_xml(app_xml(
            complete=False, components=dangling))
        assert not app.complete

    def test_duplicate_component_rejected(self):
        with pytest.raises(DescriptorError):
            ApplicationDescriptor.from_xml(app_xml(
                components=[PIPELINE[0], PIPELINE[0]]))

    def test_empty_application_rejected(self):
        with pytest.raises(DescriptorError):
            ApplicationDescriptor.from_xml(app_xml(components=[]))

    def test_missing_name_rejected(self):
        text = app_xml(components=PIPELINE).replace(
            'name="vision" ', "")
        with pytest.raises(DescriptorError):
            ApplicationDescriptor.from_xml(text)

    def test_unknown_child_rejected(self):
        text = app_xml(components=PIPELINE).replace(
            "</drt:application>", "<wire/></drt:application>")
        with pytest.raises(DescriptorError):
            ApplicationDescriptor.from_xml(text)

    def test_xml_roundtrip(self):
        app = ApplicationDescriptor.from_xml(app_xml(
            complete=True, components=PIPELINE))
        reparsed = ApplicationDescriptor.from_xml(app.to_xml())
        assert reparsed.name == app.name
        assert reparsed.complete == app.complete
        assert reparsed.component_names() == app.component_names()
        assert [d.contract for d in reparsed.components] \
            == [d.contract for d in app.components]


class TestAtomicDeployment:
    def test_successful_group_deploy(self, platform):
        app = ApplicationDescriptor.from_xml(app_xml(
            components=PIPELINE))
        deployed = platform.drcr.register_application(app)
        assert len(deployed) == 2
        for name in ("CAMERA", "TRACKR"):
            assert platform.drcr.component_state(name) \
                is ComponentState.ACTIVE
        assert platform.drcr.applications() == {
            "vision": ["CAMERA", "TRACKR"]}

    def test_admission_failure_rolls_back_whole_group(self, platform):
        platform.drcr.set_internal_policy(
            UtilizationBoundPolicy(cap=0.25))
        app = ApplicationDescriptor.from_xml(app_xml(
            components=PIPELINE))  # needs 0.30 total
        with pytest.raises(AdmissionError):
            platform.drcr.register_application(app)
        # Nothing left behind -- not even the admissible camera.
        assert "CAMERA" not in platform.drcr.registry
        assert "TRACKR" not in platform.drcr.registry
        assert platform.drcr.applications() == {}

    def test_rollback_frees_kernel_objects(self, platform):
        platform.drcr.set_internal_policy(
            UtilizationBoundPolicy(cap=0.25))
        app = ApplicationDescriptor.from_xml(app_xml(
            components=PIPELINE))
        with pytest.raises(AdmissionError):
            platform.drcr.register_application(app)
        assert not platform.kernel.exists("CAMERA")
        assert not platform.kernel.exists("FRAME0")

    def test_unregister_application(self, platform):
        app = ApplicationDescriptor.from_xml(app_xml(
            components=PIPELINE))
        platform.drcr.register_application(app)
        platform.drcr.unregister_application("vision")
        assert "CAMERA" not in platform.drcr.registry
        assert platform.drcr.applications() == {}

    def test_unregister_unknown_raises(self, platform):
        with pytest.raises(LifecycleError):
            platform.drcr.unregister_application("ghost")

    def test_deploy_via_bundle_header(self, platform):
        bundle = platform.install_and_start(
            {"Bundle-SymbolicName": "apps.vision",
             "RT-Application": "OSGI-INF/app.xml"},
            resources={"OSGI-INF/app.xml": app_xml(
                components=PIPELINE)})
        assert platform.drcr.component_state("CAMERA") \
            is ComponentState.ACTIVE
        bundle.stop()
        assert "CAMERA" not in platform.drcr.registry
        assert platform.drcr.applications() == {}

    def test_duplicate_name_with_existing_component_rolls_back(
            self, platform):
        from conftest import deploy
        deploy(platform, make_descriptor_xml("CAMERA", cpuusage=0.05))
        app = ApplicationDescriptor.from_xml(app_xml(
            components=PIPELINE))
        with pytest.raises(Exception):
            platform.drcr.register_application(app)
        # The pre-existing CAMERA survives; the app's TRACKR does not.
        assert platform.drcr.component_state("CAMERA") \
            is ComponentState.ACTIVE
        assert "TRACKR" not in platform.drcr.registry
