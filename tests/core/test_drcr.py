"""Tests for the DRCR runtime: deployment, resolution, admission,
dynamicity (paper sections 2.2, 4.3)."""

import pytest

from repro.core import (
    MANAGEMENT_SERVICE_INTERFACE,
    RESOLVING_SERVICE_INTERFACE,
    AlwaysRejectPolicy,
    ComponentEventType,
    ComponentState,
    Decision,
    LifecycleError,
    ResolvingService,
    UtilizationBoundPolicy,
)
from repro.core.descriptor import ComponentDescriptor
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml

PORT = ("LATDAT", "RTAI.SHM", "Integer", 4)


def calc_xml(name="CALC00", cpuusage=0.05, enabled=True):
    return make_descriptor_xml(name, cpuusage=cpuusage, enabled=enabled,
                               frequency=1000, priority=2,
                               outports=[PORT])


def disp_xml(name="DISP00", cpuusage=0.01):
    return make_descriptor_xml(name, cpuusage=cpuusage, frequency=250,
                               priority=3, inports=[PORT])


class TestDeployment:
    def test_bundle_start_deploys_descriptor(self, platform):
        deploy(platform, calc_xml())
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.ACTIVE

    def test_programmatic_registration(self, platform):
        descriptor = ComponentDescriptor.from_xml(calc_xml())
        component = platform.drcr.register_component(descriptor)
        assert component.state is ComponentState.ACTIVE

    def test_missing_resource_recorded_as_framework_error(self,
                                                          platform):
        # Listener isolation: a broken bundle must not take the DRCR
        # down; the error surfaces as a FrameworkEvent.ERROR.
        from repro.osgi.events import FrameworkEventType
        platform.install_and_start(
            {"Bundle-SymbolicName": "broken",
             "RT-Component": "OSGI-INF/nope.xml"})
        errors = [e for e in platform.framework.framework_events
                  if e.event_type is FrameworkEventType.ERROR]
        assert len(errors) == 1
        assert "nope.xml" in str(errors[0].error)

    def test_disabled_descriptor_stays_disabled(self, platform):
        deploy(platform, calc_xml(enabled=False))
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.DISABLED

    def test_multiple_descriptors_per_bundle(self, platform):
        platform.install_and_start(
            {"Bundle-SymbolicName": "multi",
             "RT-Component": "OSGI-INF/a.xml,OSGI-INF/b.xml"},
            resources={"OSGI-INF/a.xml": calc_xml("CALCA0"),
                       "OSGI-INF/b.xml": calc_xml("CALCB0")})
        assert platform.drcr.component_state("CALCA0") \
            is ComponentState.ACTIVE
        assert platform.drcr.component_state("CALCB0") \
            is ComponentState.ACTIVE

    def test_already_active_bundles_deployed_on_attach(self):
        from repro.platform import build_platform
        from repro.rtos.kernel import KernelConfig
        from repro.rtos.latency import NullLatencyModel
        platform = build_platform(
            seed=1,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel()),
            attach=False)
        platform.start_timer(1 * MSEC)
        platform.install_and_start(
            {"Bundle-SymbolicName": "pre",
             "RT-Component": "OSGI-INF/c.xml"},
            resources={"OSGI-INF/c.xml": calc_xml()})
        assert "CALC00" not in platform.drcr.registry
        platform.drcr.attach()
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.ACTIVE

    def test_drcr_registered_as_service(self, platform):
        from repro.core import DRCR_SERVICE_INTERFACE
        ref = platform.framework.registry.get_reference(
            DRCR_SERVICE_INTERFACE)
        assert platform.framework.registry.get_service(ref) \
            is platform.drcr


class TestFunctionalResolution:
    def test_unresolved_dependency_blocks(self, platform):
        deploy(platform, disp_xml())
        component = platform.drcr.component("DISP00")
        assert component.state is ComponentState.UNSATISFIED
        assert "no active provider" in component.status_reason

    def test_activation_order_follows_dependencies(self, platform):
        deploy(platform, disp_xml())
        deploy(platform, calc_xml())
        assert platform.drcr.component_state("DISP00") \
            is ComponentState.ACTIVE
        display = platform.drcr.component("DISP00")
        assert display.bound_providers() == ["CALC00"]

    def test_chain_of_three(self, platform):
        mid_xml = make_descriptor_xml(
            "MID000", cpuusage=0.02, frequency=500, priority=3,
            inports=[PORT],
            outports=[("MIDOUT", "RTAI.SHM", "Integer", 2)])
        sink_xml = make_descriptor_xml(
            "SINK00", cpuusage=0.01, frequency=250, priority=4,
            inports=[("MIDOUT", "RTAI.SHM", "Integer", 2)])
        deploy(platform, sink_xml)
        deploy(platform, mid_xml)
        assert platform.drcr.component_state("SINK00") \
            is ComponentState.UNSATISFIED
        deploy(platform, calc_xml())
        for name in ("CALC00", "MID000", "SINK00"):
            assert platform.drcr.component_state(name) \
                is ComponentState.ACTIVE

    def test_port_signature_mismatch_not_resolved(self, platform):
        wrong = make_descriptor_xml(
            "WRONG0", frequency=250,
            inports=[("LATDAT", "RTAI.SHM", "Byte", 4)])  # Byte != Int
        deploy(platform, calc_xml())
        deploy(platform, wrong)
        assert platform.drcr.component_state("WRONG0") \
            is ComponentState.UNSATISFIED


class TestDynamicity:
    """The section 4.3 scenario."""

    def test_provider_stop_cascades(self, platform):
        calc_bundle = deploy(platform, calc_xml())
        deploy(platform, disp_xml())
        platform.run_for(100 * MSEC)
        calc_bundle.stop()
        assert "CALC00" not in platform.drcr.registry
        assert platform.drcr.component_state("DISP00") \
            is ComponentState.UNSATISFIED

    def test_provider_return_reactivates(self, platform):
        calc_bundle = deploy(platform, calc_xml())
        deploy(platform, disp_xml())
        calc_bundle.stop()
        calc_bundle.start()
        assert platform.drcr.component_state("DISP00") \
            is ComponentState.ACTIVE

    def test_event_sequence_matches_section_4_3(self, platform):
        calc_bundle = deploy(platform, calc_xml())
        deploy(platform, disp_xml())
        calc_bundle.stop()
        sequence = [e.event_type for e in
                    platform.drcr.events.for_component("DISP00")]
        assert sequence == [
            ComponentEventType.REGISTERED,
            ComponentEventType.SATISFIED,
            ComponentEventType.ACTIVATED,
            ComponentEventType.DEACTIVATED,
            ComponentEventType.UNSATISFIED,
        ]

    def test_transitive_cascade(self, platform):
        mid_xml = make_descriptor_xml(
            "MID000", cpuusage=0.02, frequency=500, priority=3,
            inports=[PORT],
            outports=[("MIDOUT", "RTAI.SHM", "Integer", 2)])
        sink_xml = make_descriptor_xml(
            "SINK00", cpuusage=0.01, frequency=250, priority=4,
            inports=[("MIDOUT", "RTAI.SHM", "Integer", 2)])
        calc_bundle = deploy(platform, calc_xml())
        deploy(platform, mid_xml)
        deploy(platform, sink_xml)
        calc_bundle.stop()
        assert platform.drcr.component_state("MID000") \
            is ComponentState.UNSATISFIED
        assert platform.drcr.component_state("SINK00") \
            is ComponentState.UNSATISFIED

    def test_rt_task_created_and_destroyed(self, platform):
        calc_bundle = deploy(platform, calc_xml())
        assert platform.kernel.exists("CALC00")
        calc_bundle.stop()
        assert not platform.kernel.exists("CALC00")

    def test_unaffected_component_keeps_running(self, platform):
        deploy(platform, calc_xml())
        other_xml = make_descriptor_xml("OTHER0", cpuusage=0.02,
                                        frequency=100, priority=5)
        other_bundle = deploy(platform, other_xml)
        deploy(platform, disp_xml())
        platform.run_for(50 * MSEC)
        other_bundle.stop()  # no one depends on OTHER0
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.ACTIVE
        assert platform.drcr.component_state("DISP00") \
            is ComponentState.ACTIVE


class TestAdmission:
    def test_internal_policy_rejects(self, platform):
        platform.drcr.set_internal_policy(AlwaysRejectPolicy())
        deploy(platform, calc_xml())
        component = platform.drcr.component("CALC00")
        assert component.state is ComponentState.UNSATISFIED
        rejected = platform.drcr.events.of_type(
            ComponentEventType.ADMISSION_REJECTED)
        assert len(rejected) == 1

    def test_utilization_budget_enforced(self, platform):
        platform.drcr.set_internal_policy(
            UtilizationBoundPolicy(cap=0.5))
        deploy(platform, calc_xml("BIGA00", cpuusage=0.4))
        deploy(platform, calc_xml("BIGB00", cpuusage=0.4))
        states = {name: platform.drcr.component_state(name)
                  for name in ("BIGA00", "BIGB00")}
        assert states["BIGA00"] is ComponentState.ACTIVE
        assert states["BIGB00"] is ComponentState.UNSATISFIED

    def test_freed_budget_admits_waiter(self, platform):
        platform.drcr.set_internal_policy(
            UtilizationBoundPolicy(cap=0.5))
        first = deploy(platform, calc_xml("BIGA00", cpuusage=0.4))
        deploy(platform, calc_xml("BIGB00", cpuusage=0.4))
        first.stop()
        assert platform.drcr.component_state("BIGB00") \
            is ComponentState.ACTIVE

    def test_customized_resolving_service_consulted(self, platform):
        class VetoCalc(ResolvingService):
            name = "veto-calc"

            def admit(self, candidate, view):
                if candidate.name.startswith("CALC"):
                    return Decision.no("application policy says no")
                return Decision.yes()

        platform.framework.registry.register(
            RESOLVING_SERVICE_INTERFACE, VetoCalc())
        deploy(platform, calc_xml())
        component = platform.drcr.component("CALC00")
        assert component.state is ComponentState.UNSATISFIED
        assert "veto-calc" in component.status_reason

    def test_both_services_must_accept(self, platform):
        # Internal accepts; customized rejects -> rejected (4.3: "when
        # both services return positive results").
        class RejectAll(ResolvingService):
            name = "reject-all"

            def admit(self, candidate, view):
                return Decision.no("no")

        registration = platform.framework.registry.register(
            RESOLVING_SERVICE_INTERFACE, RejectAll())
        deploy(platform, calc_xml())
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.UNSATISFIED
        # Removing the veto service re-admits.
        registration.unregister()
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.ACTIVE

    def test_revalidation_sheds_on_policy_change(self, platform):
        deploy(platform, calc_xml("BIGA00", cpuusage=0.4))
        deploy(platform, calc_xml("BIGB00", cpuusage=0.4))
        platform.drcr.set_internal_policy(
            UtilizationBoundPolicy(cap=0.5))
        states = sorted(
            (platform.drcr.component_state(n).value, n)
            for n in ("BIGA00", "BIGB00"))
        assert [s for s, _ in states] == ["active", "unsatisfied"]


class TestManagementOperations:
    def test_enable_disable_cycle(self, platform):
        deploy(platform, calc_xml(enabled=False))
        platform.drcr.enable_component("CALC00")
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.ACTIVE
        platform.drcr.disable_component("CALC00")
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.DISABLED
        assert not platform.kernel.exists("CALC00")

    def test_disable_cascades_to_dependents(self, platform):
        deploy(platform, calc_xml())
        deploy(platform, disp_xml())
        platform.drcr.disable_component("CALC00")
        assert platform.drcr.component_state("DISP00") \
            is ComponentState.UNSATISFIED

    def test_enable_non_disabled_raises(self, platform):
        deploy(platform, calc_xml())
        with pytest.raises(LifecycleError):
            platform.drcr.enable_component("CALC00")

    def test_suspend_resume(self, platform):
        deploy(platform, calc_xml())
        platform.run_for(10 * MSEC)
        platform.drcr.suspend_component("CALC00")
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.SUSPENDED
        task = platform.kernel.lookup("CALC00")
        completions = task.stats.completions
        platform.run_for(10 * MSEC)
        assert task.stats.completions == completions
        platform.drcr.resume_component("CALC00")
        platform.run_for(10 * MSEC)
        assert task.stats.completions > completions

    def test_suspend_keeps_admission(self, platform):
        platform.drcr.set_internal_policy(
            UtilizationBoundPolicy(cap=0.5))
        deploy(platform, calc_xml("BIGA00", cpuusage=0.4))
        platform.drcr.suspend_component("BIGA00")
        deploy(platform, calc_xml("BIGB00", cpuusage=0.4))
        # Suspended keeps its budget: B must NOT be admitted.
        assert platform.drcr.component_state("BIGB00") \
            is ComponentState.UNSATISFIED

    def test_suspend_inactive_raises(self, platform):
        deploy(platform, disp_xml())
        with pytest.raises(LifecycleError):
            platform.drcr.suspend_component("DISP00")

    def test_management_service_registered_with_properties(self,
                                                           platform):
        deploy(platform, calc_xml())
        ref = platform.framework.registry.get_reference(
            MANAGEMENT_SERVICE_INTERFACE, "(drcom.name=CALC00)")
        assert ref is not None
        assert ref.get_property("drcom.cpuusage") == pytest.approx(0.05)

    def test_management_service_gone_after_deactivation(self, platform):
        bundle = deploy(platform, calc_xml())
        bundle.stop()
        assert platform.framework.registry.get_reference(
            MANAGEMENT_SERVICE_INTERFACE, "(drcom.name=CALC00)") is None

    def test_detach_disposes_everything(self, platform):
        deploy(platform, calc_xml())
        platform.drcr.detach()
        assert len(platform.drcr.registry) == 0
        assert not platform.kernel.exists("CALC00")
