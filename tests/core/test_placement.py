"""Tests for automatic CPU placement."""

import pytest

from repro.core import ComponentState, UtilizationBoundPolicy
from repro.core.placement import (
    BestFitPlacement,
    FirstFitPlacement,
    PinnedPlacement,
)
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml


def dual_cpu_platform(placement=None, cap=1.0):
    platform = build_platform(
        seed=3,
        kernel_config=KernelConfig(num_cpus=2,
                                   latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=cap))
    platform.drcr.placement_service = placement
    platform.start_timer(1 * MSEC)
    return platform


def deploy_heavy(platform, count, usage=0.6):
    for index in range(count):
        xml = make_descriptor_xml(
            "HVY%03d" % index, cpuusage=usage, frequency=1000,
            priority=1 + index, cpu=0)  # all pinned to CPU 0
        deploy(platform, xml)


class TestPlacementPolicies:
    def test_without_placement_second_heavy_rejected(self):
        platform = dual_cpu_platform(placement=None)
        deploy_heavy(platform, 2)
        states = [platform.drcr.component_state("HVY%03d" % i)
                  for i in range(2)]
        assert states[0] is ComponentState.ACTIVE
        assert states[1] is ComponentState.UNSATISFIED

    def test_best_fit_spreads_across_cpus(self):
        platform = dual_cpu_platform(placement=BestFitPlacement())
        deploy_heavy(platform, 2)
        components = [platform.drcr.component("HVY%03d" % i)
                      for i in range(2)]
        assert all(c.state is ComponentState.ACTIVE
                   for c in components)
        assert {c.contract.cpu for c in components} == {0, 1}

    def test_best_fit_balances_load(self):
        platform = dual_cpu_platform(placement=BestFitPlacement())
        for index in range(4):
            xml = make_descriptor_xml(
                "BAL%03d" % index, cpuusage=0.4, frequency=1000,
                priority=1 + index, cpu=0)
            deploy(platform, xml)
        u0 = platform.drcr.registry.declared_utilization(0)
        u1 = platform.drcr.registry.declared_utilization(1)
        assert u0 == pytest.approx(0.8)
        assert u1 == pytest.approx(0.8)

    def test_first_fit_fills_cpu0_first(self):
        platform = dual_cpu_platform(placement=FirstFitPlacement())
        for index in range(3):
            xml = make_descriptor_xml(
                "FF%04d" % index, cpuusage=0.4, frequency=1000,
                priority=1 + index, cpu=1)  # pin says 1; policy decides
            deploy(platform, xml)
        cpus = [platform.drcr.component("FF%04d" % i).contract.cpu
                for i in range(3)]
        assert cpus == [0, 0, 1]

    def test_pinned_placement_honours_descriptor(self):
        platform = dual_cpu_platform(placement=PinnedPlacement())
        deploy_heavy(platform, 2)
        assert platform.drcr.component_state("HVY001") \
            is ComponentState.UNSATISFIED

    def test_component_opt_out_property(self):
        platform = dual_cpu_platform(placement=BestFitPlacement())
        xml = make_descriptor_xml(
            "STAY00", cpuusage=0.6, frequency=1000, priority=1, cpu=0,
            properties=[("drcom.placement", "String", "pinned")])
        deploy(platform, xml)
        xml2 = make_descriptor_xml(
            "STAY01", cpuusage=0.6, frequency=1000, priority=2, cpu=0,
            properties=[("drcom.placement", "String", "pinned")])
        deploy(platform, xml2)
        assert platform.drcr.component("STAY00").contract.cpu == 0
        assert platform.drcr.component_state("STAY01") \
            is ComponentState.UNSATISFIED

    def test_placed_tasks_actually_run_on_their_cpu(self):
        platform = dual_cpu_platform(placement=BestFitPlacement())
        deploy_heavy(platform, 2)
        platform.run_for(1 * SEC)
        assert platform.kernel.rt_busy_ns(0) > 0
        assert platform.kernel.rt_busy_ns(1) > 0
        for index in range(2):
            task = platform.kernel.lookup("HVY%03d" % index)
            assert task.stats.deadline_misses == 0

    def test_nowhere_fits_leaves_pin_and_rejects(self):
        platform = dual_cpu_platform(placement=BestFitPlacement())
        deploy_heavy(platform, 3)  # 3 x 0.6 over 2 CPUs: one must wait
        states = [platform.drcr.component_state("HVY%03d" % i)
                  for i in range(3)]
        assert states.count(ComponentState.ACTIVE) == 2
        assert states.count(ComponentState.UNSATISFIED) == 1

    def test_set_placement_service_reconfigures(self):
        platform = dual_cpu_platform(placement=None)
        deploy_heavy(platform, 2)
        assert platform.drcr.component_state("HVY001") \
            is ComponentState.UNSATISFIED
        platform.drcr.set_placement_service(BestFitPlacement())
        assert platform.drcr.component_state("HVY001") \
            is ComponentState.ACTIVE
