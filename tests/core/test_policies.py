"""Tests for built-in resolving services (admission policies)."""

import pytest

from repro.core.component import DRComComponent, LifecycleToken
from repro.core.descriptor import ComponentDescriptor
from repro.core.lifecycle import ComponentState
from repro.core.policies import (
    AlwaysAcceptPolicy,
    AlwaysRejectPolicy,
    CompositePolicy,
    EDFPolicy,
    LiuLaylandPolicy,
    PriorityBandPolicy,
    ResponseTimeAnalysisPolicy,
    UtilizationBoundPolicy,
)
from repro.core.registry import ComponentRegistry
from repro.core.resolving import Decision, GlobalView
from repro.rtos.kernel import KernelConfig, RTKernel
from repro.sim.engine import Simulator

from conftest import make_descriptor_xml


@pytest.fixture
def token():
    return LifecycleToken("test")


@pytest.fixture
def kernel():
    return RTKernel(Simulator(seed=0), KernelConfig())


def make_component(token, name, cpuusage=0.1, frequency=1000,
                   priority=2, cpu=0, task_type="periodic"):
    xml = make_descriptor_xml(name, cpuusage=cpuusage,
                              frequency=frequency, priority=priority,
                              cpu=cpu, task_type=task_type)
    return DRComComponent(ComponentDescriptor.from_xml(xml), None, token)


def view_with(kernel, token, candidate, *admitted):
    registry = ComponentRegistry()
    for component in admitted:
        registry.add(component)
        component.state = ComponentState.ACTIVE
    registry.add(candidate)
    candidate.state = ComponentState.UNSATISFIED
    return GlobalView(registry, kernel, candidate)


class TestDecision:
    def test_truthiness(self):
        assert Decision.yes()
        assert not Decision.no("because")

    def test_reasons(self):
        assert Decision.yes("fine").reason == "fine"
        assert Decision.no("bad").reason == "bad"


class TestTrivialPolicies:
    def test_always_accept(self, kernel, token):
        candidate = make_component(token, "X00000")
        view = view_with(kernel, token, candidate)
        assert AlwaysAcceptPolicy().admit(candidate, view)

    def test_always_reject(self, kernel, token):
        candidate = make_component(token, "X00000")
        view = view_with(kernel, token, candidate)
        assert not AlwaysRejectPolicy().admit(candidate, view)


class TestUtilizationBound:
    def test_admits_within_cap(self, kernel, token):
        admitted = make_component(token, "A00000", cpuusage=0.5)
        candidate = make_component(token, "X00000", cpuusage=0.4)
        view = view_with(kernel, token, candidate, admitted)
        assert UtilizationBoundPolicy(cap=1.0).admit(candidate, view)

    def test_rejects_over_cap(self, kernel, token):
        admitted = make_component(token, "A00000", cpuusage=0.7)
        candidate = make_component(token, "X00000", cpuusage=0.4)
        view = view_with(kernel, token, candidate, admitted)
        decision = UtilizationBoundPolicy(cap=1.0).admit(candidate, view)
        assert not decision
        assert "exceed" in decision.reason

    def test_exact_cap_admitted(self, kernel, token):
        admitted = make_component(token, "A00000", cpuusage=0.6)
        candidate = make_component(token, "X00000", cpuusage=0.4)
        view = view_with(kernel, token, candidate, admitted)
        assert UtilizationBoundPolicy(cap=1.0).admit(candidate, view)

    def test_per_cpu_budgets_independent(self, kernel, token):
        admitted = make_component(token, "A00000", cpuusage=0.9, cpu=1)
        candidate = make_component(token, "X00000", cpuusage=0.9, cpu=0)
        view = view_with(kernel, token, candidate, admitted)
        assert UtilizationBoundPolicy(cap=1.0).admit(candidate, view)

    def test_revalidate_checks_current_set(self, kernel, token):
        a = make_component(token, "A00000", cpuusage=0.6)
        b = make_component(token, "B00000", cpuusage=0.3)
        view = view_with(kernel, token, a, b)
        # a is the 'candidate' slot but revalidate ignores it.
        a.state = ComponentState.ACTIVE
        assert UtilizationBoundPolicy(cap=1.0).revalidate(a, view)
        assert not UtilizationBoundPolicy(cap=0.5).revalidate(a, view)

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            UtilizationBoundPolicy(cap=0.0)
        with pytest.raises(ValueError):
            UtilizationBoundPolicy(cap=1.5)


class TestSchedulabilityPolicies:
    def test_liu_layland_two_tasks(self, kernel, token):
        # Two tasks at 0.41 each: U=0.82 <= 0.828 (bound for n=2).
        admitted = make_component(token, "A00000", cpuusage=0.41,
                                  frequency=1000)
        candidate = make_component(token, "X00000", cpuusage=0.41,
                                   frequency=500)
        view = view_with(kernel, token, candidate, admitted)
        assert LiuLaylandPolicy().admit(candidate, view)

    def test_liu_layland_rejects_above_bound(self, kernel, token):
        admitted = make_component(token, "A00000", cpuusage=0.45)
        candidate = make_component(token, "X00000", cpuusage=0.45)
        view = view_with(kernel, token, candidate, admitted)
        assert not LiuLaylandPolicy().admit(candidate, view)

    def test_rta_accepts_what_liu_layland_rejects(self, kernel, token):
        # Harmonic periods are schedulable up to U=1.0: RTA knows,
        # the RM bound does not.
        admitted = make_component(token, "A00000", cpuusage=0.5,
                                  frequency=1000, priority=1)
        candidate = make_component(token, "X00000", cpuusage=0.5,
                                   frequency=500, priority=2)
        view = view_with(kernel, token, candidate, admitted)
        assert not LiuLaylandPolicy().admit(candidate, view)
        assert ResponseTimeAnalysisPolicy().admit(candidate, view)

    def test_rta_rejects_infeasible(self, kernel, token):
        admitted = make_component(token, "A00000", cpuusage=0.8,
                                  frequency=1000, priority=1)
        candidate = make_component(token, "X00000", cpuusage=0.4,
                                   frequency=500, priority=2)
        view = view_with(kernel, token, candidate, admitted)
        assert not ResponseTimeAnalysisPolicy().admit(candidate, view)

    def test_edf_accepts_up_to_full_utilization(self, kernel, token):
        # 250 Hz divides the nanosecond grid exactly: U really is 1.0.
        # (At a non-divisible rate the conservative ceil'd WCET lands
        # a hair above 1.0 and EDF rightly rejects.)
        admitted = make_component(token, "A00000", cpuusage=0.6,
                                  frequency=1000)
        candidate = make_component(token, "X00000", cpuusage=0.4,
                                   frequency=250)
        view = view_with(kernel, token, candidate, admitted)
        assert EDFPolicy().admit(candidate, view)

    def test_edf_rejects_overload(self, kernel, token):
        admitted = make_component(token, "A00000", cpuusage=0.7)
        candidate = make_component(token, "X00000", cpuusage=0.4)
        view = view_with(kernel, token, candidate, admitted)
        assert not EDFPolicy().admit(candidate, view)

    def test_aperiodic_candidates_pass_through(self, kernel, token):
        candidate = make_component(token, "X00000",
                                   task_type="aperiodic")
        view = view_with(kernel, token, candidate)
        assert LiuLaylandPolicy().admit(candidate, view)
        assert ResponseTimeAnalysisPolicy().admit(candidate, view)
        assert EDFPolicy().admit(candidate, view)


class TestPriorityBand:
    def test_band_enforced(self, kernel, token):
        policy = PriorityBandPolicy(lowest_allowed=2, highest_allowed=10)
        inside = make_component(token, "A00000", priority=5)
        below = make_component(token, "B00000", priority=1)
        view = view_with(kernel, token, inside)
        assert policy.admit(inside, view)
        view = view_with(kernel, token, below)
        assert not policy.admit(below, view)

    def test_empty_band_rejected(self):
        with pytest.raises(ValueError):
            PriorityBandPolicy(lowest_allowed=5, highest_allowed=2)


class TestComposite:
    def test_all_must_accept(self, kernel, token):
        candidate = make_component(token, "X00000", priority=5)
        view = view_with(kernel, token, candidate)
        both = CompositePolicy([AlwaysAcceptPolicy(),
                                PriorityBandPolicy(0, 10)])
        assert both.admit(candidate, view)
        vetoed = CompositePolicy([AlwaysAcceptPolicy(),
                                  PriorityBandPolicy(0, 3)])
        decision = vetoed.admit(candidate, view)
        assert not decision
        assert "priority-band" in decision.reason

    def test_empty_composite_rejected(self):
        with pytest.raises(ValueError):
            CompositePolicy([])

    def test_revalidate_delegates(self, kernel, token):
        candidate = make_component(token, "X00000", cpuusage=0.9)
        view = view_with(kernel, token, candidate)
        candidate.state = ComponentState.ACTIVE
        policy = CompositePolicy([UtilizationBoundPolicy(cap=0.5)])
        assert not policy.revalidate(candidate, view)
