"""Tests for DRCR's internal component registry (the global view)."""

import pytest

from repro.core.component import DRComComponent, LifecycleToken
from repro.core.descriptor import ComponentDescriptor
from repro.core.errors import (
    DuplicateComponentError,
    UnknownComponentError,
)
from repro.core.lifecycle import ComponentState
from repro.core.ports import PortDirection, PortSpec
from repro.core.registry import ComponentRegistry

from conftest import make_descriptor_xml


@pytest.fixture
def token():
    return LifecycleToken("test")


@pytest.fixture
def registry():
    return ComponentRegistry()


def make_component(token, name, cpuusage=0.1, cpu=0, outports=(),
                   inports=()):
    xml = make_descriptor_xml(name, cpuusage=cpuusage, cpu=cpu,
                              outports=outports, inports=inports)
    return DRComComponent(ComponentDescriptor.from_xml(xml), None, token)


def force_state(component, token, state):
    component.state = state  # test shortcut; production goes via DRCR


class TestMembership:
    def test_add_get(self, registry, token):
        component = make_component(token, "A00000")
        registry.add(component)
        assert registry.get("A00000") is component
        assert "A00000" in registry
        assert len(registry) == 1

    def test_duplicate_name_rejected(self, registry, token):
        registry.add(make_component(token, "A00000"))
        with pytest.raises(DuplicateComponentError):
            registry.add(make_component(token, "A00000"))

    def test_unknown_get_raises(self, registry):
        with pytest.raises(UnknownComponentError):
            registry.get("GHOST0")

    def test_maybe_get_returns_none(self, registry):
        assert registry.maybe_get("GHOST0") is None

    def test_remove(self, registry, token):
        component = make_component(token, "A00000")
        registry.add(component)
        registry.remove(component)
        assert "A00000" not in registry

    def test_all_preserves_order(self, registry, token):
        names = ["C00000", "A00000", "B00000"]
        for name in names:
            registry.add(make_component(token, name))
        assert [c.name for c in registry.all()] == names


class TestStateViews:
    def test_active_includes_suspended(self, registry, token):
        a = make_component(token, "A00000")
        b = make_component(token, "B00000")
        c = make_component(token, "C00000")
        registry.add(a), registry.add(b), registry.add(c)
        force_state(a, token, ComponentState.ACTIVE)
        force_state(b, token, ComponentState.SUSPENDED)
        force_state(c, token, ComponentState.UNSATISFIED)
        assert set(x.name for x in registry.active()) \
            == {"A00000", "B00000"}
        assert [x.name for x in registry.unsatisfied()] == ["C00000"]


class TestPortIndex:
    def test_providers_of_matches_compatible_outports(self, registry,
                                                      token):
        provider = make_component(
            token, "PROV00",
            outports=[("DATA00", "RTAI.SHM", "Integer", 4)])
        registry.add(provider)
        force_state(provider, token, ComponentState.ACTIVE)
        needle = PortSpec("DATA00", PortDirection.IN, "RTAI.SHM",
                          "Integer", 4)
        matches = registry.providers_of(needle)
        assert len(matches) == 1
        assert matches[0][0] is provider

    def test_inactive_providers_excluded_by_default(self, registry,
                                                    token):
        provider = make_component(
            token, "PROV00",
            outports=[("DATA00", "RTAI.SHM", "Integer", 4)])
        registry.add(provider)  # stays INSTALLED
        needle = PortSpec("DATA00", PortDirection.IN, "RTAI.SHM",
                          "Integer", 4)
        assert registry.providers_of(needle) == []

    def test_incompatible_signature_excluded(self, registry, token):
        provider = make_component(
            token, "PROV00",
            outports=[("DATA00", "RTAI.SHM", "Byte", 4)])
        registry.add(provider)
        force_state(provider, token, ComponentState.ACTIVE)
        needle = PortSpec("DATA00", PortDirection.IN, "RTAI.SHM",
                          "Integer", 4)
        assert registry.providers_of(needle) == []


class TestUtilizationLedger:
    def test_declared_utilization_sums_active_on_cpu(self, registry,
                                                     token):
        a = make_component(token, "A00000", cpuusage=0.3, cpu=0)
        b = make_component(token, "B00000", cpuusage=0.2, cpu=0)
        c = make_component(token, "C00000", cpuusage=0.4, cpu=1)
        for component in (a, b, c):
            registry.add(component)
            force_state(component, token, ComponentState.ACTIVE)
        assert registry.declared_utilization(0) == pytest.approx(0.5)
        assert registry.declared_utilization(1) == pytest.approx(0.4)

    def test_extra_contract_added(self, registry, token):
        a = make_component(token, "A00000", cpuusage=0.3)
        registry.add(a)
        force_state(a, token, ComponentState.ACTIVE)
        candidate = make_component(token, "X00000", cpuusage=0.25)
        total = registry.declared_utilization(
            0, extra=candidate.contract)
        assert total == pytest.approx(0.55)

    def test_inactive_not_counted(self, registry, token):
        a = make_component(token, "A00000", cpuusage=0.3)
        registry.add(a)
        assert registry.declared_utilization(0) == 0.0

    def test_admitted_contracts_filter_by_cpu(self, registry, token):
        a = make_component(token, "A00000", cpu=0)
        b = make_component(token, "B00000", cpu=1)
        for component in (a, b):
            registry.add(component)
            force_state(component, token, ComponentState.ACTIVE)
        assert [c.name for c in registry.admitted_contracts(0)] \
            == ["A00000"]
        assert len(registry.admitted_contracts()) == 2
