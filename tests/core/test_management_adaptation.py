"""Tests for the management interface (section 2.4) and adaptation
managers."""

from repro.core import (
    MANAGEMENT_SERVICE_INTERFACE,
    AdaptationManager,
    ComponentState,
    PropertyTuningRule,
    RTComponentManagement,
    SuspendOnDeadlineMisses,
    ImportanceShedding,
)
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml


def calc_xml(name="CALC00", cpuusage=0.05, properties=()):
    return make_descriptor_xml(
        name, cpuusage=cpuusage, frequency=1000, priority=2,
        properties=properties,
        outports=[("LATDAT", "RTAI.SHM", "Integer", 4)])


def mgmt_for(platform, name):
    ref = platform.framework.registry.get_reference(
        MANAGEMENT_SERVICE_INTERFACE, "(drcom.name=%s)" % name)
    return platform.framework.registry.get_service(ref)


class TestManagementInterface:
    def test_interface_has_exactly_the_paper_methods(self):
        # suspend, resume, get/set property, get status -- and nothing
        # like init/uninit ("they are not exposed in the component's
        # interface", section 2.4).
        public = {name for name in dir(RTComponentManagement)
                  if not name.startswith("_")}
        assert public == {"suspend", "resume", "get_property",
                          "set_property", "get_status"}

    def test_suspend_resume_via_service(self, platform):
        deploy(platform, calc_xml())
        mgmt = mgmt_for(platform, "CALC00")
        mgmt.suspend()
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.SUSPENDED
        mgmt.resume()
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.ACTIVE

    def test_get_status_merges_task_stats(self, platform):
        deploy(platform, calc_xml())
        platform.run_for(10 * MSEC)
        status = mgmt_for(platform, "CALC00").get_status()
        assert status["state"] == "active"
        assert status["task"]["stats"]["completions"] >= 9
        assert status["task"]["job_index"] >= 9

    def test_get_property_reads_descriptor_default(self, platform):
        deploy(platform, calc_xml(properties=[("gain", "Integer", "3")]))
        assert mgmt_for(platform, "CALC00").get_property("gain") == 3

    def test_set_property_applied_at_next_job(self, platform):
        deploy(platform, calc_xml(properties=[("gain", "Integer", "3")]))
        mgmt = mgmt_for(platform, "CALC00")
        mgmt.set_property("gain", 9)
        # Asynchronous: applied when the RT task polls its mailbox.
        platform.run_for(3 * MSEC)
        assert mgmt.get_property("gain") == 9

    def test_locate_component_by_property_filter(self, platform):
        # "General component's user can locate the individual component"
        deploy(platform, calc_xml("CAMA00",
                                  properties=[("room", "String",
                                               "kitchen")]))
        deploy(platform, calc_xml("CAMB00",
                                  properties=[("room", "String",
                                               "garage")]))
        ref = platform.framework.registry.get_reference(
            MANAGEMENT_SERVICE_INTERFACE, "(room=garage)")
        assert ref.get_property("drcom.name") == "CAMB00"


class TestAdaptationManager:
    def test_discovers_management_services(self, platform):
        manager = AdaptationManager(platform.framework)
        deploy(platform, calc_xml("CAMA00"))
        deploy(platform, calc_xml("CAMB00"))
        assert len(manager.services()) == 2
        manager.close()

    def test_suspend_on_misses_rule(self, platform):
        # An overrunning component (cpuusage exhausts its period via a
        # synthetic implementation that overruns) gets suspended.
        from repro.core import AlwaysAcceptPolicy
        platform.drcr.set_internal_policy(AlwaysAcceptPolicy())
        overload_xml = make_descriptor_xml(
            "HOG000", cpuusage=0.9, frequency=1000, priority=2)
        ok_xml = calc_xml("OK0000", cpuusage=0.05)
        deploy(platform, ok_xml)
        deploy(platform, overload_xml)
        # Force misses: add a higher-priority hog so HOG000 overruns.
        hp_xml = make_descriptor_xml("HP0000", cpuusage=0.5,
                                     frequency=1000, priority=0)
        deploy(platform, hp_xml)
        platform.run_for(100 * MSEC)
        manager = AdaptationManager(
            platform.framework, rules=[SuspendOnDeadlineMisses(5)])
        actions = manager.poll()
        suspended = [a for _, a in actions if "suspended" in a]
        assert suspended
        assert platform.drcr.component_state("HOG000") \
            is ComponentState.SUSPENDED
        assert platform.drcr.component_state("OK0000") \
            is ComponentState.ACTIVE
        manager.close()

    def test_property_tuning_rule(self, platform):
        deploy(platform, calc_xml(
            properties=[("rate", "Integer", "100")]))
        platform.run_for(5 * MSEC)
        rule = PropertyTuningRule(
            predicate=lambda status: True,
            property_name="rate", new_value=50)
        manager = AdaptationManager(platform.framework, rules=[rule])
        actions = manager.poll()
        assert actions
        platform.run_for(3 * MSEC)
        assert mgmt_for(platform, "CALC00").get_property("rate") == 50
        # once=True: second poll does nothing.
        assert manager.poll() == []
        manager.close()

    def test_importance_shedding_picks_least_important(self, platform):
        deploy(platform, calc_xml(
            "VIPC00", properties=[("importance", "Integer", "10")]))
        deploy(platform, calc_xml(
            "LOWC00", properties=[("importance", "Integer", "1")]))
        platform.run_for(5 * MSEC)
        rule = ImportanceShedding(
            pressure_predicate=lambda statuses: True)
        manager = AdaptationManager(platform.framework, rules=[rule])
        manager.poll()
        assert platform.drcr.component_state("LOWC00") \
            is ComponentState.SUSPENDED
        assert platform.drcr.component_state("VIPC00") \
            is ComponentState.ACTIVE
        manager.close()

    def test_no_pressure_no_shedding(self, platform):
        deploy(platform, calc_xml())
        rule = ImportanceShedding(
            pressure_predicate=lambda statuses: False)
        manager = AdaptationManager(platform.framework, rules=[rule])
        assert manager.poll() == []
        assert platform.drcr.component_state("CALC00") \
            is ComponentState.ACTIVE
        manager.close()

    def test_actions_logged(self, platform):
        deploy(platform, calc_xml())
        rule = ImportanceShedding(
            pressure_predicate=lambda statuses: True)
        manager = AdaptationManager(platform.framework, rules=[rule])
        manager.poll()
        assert manager.log
        manager.close()
