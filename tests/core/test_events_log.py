"""Unit tests for the DRCR component event log."""

from repro.core.events import (
    ComponentEvent,
    ComponentEventLog,
    ComponentEventType,
)


class TestComponentEventLog:
    def test_emit_records_and_returns(self):
        log = ComponentEventLog()
        event = log.emit(10, ComponentEventType.ACTIVATED, "CAM",
                         "ok")
        assert isinstance(event, ComponentEvent)
        assert len(log) == 1
        assert list(log)[0] is event

    def test_listeners_receive_events(self):
        log = ComponentEventLog()
        seen = []
        log.listeners.add(seen.append)
        log.emit(1, ComponentEventType.REGISTERED, "A")
        log.emit(2, ComponentEventType.ACTIVATED, "A")
        assert [e.event_type for e in seen] == [
            ComponentEventType.REGISTERED,
            ComponentEventType.ACTIVATED]

    def test_of_type_filters(self):
        log = ComponentEventLog()
        log.emit(1, ComponentEventType.REGISTERED, "A")
        log.emit(2, ComponentEventType.ACTIVATED, "A")
        log.emit(3, ComponentEventType.ACTIVATED, "B")
        activated = log.of_type(ComponentEventType.ACTIVATED)
        assert [e.component for e in activated] == ["A", "B"]

    def test_for_component_filters(self):
        log = ComponentEventLog()
        log.emit(1, ComponentEventType.REGISTERED, "A")
        log.emit(2, ComponentEventType.REGISTERED, "B")
        log.emit(3, ComponentEventType.ACTIVATED, "A")
        assert [e.time for e in log.for_component("A")] == [1, 3]

    def test_sequence_view(self):
        log = ComponentEventLog()
        log.emit(1, ComponentEventType.REGISTERED, "A")
        log.emit(2, ComponentEventType.ACTIVATED, "A")
        assert log.sequence() == [
            (ComponentEventType.REGISTERED, "A"),
            (ComponentEventType.ACTIVATED, "A")]
        assert log.sequence("A") == log.sequence()
        assert log.sequence("B") == []

    def test_clear_keeps_listeners(self):
        log = ComponentEventLog()
        seen = []
        log.listeners.add(seen.append)
        log.emit(1, ComponentEventType.REGISTERED, "A")
        log.clear()
        assert len(log) == 0
        log.emit(2, ComponentEventType.REGISTERED, "B")
        assert len(seen) == 2

    def test_event_repr_includes_reason(self):
        event = ComponentEvent(5, ComponentEventType.DISABLED, "X",
                               "fault")
        assert "fault" in repr(event)
        assert "disabled" in repr(event)

    def test_listener_errors_do_not_break_emit(self):
        log = ComponentEventLog()

        def bad(event):
            raise RuntimeError("listener bug")

        seen = []
        log.listeners.add(bad)
        log.listeners.add(seen.append)
        log.emit(1, ComponentEventType.REGISTERED, "A")
        assert len(seen) == 1
