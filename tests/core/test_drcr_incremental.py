"""Incremental (dirty-set) reconfiguration and event-storm batching."""

import pytest

from repro.core.descriptor import ComponentDescriptor
from repro.core.errors import LifecycleError
from repro.core.lifecycle import ComponentState

from conftest import deploy, make_descriptor_xml


def descriptor(name, **kwargs):
    return ComponentDescriptor.from_xml(
        make_descriptor_xml(name, **kwargs))


def chain_descriptors(count, cpuusage=0.001):
    """A port chain: component i consumes component i-1's outport."""
    descriptors = []
    for index in range(count):
        outports = [("P%05d" % index, "RTAI.SHM", "Integer", 4)]
        inports = [("P%05d" % (index - 1), "RTAI.SHM", "Integer", 4)] \
            if index else []
        descriptors.append(descriptor(
            "C%05d" % index, cpuusage=cpuusage, frequency=100,
            priority=min(200, index + 1), outports=outports,
            inports=inports))
    return descriptors


class TestBatchCoalescing:
    def test_deploy_storm_is_one_reconfiguration(self, platform):
        drcr = platform.drcr
        before = drcr.reconfigurations
        with drcr.batch():
            for spec in chain_descriptors(8):
                drcr.register_component(spec)
            # Nothing resolves until the batch closes.
            assert drcr.reconfigurations == before
            assert len(drcr.registry.active()) == 0
        assert drcr.reconfigurations == before + 1
        assert len(drcr.registry.active()) == 8

    def test_counter_attribute_mirrors_telemetry(self, platform):
        drcr = platform.drcr
        metric = platform.telemetry.registry("drcr").get(
            "reconfigurations_total")
        with drcr.batch():
            for spec in chain_descriptors(3):
                drcr.register_component(spec)
        assert drcr.reconfigurations == metric.value

    def test_undeploy_storm_is_one_reconfiguration(self, platform):
        drcr = platform.drcr
        components = [drcr.register_component(spec)
                      for spec in chain_descriptors(6)]
        before = drcr.reconfigurations
        with drcr.batch():
            for component in components[3:]:
                drcr.unregister_component(component.name)
        assert drcr.reconfigurations == before + 1
        assert len(drcr.registry) == 3
        assert len(drcr.registry.active()) == 3

    def test_nested_batches_flush_once(self, platform):
        drcr = platform.drcr
        before = drcr.reconfigurations
        with drcr.batch():
            with drcr.batch():
                drcr.register_component(descriptor("INNER0"))
            # Inner exit must not flush while the outer is open.
            assert drcr.reconfigurations == before
            drcr.register_component(descriptor("OUTER0"))
        assert drcr.reconfigurations == before + 1
        assert drcr.component_state("INNER0") is ComponentState.ACTIVE
        assert drcr.component_state("OUTER0") is ComponentState.ACTIVE

    def test_bundle_deploy_batches_per_bundle(self, platform):
        drcr = platform.drcr
        before = drcr.reconfigurations
        xml_a = make_descriptor_xml("BATA00", cpuusage=0.01)
        xml_b = make_descriptor_xml("BATB00", cpuusage=0.01)
        platform.install_and_start(
            {"Bundle-SymbolicName": "batch.bundle",
             "RT-Component": "OSGI-INF/a.xml,OSGI-INF/b.xml"},
            resources={"OSGI-INF/a.xml": xml_a,
                       "OSGI-INF/b.xml": xml_b})
        assert drcr.reconfigurations == before + 1
        assert drcr.component_state("BATA00") is ComponentState.ACTIVE
        assert drcr.component_state("BATB00") is ComponentState.ACTIVE

    def test_register_application_refuses_open_batch(self, platform):
        from repro.core.application import ApplicationDescriptor
        application = ApplicationDescriptor(
            "app.batch", [descriptor("APPB00")])
        with platform.drcr.batch():
            with pytest.raises(LifecycleError):
                platform.drcr.register_application(application)

    def test_reverse_registration_order_converges_in_batch(
            self, platform):
        # Consumers registered before their providers must still
        # activate: the dirty set propagates provider -> consumer.
        drcr = platform.drcr
        with drcr.batch():
            for spec in reversed(chain_descriptors(5)):
                drcr.register_component(spec)
        assert len(drcr.registry.active()) == 5


class TestIncrementalEquivalence:
    """Incremental mode must land in the same configuration a full
    sweep does, for the same event sequence."""

    @staticmethod
    def run_scenario(platform):
        drcr = platform.drcr
        with drcr.batch():
            for spec in chain_descriptors(10, cpuusage=0.02):
                drcr.register_component(spec)
        # Kill a mid-chain provider: everything downstream cascades.
        drcr.disable_component("C00004")
        states_after_kill = {
            component.name: component.state
            for component in drcr.registry.all()}
        # Re-enable: the chain re-forms.
        drcr.enable_component("C00004")
        states_after_heal = {
            component.name: component.state
            for component in drcr.registry.all()}
        return states_after_kill, states_after_heal

    def test_matches_full_sweep(self, platform):
        from repro.core.policies import UtilizationBoundPolicy
        from repro.platform import build_platform
        from repro.rtos.kernel import KernelConfig
        from repro.rtos.latency import NullLatencyModel
        from repro.sim.engine import MSEC
        full = build_platform(
            seed=7,
            kernel_config=KernelConfig(latency_model=NullLatencyModel()),
            internal_policy=UtilizationBoundPolicy(cap=1.0))
        full.start_timer(1 * MSEC)
        full.drcr.incremental = False
        incremental_result = self.run_scenario(platform)
        full_result = self.run_scenario(full)
        assert incremental_result == full_result

    def test_cascade_marks_whole_downstream(self, platform):
        drcr = platform.drcr
        with drcr.batch():
            for spec in chain_descriptors(6):
                drcr.register_component(spec)
        drcr.disable_component("C00002")
        for index in range(6):
            state = drcr.component_state("C%05d" % index)
            if index < 2:
                assert state is ComponentState.ACTIVE
            elif index == 2:
                assert state is ComponentState.DISABLED
            else:
                assert state is ComponentState.UNSATISFIED

    def test_full_mode_flag_still_works(self, platform):
        platform.drcr.incremental = False
        for spec in chain_descriptors(4):
            platform.drcr.register_component(spec)
        assert len(platform.drcr.registry.active()) == 4


class TestDirtySetTelemetry:
    def test_marginal_deploy_skips_unaffected(self, platform):
        drcr = platform.drcr
        metrics = platform.telemetry.registry("drcr")
        with drcr.batch():
            for spec in chain_descriptors(20):
                drcr.register_component(spec)
        skipped_before = metrics.get("components_skipped_total").value
        drcr.register_component(descriptor(
            "XTRA00", cpuusage=0.001, frequency=100, priority=201,
            inports=[("P00019", "RTAI.SHM", "Integer", 4)]))
        # The marginal deploy visited the newcomer, not the fleet.
        assert metrics.get("dirty_set_size").value <= 2
        assert metrics.get("components_skipped_total").value \
            > skipped_before
        assert drcr.component_state("XTRA00") is ComponentState.ACTIVE

    def test_full_sweep_passes_counted(self, platform):
        metrics = platform.telemetry.registry("drcr")
        before = metrics.get("full_sweep_passes_total").value
        platform.drcr.register_component(descriptor("FULL00"))
        assert metrics.get("full_sweep_passes_total").value == before
        platform.drcr.reconfigure()
        assert metrics.get("full_sweep_passes_total").value > before


class TestBundleLifecycleUnderBatch:
    def test_bundle_stop_coalesces(self, platform):
        drcr = platform.drcr
        bundles = [
            deploy(platform, make_descriptor_xml(
                "BST%03d" % index, cpuusage=0.01))
            for index in range(4)
        ]
        before = drcr.reconfigurations
        with drcr.batch():
            for bundle in bundles:
                bundle.stop()
        assert drcr.reconfigurations == before + 1
        assert len(drcr.registry) == 0
