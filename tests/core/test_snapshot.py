"""Tests for DRCR state snapshot and warm restore."""

import json

import pytest

from repro.core import ComponentState, UtilizationBoundPolicy
from repro.core.snapshot import export_state, restore_state
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml

PORT = ("LINK00", "RTAI.SHM", "Integer", 2)


def fresh_platform(cap=1.0):
    platform = build_platform(
        seed=12,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=cap))
    platform.start_timer(1 * MSEC)
    return platform


def populate(platform):
    deploy(platform, make_descriptor_xml(
        "PROV00", cpuusage=0.2, outports=[PORT]))
    deploy(platform, make_descriptor_xml(
        "CONS00", cpuusage=0.1, frequency=250, priority=3,
        inports=[PORT]))
    deploy(platform, make_descriptor_xml(
        "OFF000", cpuusage=0.1, frequency=100, priority=5,
        enabled=False))
    deploy(platform, make_descriptor_xml(
        "PAUSE0", cpuusage=0.1, frequency=100, priority=6))
    platform.drcr.suspend_component("PAUSE0")
    platform.run_for(50 * MSEC)


class TestExport:
    def test_export_captures_population(self):
        platform = fresh_platform()
        populate(platform)
        state = export_state(platform.drcr)
        names = {entry["name"] for entry in state["components"]}
        assert names == {"PROV00", "CONS00", "OFF000", "PAUSE0"}
        by_name = {entry["name"]: entry
                   for entry in state["components"]}
        assert by_name["OFF000"]["state"] == "disabled"
        assert by_name["PAUSE0"]["state"] == "suspended"

    def test_export_is_json_serialisable(self):
        platform = fresh_platform()
        populate(platform)
        text = json.dumps(export_state(platform.drcr))
        assert "PROV00" in text

    def test_live_properties_captured(self):
        platform = fresh_platform()
        deploy(platform, make_descriptor_xml(
            "TUNED0", cpuusage=0.1,
            properties=[("gain", "Integer", "1")]))
        component = platform.drcr.component("TUNED0")
        component.container.set_property("gain", 42)
        platform.run_for(5 * MSEC)
        state = export_state(platform.drcr)
        entry = next(e for e in state["components"]
                     if e["name"] == "TUNED0")
        assert entry["properties"]["gain"] == 42


class TestRestore:
    def _roundtrip(self, cap=1.0):
        source = fresh_platform()
        populate(source)
        state = export_state(source.drcr)
        target = fresh_platform(cap=cap)
        report = restore_state(target.drcr, state)
        return target, report

    def test_population_restored(self):
        target, report = self._roundtrip()
        assert target.drcr.component_state("PROV00") \
            is ComponentState.ACTIVE
        assert target.drcr.component_state("CONS00") \
            is ComponentState.ACTIVE
        assert target.drcr.component_state("OFF000") \
            is ComponentState.DISABLED
        assert target.drcr.component_state("PAUSE0") \
            is ComponentState.SUSPENDED
        assert sorted(report["restored"]) == ["CONS00", "PROV00"]
        assert report["disabled"] == ["OFF000"]
        assert report["suspended"] == ["PAUSE0"]

    def test_restored_system_actually_runs(self):
        target, _ = self._roundtrip()
        target.run_for(100 * MSEC)
        task = target.kernel.lookup("PROV00")
        assert task.stats.completions >= 99

    def test_admission_re_decided_on_restore(self):
        # The target's tighter budget rejects part of the snapshot.
        target, report = self._roundtrip(cap=0.25)
        assert "PROV00" in report["restored"] \
            or "PROV00" in report["unsatisfied"]
        states = [target.drcr.component_state(n)
                  for n in ("PROV00", "CONS00")]
        assert ComponentState.UNSATISFIED in states

    def test_live_properties_restored(self):
        source = fresh_platform()
        deploy(source, make_descriptor_xml(
            "TUNED0", cpuusage=0.1,
            properties=[("gain", "Integer", "1")]))
        source.drcr.component("TUNED0").container.set_property(
            "gain", 42)
        source.run_for(5 * MSEC)
        state = export_state(source.drcr)
        target = fresh_platform()
        restore_state(target.drcr, state)
        # Restore routes through container.set_property (the §3.2
        # command path), so the value lands at the RT task's next
        # command poll rather than instantaneously.
        target.run_for(5 * MSEC)
        component = target.drcr.component("TUNED0")
        assert component.container.get_property("gain") == 42

    def test_existing_names_skipped(self):
        source = fresh_platform()
        populate(source)
        state = export_state(source.drcr)
        target = fresh_platform()
        deploy(target, make_descriptor_xml(
            "PROV00", cpuusage=0.2, outports=[PORT]))
        report = restore_state(target.drcr, state)
        assert report["skipped"] == ["PROV00"]
        assert target.drcr.component_state("CONS00") \
            is ComponentState.ACTIVE

    def test_applications_remembered(self):
        source = fresh_platform()
        populate(source)
        source.drcr.define_application("grp", ["PROV00", "CONS00"])
        state = export_state(source.drcr)
        target = fresh_platform()
        restore_state(target.drcr, state)
        assert target.drcr.applications() == {
            "grp": ["PROV00", "CONS00"]}

    def test_pending_properties_apply_on_late_admission(self):
        # Regression: entries that stay UNSATISFIED after the restore
        # pass used to silently drop their saved live properties.
        source = fresh_platform()
        deploy(source, make_descriptor_xml(
            "PROV00", cpuusage=0.2, outports=[PORT]))
        deploy(source, make_descriptor_xml(
            "CONS00", cpuusage=0.1, frequency=250, priority=3,
            inports=[PORT], properties=[("gain", "Integer", "1")]))
        source.drcr.component("CONS00").container.set_property(
            "gain", 77)
        source.run_for(10 * MSEC)
        state = export_state(source.drcr)
        consumer = next(e for e in state["components"]
                        if e["name"] == "CONS00")
        target = fresh_platform()
        report = restore_state(target.drcr, {
            "version": state["version"], "components": [consumer]})
        assert report["deferred"] == ["CONS00"]
        # The provider arrives later; admission resolves and the
        # stashed value must be applied through the command path.
        deploy(target, make_descriptor_xml(
            "PROV00", cpuusage=0.2, outports=[PORT]))
        target.run_for(10 * MSEC)
        component = target.drcr.component("CONS00")
        assert component.state is ComponentState.ACTIVE
        assert component.container.get_property("gain") == 77

    def test_wrong_version_rejected(self):
        target = fresh_platform()
        with pytest.raises(ValueError):
            restore_state(target.drcr, {"version": 99,
                                        "components": []})

    def test_json_roundtrip_restores(self):
        source = fresh_platform()
        populate(source)
        text = json.dumps(export_state(source.drcr))
        target = fresh_platform()
        report = restore_state(target.drcr, json.loads(text))
        assert report["restored"]


class TestDefineApplication:
    """The public application-intent API snapshot restore and cluster
    failover write through (regression: restore used to poke the
    private ``_applications`` dict)."""

    def test_records_and_copies_members(self):
        platform = fresh_platform()
        members = ["A00000", "B00000"]
        recorded = platform.drcr.define_application("grp", members)
        members.append("C00000")  # caller's list must not alias
        assert platform.drcr.applications() == {
            "grp": ["A00000", "B00000"]}
        assert recorded == ["A00000", "B00000"]

    def test_members_need_not_be_deployed(self):
        platform = fresh_platform()
        platform.drcr.define_application("grp", ["NOTYET"])
        assert platform.drcr.applications()["grp"] == ["NOTYET"]

    def test_empty_name_rejected(self):
        from repro.core.errors import LifecycleError
        platform = fresh_platform()
        with pytest.raises(LifecycleError):
            platform.drcr.define_application("", ["A00000"])
