"""Tests for run-time budget enforcement (the §2.1 "enforced by a
central scheme" loop closed at run time)."""

import pytest

from repro.core import AdaptationManager, ComponentState
from repro.core.adaptation import BudgetOveruseRule
from repro.hybrid import RTImplementation, make_container_factory
from repro.hybrid.implementation import ImplementationRegistry
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml


class Liar(RTImplementation):
    """Declares little, burns much: each job consumes three times the
    contract's derived WCET."""

    def compute_ns(self, ctx):
        return 3 * ctx.contract.wcet_ns


def liar_platform():
    registry = ImplementationRegistry()
    registry.register("liar.Impl", Liar)
    platform = build_platform(
        seed=3,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        container_factory=make_container_factory(registry))
    platform.start_timer(1 * MSEC)
    return platform


class TestBudgetEnforcement:
    def test_honest_component_untouched(self, platform):
        deploy(platform, make_descriptor_xml("GOOD00", cpuusage=0.1))
        manager = AdaptationManager(platform.framework,
                                    rules=[BudgetOveruseRule()])
        platform.run_for(500 * MSEC)
        assert manager.poll() == []
        assert platform.drcr.component_state("GOOD00") \
            is ComponentState.ACTIVE
        manager.close()

    def test_overusing_component_suspended(self):
        platform = liar_platform()
        deploy(platform, make_descriptor_xml(
            "LIAR00", cpuusage=0.1, bincode="liar.Impl"))
        manager = AdaptationManager(platform.framework,
                                    rules=[BudgetOveruseRule()])
        platform.run_for(500 * MSEC)
        actions = manager.poll()
        assert actions and "measured" in actions[0][1]
        assert platform.drcr.component_state("LIAR00") \
            is ComponentState.SUSPENDED
        manager.close()

    def test_tolerance_respected(self):
        # 3x overuse passes a 400% tolerance.
        platform = liar_platform()
        deploy(platform, make_descriptor_xml(
            "LIAR00", cpuusage=0.1, bincode="liar.Impl"))
        manager = AdaptationManager(
            platform.framework, rules=[BudgetOveruseRule(tolerance=4.0)])
        platform.run_for(500 * MSEC)
        assert manager.poll() == []
        manager.close()

    def test_warmup_grace_period(self):
        # With almost no accumulated CPU time, no verdict yet.
        platform = liar_platform()
        deploy(platform, make_descriptor_xml(
            "LIAR00", cpuusage=0.1, bincode="liar.Impl"))
        manager = AdaptationManager(
            platform.framework,
            rules=[BudgetOveruseRule(min_cpu_time_ns=int(1e12))])
        platform.run_for(100 * MSEC)
        assert manager.poll() == []
        manager.close()

    def test_enforcement_inside_simulated_time(self):
        # The full enforcement loop as a periodic Linux-side activity.
        platform = liar_platform()
        deploy(platform, make_descriptor_xml(
            "LIAR00", cpuusage=0.1, bincode="liar.Impl"))
        deploy(platform, make_descriptor_xml(
            "GOOD00", cpuusage=0.1, priority=3))
        manager = AdaptationManager(platform.framework,
                                    rules=[BudgetOveruseRule()])
        manager.start_periodic_polling(platform.sim, 100 * MSEC)
        platform.run_for(1 * SEC)
        assert platform.drcr.component_state("LIAR00") \
            is ComponentState.SUSPENDED
        assert platform.drcr.component_state("GOOD00") \
            is ComponentState.ACTIVE
        manager.close()

    def test_measured_utilization_in_status(self, platform):
        deploy(platform, make_descriptor_xml("GOOD00", cpuusage=0.1))
        platform.run_for(500 * MSEC)
        component = platform.drcr.component("GOOD00")
        measured = component.container.get_status()[
            "measured_utilization"]
        assert measured == pytest.approx(0.1, rel=0.1)
