"""Tests for the adaptation manager's simulated-time polling."""

import pytest

from repro.core import (
    AdaptationManager,
    AdaptationRule,
    AlwaysAcceptPolicy,
    ComponentState,
    SuspendOnDeadlineMisses,
)
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml


class CountingRule(AdaptationRule):
    name = "counting"

    def __init__(self):
        self.calls = 0

    def apply(self, status, management, manager):
        self.calls += 1
        return None


class TestPeriodicPolling:
    def test_polls_on_simulated_schedule(self, platform):
        deploy(platform, make_descriptor_xml("COMP00", cpuusage=0.05))
        rule = CountingRule()
        manager = AdaptationManager(platform.framework, rules=[rule])
        manager.start_periodic_polling(platform.sim, 10 * MSEC)
        platform.run_for(100 * MSEC)
        # One component, one rule call per poll; ~10 polls in 100 ms.
        assert 9 <= rule.calls <= 11
        manager.close()

    def test_stop_polling(self, platform):
        deploy(platform, make_descriptor_xml("COMP00", cpuusage=0.05))
        rule = CountingRule()
        manager = AdaptationManager(platform.framework, rules=[rule])
        manager.start_periodic_polling(platform.sim, 10 * MSEC)
        platform.run_for(50 * MSEC)
        count = rule.calls
        manager.stop_periodic_polling()
        platform.run_for(50 * MSEC)
        assert rule.calls == count
        manager.close()

    def test_restart_with_new_period(self, platform):
        deploy(platform, make_descriptor_xml("COMP00", cpuusage=0.05))
        rule = CountingRule()
        manager = AdaptationManager(platform.framework, rules=[rule])
        manager.start_periodic_polling(platform.sim, 50 * MSEC)
        manager.start_periodic_polling(platform.sim, 10 * MSEC)
        platform.run_for(100 * MSEC)
        assert rule.calls >= 9  # the 10 ms schedule won
        manager.close()

    def test_bad_period_rejected(self, platform):
        manager = AdaptationManager(platform.framework)
        with pytest.raises(ValueError):
            manager.start_periodic_polling(platform.sim, 0)
        manager.close()

    def test_close_cancels_polling(self, platform):
        deploy(platform, make_descriptor_xml("COMP00", cpuusage=0.05))
        rule = CountingRule()
        manager = AdaptationManager(platform.framework, rules=[rule])
        manager.start_periodic_polling(platform.sim, 10 * MSEC)
        manager.close()
        platform.run_for(100 * MSEC)
        assert rule.calls == 0

    def test_closed_loop_entirely_inside_simulated_time(self, platform):
        """The full paper loop with no test-code interleaving: overload
        appears, the polling manager detects and suspends, and the
        survivors run clean -- all within one run_for window."""
        platform.drcr.set_internal_policy(AlwaysAcceptPolicy())
        deploy(platform, make_descriptor_xml(
            "HOGA00", cpuusage=0.7, frequency=1000, priority=1))
        deploy(platform, make_descriptor_xml(
            "HOGB00", cpuusage=0.7, frequency=1000, priority=2))
        manager = AdaptationManager(
            platform.framework, rules=[SuspendOnDeadlineMisses(10)])
        manager.start_periodic_polling(platform.sim, 50 * MSEC)
        platform.run_for(2 * SEC)
        assert platform.drcr.component_state("HOGB00") \
            is ComponentState.SUSPENDED
        assert platform.drcr.component_state("HOGA00") \
            is ComponentState.ACTIVE
        hog_a = platform.kernel.lookup("HOGA00")
        # After the shed, A ran clean for the rest of the window.
        assert hog_a.stats.completions > 1500
        manager.close()
