"""Tests for the inspection/report module."""

from repro.core.inspection import (
    format_component_table,
    format_event_tail,
    format_kernel_objects,
    format_utilization,
    system_report,
)
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml


def populated(platform):
    deploy(platform, make_descriptor_xml(
        "CALC00", cpuusage=0.05,
        outports=[("LATDAT", "RTAI.SHM", "Integer", 4)]))
    deploy(platform, make_descriptor_xml(
        "DISP00", cpuusage=0.01, frequency=250, priority=3,
        inports=[("LATDAT", "RTAI.SHM", "Integer", 4)]))
    deploy(platform, make_descriptor_xml(
        "LONELY", cpuusage=0.01, frequency=100, priority=9,
        inports=[("GHOST0", "RTAI.SHM", "Byte", 8)]))
    platform.run_for(10 * MSEC)
    return platform


class TestInspection:
    def test_component_table_lists_everything(self, platform):
        populated(platform)
        table = format_component_table(platform.drcr)
        assert "CALC00" in table and "DISP00" in table
        assert "active" in table
        assert "unsatisfied" in table
        assert "no active provider" in table

    def test_table_shows_providers(self, platform):
        populated(platform)
        table = format_component_table(platform.drcr)
        disp_row = next(line for line in table.splitlines()
                        if line.startswith("DISP00"))
        assert "CALC00" in disp_row

    def test_utilization_section(self, platform):
        populated(platform)
        text = format_utilization(platform.drcr)
        assert "CPU" in text
        assert "6.0%" in text  # declared: 0.05 + 0.01

    def test_kernel_objects(self, platform):
        populated(platform)
        text = format_kernel_objects(platform.kernel)
        assert "CALC00" in text
        assert "LATDAT" in text

    def test_event_tail_limits(self, platform):
        populated(platform)
        tail = format_event_tail(platform.drcr, count=3)
        assert len(tail.splitlines()) == 3

    def test_event_tail_empty(self, platform):
        assert format_event_tail(platform.drcr) == "(no events)"

    def test_system_report_composes(self, platform):
        populated(platform)
        report = system_report(platform.drcr)
        assert "DRCR system report" in report
        assert "3 deployed, 2 active" in report
        assert "utilization-bound" in report
        assert "recent events:" in report

    def test_system_report_lists_applications(self, platform):
        from repro.core.application import ApplicationDescriptor
        xml = make_descriptor_xml("SOLO00", cpuusage=0.02)
        body = xml.split("\n", 1)[1]
        app = ApplicationDescriptor.from_xml(
            '<?xml version="1.0"?>\n<drt:application name="demo">\n'
            "%s\n</drt:application>" % body)
        platform.drcr.register_application(app)
        report = system_report(platform.drcr)
        assert "applications: demo[SOLO00]" in report
