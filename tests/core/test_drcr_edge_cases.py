"""DRCR edge cases: oscillating policies, re-entrancy, detachment."""

import pytest

from repro.core import (
    RESOLVING_SERVICE_INTERFACE,
    ComponentState,
    Decision,
    LifecycleError,
    ResolvingService,
)
from conftest import deploy, make_descriptor_xml


class OscillatingPolicy(ResolvingService):
    """Admits every candidate but revokes every admitted component:
    each reconfiguration pass deactivates and immediately re-admits --
    the pathological policy the convergence guard exists for."""

    name = "oscillator"

    def admit(self, candidate, view):
        return Decision.yes("come in")

    def revalidate(self, component, view):
        return Decision.no("get out")


class TestConvergenceGuard:
    def test_oscillating_policy_detected(self, platform):
        from repro.core.descriptor import ComponentDescriptor
        platform.drcr.set_internal_policy(OscillatingPolicy())
        descriptor = ComponentDescriptor.from_xml(
            make_descriptor_xml("OSC000", cpuusage=0.1))
        with pytest.raises(LifecycleError, match="did not converge"):
            platform.drcr.register_component(descriptor)

    def test_oscillation_via_bundle_lands_in_framework_errors(
            self, platform):
        # Through the bundle path, listener isolation converts the
        # convergence failure into a FrameworkEvent.ERROR instead of
        # crashing the framework.
        from repro.osgi.events import FrameworkEventType
        platform.drcr.set_internal_policy(OscillatingPolicy())
        deploy(platform, make_descriptor_xml("OSC000", cpuusage=0.1))
        errors = [e for e in platform.framework.framework_events
                  if e.event_type is FrameworkEventType.ERROR]
        assert errors
        assert "did not converge" in str(errors[0].error)


class TestResolvingServiceDynamics:
    class TogglingService(ResolvingService):
        name = "toggle"

        def __init__(self):
            self.allow = True

        def admit(self, candidate, view):
            return Decision(self.allow, "toggle says %s" % self.allow)

        def revalidate(self, component, view):
            return Decision(self.allow, "toggle says %s" % self.allow)

    def test_service_departure_restores_admission(self, platform):
        service = self.TogglingService()
        service.allow = False
        registration = platform.framework.registry.register(
            RESOLVING_SERVICE_INTERFACE, service)
        deploy(platform, make_descriptor_xml("COMP00", cpuusage=0.1))
        assert platform.drcr.component_state("COMP00") \
            is ComponentState.UNSATISFIED
        registration.unregister()
        assert platform.drcr.component_state("COMP00") \
            is ComponentState.ACTIVE

    def test_service_arrival_sheds_admitted(self, platform):
        deploy(platform, make_descriptor_xml("COMP00", cpuusage=0.1))
        assert platform.drcr.component_state("COMP00") \
            is ComponentState.ACTIVE
        service = self.TogglingService()
        service.allow = False
        platform.framework.registry.register(
            RESOLVING_SERVICE_INTERFACE, service)
        assert platform.drcr.component_state("COMP00") \
            is ComponentState.UNSATISFIED

    def test_multiple_customized_services_all_consulted(self, platform):
        consulted = []

        class Recorder(ResolvingService):
            def __init__(self, label):
                self.name = label

            def admit(self, candidate, view):
                consulted.append(self.name)
                return Decision.yes()

        for label in ("first", "second", "third"):
            platform.framework.registry.register(
                RESOLVING_SERVICE_INTERFACE, Recorder(label))
        deploy(platform, make_descriptor_xml("COMP00", cpuusage=0.1))
        assert set(consulted) == {"first", "second", "third"}


class TestDetachReattach:
    def test_detach_then_reattach_redeploys(self, platform):
        bundle = deploy(platform, make_descriptor_xml(
            "COMP00", cpuusage=0.1))
        platform.drcr.detach()
        assert len(platform.drcr.registry) == 0
        platform.drcr.attach()
        # The bundle is still ACTIVE: its descriptor redeploys.
        assert platform.drcr.component_state("COMP00") \
            is ComponentState.ACTIVE

    def test_detach_is_idempotent(self, platform):
        platform.drcr.detach()
        platform.drcr.detach()

    def test_attach_is_idempotent(self, platform):
        platform.drcr.attach()
        deploy(platform, make_descriptor_xml("COMP00", cpuusage=0.1))
        assert len(platform.drcr.registry) == 1


class TestDisposedComponents:
    def test_operations_on_disposed_component_fail_cleanly(self,
                                                           platform):
        from repro.core import UnknownComponentError
        bundle = deploy(platform, make_descriptor_xml(
            "COMP00", cpuusage=0.1))
        bundle.stop()
        with pytest.raises(UnknownComponentError):
            platform.drcr.component("COMP00")
        with pytest.raises(UnknownComponentError):
            platform.drcr.suspend_component("COMP00")

    def test_redeploy_same_name_after_disposal(self, platform):
        bundle = deploy(platform, make_descriptor_xml(
            "COMP00", cpuusage=0.1))
        bundle.stop()
        bundle.start()
        assert platform.drcr.component_state("COMP00") \
            is ComponentState.ACTIVE
