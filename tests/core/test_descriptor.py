"""Tests for DRCom XML descriptor parsing (paper section 2.3)."""

import pytest

from repro.core.descriptor import ComponentDescriptor, ComponentProperty
from repro.core.errors import DescriptorError
from repro.core.ports import PortInterface
from repro.rtos.task import TaskType

#: The paper's Figure 2, verbatim quirks included ("<? xml", bare drt:
#: prefix, "frequence", "runoncup").
PAPER_FIGURE_2 = """<? xml version="1.0" encoding="UTF-8"?>
<drt:component name="camera" desc="this is a smart camera
controller" type="periodic" enabled="true"
cpuusage="0.1">
<implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
<periodictask frequence="100" runoncup="0" priority="2"/>
<outport name="images" interface="RTAI.SHM" type="Byte"
size="400" />
<inport name="xysize" interface="RTAI.SHM" type="Integer"
size="400"/>
<property name="prox00" type="Integer" value="6" />
</drt:component>"""


class TestPaperFigure2:
    """The descriptor from the paper must parse exactly."""

    @pytest.fixture
    def descriptor(self):
        return ComponentDescriptor.from_xml(PAPER_FIGURE_2)

    def test_component_attributes(self, descriptor):
        assert descriptor.name == "camera"
        assert descriptor.enabled is True
        assert descriptor.contract.cpu_usage == pytest.approx(0.1)
        assert descriptor.task_type is TaskType.PERIODIC

    def test_implementation(self, descriptor):
        assert descriptor.implementation \
            == "ua.pats.demo.smartcamera.RTComponent"

    def test_periodic_task(self, descriptor):
        # "the task's period is set to 10 millisecond and is to run on
        # CPU 0 with priority 2"
        assert descriptor.contract.frequency_hz == 100
        assert descriptor.contract.period_ns == 10_000_000
        assert descriptor.contract.cpu == 0
        assert descriptor.contract.priority == 2

    def test_ports(self, descriptor):
        outs, ins = descriptor.outports, descriptor.inports
        assert len(outs) == 1 and len(ins) == 1
        assert outs[0].name == "IMAGES"
        assert outs[0].interface is PortInterface.RTAI_SHM
        assert outs[0].data_type == "Byte"
        assert outs[0].size == 400
        assert ins[0].name == "XYSIZE"
        assert ins[0].data_type == "Integer"

    def test_property(self, descriptor):
        assert descriptor.property_value("prox00") == 6

    def test_task_name_is_rtai_name(self, descriptor):
        assert descriptor.task_name == "CAMERA"


class TestParsingVariants:
    def test_frequency_spelling_accepted(self):
        xml = PAPER_FIGURE_2.replace("frequence=", "frequency=")
        assert ComponentDescriptor.from_xml(xml).contract \
            .frequency_hz == 100

    def test_runoncpu_spelling_accepted(self):
        xml = PAPER_FIGURE_2.replace("runoncup=", "runoncpu=")
        assert ComponentDescriptor.from_xml(xml).contract.cpu == 0

    def test_declared_namespace_accepted(self):
        xml = PAPER_FIGURE_2.replace(
            "<drt:component",
            '<drt:component xmlns:drt="http://pats.ua.ac.be/drt"')
        descriptor = ComponentDescriptor.from_xml(xml)
        assert descriptor.name == "camera"

    def test_enabled_false(self):
        xml = PAPER_FIGURE_2.replace('enabled="true"',
                                     'enabled="false"')
        assert ComponentDescriptor.from_xml(xml).enabled is False

    def test_aperiodic_component(self):
        xml = """<?xml version="1.0"?>
        <drt:component name="events" type="aperiodic" cpuusage="0.02">
          <implementation bincode="x.Events"/>
          <aperiodictask runoncpu="1" priority="4"/>
        </drt:component>"""
        descriptor = ComponentDescriptor.from_xml(xml)
        assert descriptor.task_type is TaskType.APERIODIC
        assert descriptor.contract.cpu == 1
        assert descriptor.contract.priority == 4
        assert descriptor.contract.period_ns is None

    def test_long_component_name_derives_task_name(self):
        xml = PAPER_FIGURE_2.replace('name="camera"',
                                     'name="calculation-service"')
        descriptor = ComponentDescriptor.from_xml(xml)
        assert len(descriptor.task_name) <= 6

    def test_deadline_attribute(self):
        xml = PAPER_FIGURE_2.replace(
            'priority="2"', 'priority="2" deadline_ns="5000000"')
        descriptor = ComponentDescriptor.from_xml(xml)
        assert descriptor.contract.deadline_ns == 5_000_000

    def test_mailbox_interface_port(self):
        xml = PAPER_FIGURE_2.replace("RTAI.SHM", "RTAI.Mailbox")
        descriptor = ComponentDescriptor.from_xml(xml)
        assert descriptor.outports[0].interface \
            is PortInterface.RTAI_MAILBOX


class TestValidation:
    def test_missing_name_rejected(self):
        xml = PAPER_FIGURE_2.replace('name="camera" ', "", 1)
        with pytest.raises(DescriptorError):
            ComponentDescriptor.from_xml(xml)

    def test_missing_implementation_rejected(self):
        xml = PAPER_FIGURE_2.replace(
            '<implementation bincode="ua.pats.demo.smartcamera.'
            'RTComponent"/>', "")
        with pytest.raises(DescriptorError):
            ComponentDescriptor.from_xml(xml)

    def test_periodic_without_periodictask_rejected(self):
        xml = PAPER_FIGURE_2.replace(
            '<periodictask frequence="100" runoncup="0" priority="2"/>',
            "")
        with pytest.raises(DescriptorError):
            ComponentDescriptor.from_xml(xml)

    def test_unknown_element_rejected(self):
        xml = PAPER_FIGURE_2.replace(
            "</drt:component>", "<mystery/></drt:component>")
        with pytest.raises(DescriptorError):
            ComponentDescriptor.from_xml(xml)

    def test_bad_task_type_rejected(self):
        xml = PAPER_FIGURE_2.replace('type="periodic"',
                                     'type="sporadic"')
        with pytest.raises(DescriptorError):
            ComponentDescriptor.from_xml(xml)

    def test_unparseable_xml_rejected(self):
        with pytest.raises(DescriptorError):
            ComponentDescriptor.from_xml("<not-closed")

    def test_cpuusage_over_one_rejected(self):
        xml = PAPER_FIGURE_2.replace('cpuusage="0.1"',
                                     'cpuusage="1.5"')
        from repro.core.errors import ContractError
        with pytest.raises(ContractError):
            ComponentDescriptor.from_xml(xml)

    def test_duplicate_port_rejected(self):
        xml = PAPER_FIGURE_2.replace(
            "</drt:component>",
            '<outport name="images" interface="RTAI.SHM" type="Byte" '
            'size="400"/></drt:component>')
        with pytest.raises(DescriptorError):
            ComponentDescriptor.from_xml(xml)

    def test_duplicate_property_rejected(self):
        xml = PAPER_FIGURE_2.replace(
            "</drt:component>",
            '<property name="prox00" type="Integer" value="7"/>'
            "</drt:component>")
        with pytest.raises(DescriptorError):
            ComponentDescriptor.from_xml(xml)

    def test_unsupported_property_type_rejected(self):
        with pytest.raises(DescriptorError):
            ComponentProperty("p", "Complex", "1")

    def test_unparseable_property_value_rejected(self):
        with pytest.raises(DescriptorError):
            ComponentProperty("p", "Integer", "six")


class TestPropertyTypes:
    @pytest.mark.parametrize("type_name,raw,expected", [
        ("Integer", "42", 42),
        ("Byte", "255", 255),
        ("Long", "9999999999", 9999999999),
        ("Float", "1.5", 1.5),
        ("Double", "2.5", 2.5),
        ("String", "hello", "hello"),
        ("Boolean", "true", True),
        ("Boolean", "False", False),
    ])
    def test_parsing(self, type_name, raw, expected):
        prop = ComponentProperty("p", type_name, raw)
        assert prop.value == expected


class TestRoundTrip:
    def test_to_xml_from_xml_roundtrip(self):
        original = ComponentDescriptor.from_xml(PAPER_FIGURE_2)
        reparsed = ComponentDescriptor.from_xml(original.to_xml())
        assert reparsed.name == original.name
        assert reparsed.contract == original.contract
        assert reparsed.ports == original.ports
        assert reparsed.property_dict() == original.property_dict()
        assert reparsed.enabled == original.enabled
        assert reparsed.implementation == original.implementation
