"""Tests for the workload generation library."""

import pytest

from repro.sim.rng import RandomStreams
from repro.workloads import (
    generate_component_set,
    generate_taskset,
    log_uniform_periods,
    uunifast,
)

MS = 1_000_000


@pytest.fixture
def rng():
    return RandomStreams(42)


class TestUUniFast:
    def test_sums_to_total(self, rng):
        for total in (0.5, 0.9, 1.5):
            values = uunifast(rng, "s", 8, total)
            assert sum(values) == pytest.approx(total)

    def test_all_positive(self, rng):
        for _ in range(50):
            assert all(v > 0 for v in uunifast(rng, "s", 5, 0.8))

    def test_single_task_gets_everything(self, rng):
        assert uunifast(rng, "s", 1, 0.7) == [0.7]

    def test_count_respected(self, rng):
        assert len(uunifast(rng, "s", 12, 0.9)) == 12

    def test_deterministic_per_seed(self):
        a = uunifast(RandomStreams(7), "s", 6, 0.8)
        b = uunifast(RandomStreams(7), "s", 6, 0.8)
        assert a == b

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            uunifast(rng, "s", 0, 0.5)
        with pytest.raises(ValueError):
            uunifast(rng, "s", 3, 0.0)


class TestPeriods:
    def test_within_range_and_snapped(self, rng):
        periods = log_uniform_periods(rng, "p", 100, 1 * MS, 100 * MS)
        for period in periods:
            assert 1 * MS <= period <= 101 * MS
            assert period % MS == 0

    def test_spans_decades(self, rng):
        periods = log_uniform_periods(rng, "p", 200, 1 * MS, 100 * MS)
        assert min(periods) < 5 * MS
        assert max(periods) > 50 * MS

    def test_bad_range_rejected(self, rng):
        with pytest.raises(ValueError):
            log_uniform_periods(rng, "p", 3, 10 * MS, 1 * MS)


class TestTaskset:
    def test_utilization_approximately_preserved(self, rng):
        specs = generate_taskset(rng, "w1", 10, 0.75)
        total = sum(spec.utilization for spec in specs)
        assert total == pytest.approx(0.75, abs=0.02)

    def test_rm_priorities_assigned(self, rng):
        specs = generate_taskset(rng, "w1", 10, 0.75)
        ordered = sorted(specs, key=lambda s: s.priority)
        periods = [s.period_ns for s in ordered]
        assert periods == sorted(periods)

    def test_different_names_independent(self, rng):
        a = generate_taskset(rng, "wa", 5, 0.5)
        b = generate_taskset(rng, "wb", 5, 0.5)
        assert [s.period_ns for s in a] != [s.period_ns for s in b]

    def test_wcet_at_least_one(self, rng):
        specs = generate_taskset(rng, "w1", 20, 0.05)
        assert all(spec.wcet_ns >= 1 for spec in specs)


class TestComponentSet:
    def test_descriptors_valid_and_truthful(self, rng):
        descriptors = generate_component_set(rng, "app", 6, 0.6)
        total = sum(d.contract.cpu_usage for d in descriptors)
        assert total == pytest.approx(0.6, abs=0.05)
        for descriptor in descriptors:
            assert descriptor.contract.is_periodic
            assert descriptor.contract.period_ns % MS == 0

    def test_chained_ports_line_up(self, rng):
        descriptors = generate_component_set(rng, "app", 4, 0.4,
                                             chained=True)
        for previous, current in zip(descriptors, descriptors[1:]):
            inport = current.inports[0]
            outport = previous.outports[0]
            assert inport.compatible_with(outport)

    def test_unchained_has_no_ports(self, rng):
        descriptors = generate_component_set(rng, "app", 4, 0.4)
        assert all(not d.ports for d in descriptors)

    def test_deployable_end_to_end(self, rng, platform):
        descriptors = generate_component_set(rng, "app", 5, 0.5,
                                             chained=True)
        for descriptor in descriptors:
            platform.drcr.register_component(descriptor)
        from repro.core import ComponentState
        active = platform.drcr.registry.in_state(ComponentState.ACTIVE)
        assert len(active) == 5
        assert active[0].name.startswith("AP")
        from repro.sim.engine import SEC
        platform.run_for(1 * SEC)
        for component in active:
            task = platform.kernel.lookup(
                component.descriptor.task_name)
            assert task.stats.completions > 0
