"""Tests for the Figure-1 lifecycle machine and component guards."""

import pytest

from repro.core.component import DRComComponent, LifecycleToken
from repro.core.descriptor import ComponentDescriptor
from repro.core.errors import LifecycleError, NotManagedByDRCRError
from repro.core.lifecycle import (
    INSTANTIATED_STATES,
    TRANSITIONS,
    ComponentState,
    can_transition,
    reachable_states,
)

from conftest import make_descriptor_xml


@pytest.fixture
def descriptor():
    return ComponentDescriptor.from_xml(make_descriptor_xml("CAM000"))


@pytest.fixture
def token():
    return LifecycleToken(owner="test-drcr")


@pytest.fixture
def component(descriptor, token):
    return DRComComponent(descriptor, bundle=None, token=token)


class TestTransitionTable:
    def test_every_state_has_an_entry(self):
        assert set(TRANSITIONS) == set(ComponentState)

    def test_disposed_is_terminal(self):
        assert TRANSITIONS[ComponentState.DISPOSED] == set()

    def test_no_self_loops(self):
        for state, successors in TRANSITIONS.items():
            assert state not in successors

    def test_active_only_reachable_through_activating(self):
        predecessors = [state for state, successors in TRANSITIONS.items()
                        if ComponentState.ACTIVE in successors]
        assert predecessors == [ComponentState.ACTIVATING] \
            or set(predecessors) == {ComponentState.ACTIVATING,
                                     ComponentState.SUSPENDED}

    def test_disposed_reachable_from_everywhere(self):
        for state in ComponentState:
            assert ComponentState.DISPOSED in reachable_states(state)

    def test_active_unreachable_from_disposed(self):
        assert reachable_states(ComponentState.DISPOSED) \
            == {ComponentState.DISPOSED}

    def test_suspend_cycle(self):
        assert can_transition(ComponentState.ACTIVE,
                              ComponentState.SUSPENDED)
        assert can_transition(ComponentState.SUSPENDED,
                              ComponentState.ACTIVE)

    def test_disabled_must_be_enabled_before_activation(self):
        # DISABLED cannot jump straight to SATISFIED/ACTIVE.
        assert not can_transition(ComponentState.DISABLED,
                                  ComponentState.SATISFIED)
        assert not can_transition(ComponentState.DISABLED,
                                  ComponentState.ACTIVE)
        assert can_transition(ComponentState.DISABLED,
                              ComponentState.UNSATISFIED)

    def test_deactivation_goes_through_deactivating(self):
        assert not can_transition(ComponentState.ACTIVE,
                                  ComponentState.UNSATISFIED)
        assert can_transition(ComponentState.ACTIVE,
                              ComponentState.DEACTIVATING)
        assert can_transition(ComponentState.DEACTIVATING,
                              ComponentState.UNSATISFIED)

    def test_instantiated_states(self):
        assert ComponentState.ACTIVE in INSTANTIATED_STATES
        assert ComponentState.SUSPENDED in INSTANTIATED_STATES
        assert ComponentState.UNSATISFIED not in INSTANTIATED_STATES


class TestComponentGuards:
    def test_initial_state_installed(self, component):
        assert component.state is ComponentState.INSTALLED

    def test_transition_with_owner_token(self, component, token):
        component._transition(token, ComponentState.UNSATISFIED)
        assert component.state is ComponentState.UNSATISFIED

    def test_foreign_token_rejected(self, component):
        intruder = LifecycleToken(owner="attacker")
        with pytest.raises(NotManagedByDRCRError):
            component._transition(intruder, ComponentState.UNSATISFIED)

    def test_illegal_edge_rejected(self, component, token):
        with pytest.raises(LifecycleError):
            component._transition(token, ComponentState.ACTIVE)

    def test_reason_recorded(self, component, token):
        component._transition(token, ComponentState.UNSATISFIED,
                              "missing provider")
        assert component.status_reason == "missing provider"

    def test_views(self, component, token):
        assert component.name == "CAM000"
        assert component.enabled
        assert not component.is_active
        assert not component.is_instantiated
        component._transition(token, ComponentState.DISABLED)
        assert not component.enabled

    def test_snapshot_structure(self, component):
        snapshot = component.snapshot()
        assert snapshot["name"] == "CAM000"
        assert snapshot["state"] == "installed"
        assert "contract" in snapshot
        assert "properties" in snapshot

    def test_provides_requires_signatures(self, token):
        xml = make_descriptor_xml(
            "PROV00",
            outports=[("OUTP00", "RTAI.SHM", "Integer", 4)],
            inports=[("INP000", "RTAI.SHM", "Byte", 8)])
        descriptor = ComponentDescriptor.from_xml(xml)
        component = DRComComponent(descriptor, None, token)
        assert component.provides == [("OUTP00", "RTAI.SHM", "Integer",
                                       4)]
        assert component.requires == [("INP000", "RTAI.SHM", "Byte", 8)]
