"""Tests for port compatibility and real-time contracts."""

import pytest

from repro.core.contracts import RealTimeContract
from repro.core.errors import ContractError, PortError
from repro.core.ports import (
    PortBinding,
    PortDirection,
    PortInterface,
    PortSpec,
)
from repro.rtos.task import TaskType


def outport(name="DATA00", interface="RTAI.SHM", dtype="Integer",
            size=4):
    return PortSpec(name, PortDirection.OUT, interface, dtype, size)


def inport(name="DATA00", interface="RTAI.SHM", dtype="Integer", size=4):
    return PortSpec(name, PortDirection.IN, interface, dtype, size)


class TestPortSpec:
    def test_name_canonicalized(self):
        assert outport(name="data00").name == "DATA00"

    def test_seven_char_name_rejected(self):
        # "the ports are characterized by a six character name"
        with pytest.raises(PortError):
            outport(name="TOOLONG")

    def test_unknown_interface_rejected(self):
        with pytest.raises(PortError):
            outport(interface="CORBA.IIOP")

    def test_unknown_data_type_rejected(self):
        with pytest.raises(PortError):
            outport(dtype="Complex")

    def test_nonpositive_size_rejected(self):
        with pytest.raises(PortError):
            outport(size=0)

    def test_interface_parse(self):
        assert PortInterface.parse("RTAI.SHM") is PortInterface.RTAI_SHM
        assert PortInterface.parse("RTAI.Mailbox") \
            is PortInterface.RTAI_MAILBOX


class TestCompatibility:
    """Section 2.3: name + interface + type + size, opposite direction."""

    def test_matching_pair_compatible(self):
        assert inport().compatible_with(outport())
        assert outport().compatible_with(inport())

    def test_same_direction_incompatible(self):
        assert not inport().compatible_with(inport())
        assert not outport().compatible_with(outport())

    def test_name_mismatch(self):
        assert not inport(name="AAAA00").compatible_with(
            outport(name="BBBB00"))

    def test_interface_mismatch(self):
        assert not inport(interface="RTAI.SHM").compatible_with(
            outport(interface="RTAI.Mailbox"))

    def test_type_mismatch(self):
        assert not inport(dtype="Integer").compatible_with(
            outport(dtype="Byte"))

    def test_size_mismatch(self):
        assert not inport(size=4).compatible_with(outport(size=8))

    def test_non_port_incompatible(self):
        assert not inport().compatible_with("not a port")

    def test_equality_and_hash(self):
        assert inport() == inport()
        assert hash(inport()) == hash(inport())
        assert inport() != outport()

    def test_signature(self):
        assert outport().signature() == ("DATA00", "RTAI.SHM",
                                         "Integer", 4)


class TestPortBinding:
    def test_valid_binding(self):
        binding = PortBinding("DISP", inport(), "CALC", outport(),
                              kernel_object="DATA00")
        assert binding.requirer == "DISP"
        assert binding.provider == "CALC"
        assert binding.kernel_object == "DATA00"

    def test_swapped_directions_rejected(self):
        with pytest.raises(PortError):
            PortBinding("DISP", outport(), "CALC", inport())

    def test_incompatible_pair_rejected(self):
        with pytest.raises(PortError):
            PortBinding("DISP", inport(size=4), "CALC", outport(size=8))


class TestRealTimeContract:
    def test_periodic_contract_derives_period(self):
        contract = RealTimeContract("CAM", TaskType.PERIODIC,
                                    priority=2, cpu_usage=0.1,
                                    frequency_hz=100)
        assert contract.period_ns == 10_000_000
        assert contract.deadline_ns == 10_000_000
        assert contract.wcet_ns == 1_000_000
        assert contract.is_periodic

    def test_aperiodic_contract(self):
        contract = RealTimeContract("EVT", TaskType.APERIODIC,
                                    priority=3, cpu_usage=0.05)
        assert contract.period_ns is None
        assert contract.wcet_ns is None
        assert not contract.is_periodic

    def test_periodic_needs_frequency(self):
        with pytest.raises(ContractError):
            RealTimeContract("X", TaskType.PERIODIC, cpu_usage=0.1)

    def test_cpu_usage_must_be_fraction(self):
        with pytest.raises(ContractError):
            RealTimeContract("X", TaskType.APERIODIC, cpu_usage=2.0)
        with pytest.raises(ContractError):
            RealTimeContract("X", TaskType.APERIODIC, cpu_usage=-0.1)

    def test_negative_priority_rejected(self):
        with pytest.raises(ContractError):
            RealTimeContract("X", TaskType.APERIODIC, priority=-1)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ContractError):
            RealTimeContract("X", TaskType.APERIODIC, cpu=-1)

    def test_explicit_deadline(self):
        contract = RealTimeContract("X", TaskType.PERIODIC,
                                    cpu_usage=0.1, frequency_hz=100,
                                    deadline_ns=5_000_000)
        assert contract.deadline_ns == 5_000_000

    def test_bad_deadline_rejected(self):
        with pytest.raises(ContractError):
            RealTimeContract("X", TaskType.PERIODIC, cpu_usage=0.1,
                             frequency_hz=100, deadline_ns=0)

    def test_task_type_must_be_enum(self):
        with pytest.raises(ContractError):
            RealTimeContract("X", "periodic")

    def test_as_dict_and_equality(self):
        a = RealTimeContract("X", TaskType.PERIODIC, cpu_usage=0.1,
                             frequency_hz=100)
        b = RealTimeContract("X", TaskType.PERIODIC, cpu_usage=0.1,
                             frequency_hz=100)
        assert a == b
        assert hash(a) == hash(b)
        assert a.as_dict()["period_ns"] == 10_000_000

    def test_fractional_frequency(self):
        contract = RealTimeContract("X", TaskType.PERIODIC,
                                    cpu_usage=0.1, frequency_hz=0.5)
        assert contract.period_ns == 2_000_000_000


class TestConservativeWcet:
    """Regression: ``wcet_ns`` must round *up*.

    ``int(cpu_usage * period_ns)`` truncated toward zero, so
    admission and response-time analysis under-counted demand by up
    to 1 ns per task -- enough to admit a fleet whose true demand
    exceeds the CPU.
    """

    def _sporadic(self, name, mia_ns=999, cpu_usage=0.5):
        return RealTimeContract(name, TaskType.SPORADIC,
                                cpu_usage=cpu_usage,
                                min_interarrival_ns=mia_ns)

    def test_wcet_rounds_up(self):
        # 0.5 * 999 = 499.5: truncation said 499, ceil says 500.
        assert self._sporadic("A").wcet_ns == 500

    def test_exact_products_unchanged(self):
        contract = RealTimeContract("B", TaskType.PERIODIC,
                                    cpu_usage=0.1, frequency_hz=100)
        assert contract.wcet_ns == 1_000_000

    def test_taskspec_agrees_with_contract(self):
        from repro.analysis import TaskSpec
        contract = self._sporadic("C")
        assert TaskSpec.from_contract(contract).wcet_ns \
            == contract.wcet_ns

    def test_boundary_fleet_rejected_not_admitted(self):
        # Two half-CPU claims at MIA 999 ns: truncated WCETs sum to
        # 998/999 (< 1.0, admitted); ceil'd WCETs sum to 1000/999
        # (> 1.0) -- the lint admission analyzer must reject the pair.
        from repro.analysis import TaskSpec, total_utilization
        from repro.core.descriptor import ComponentDescriptor
        from repro.lint import Severity, lint_descriptors

        specs = [TaskSpec.from_contract(self._sporadic(name))
                 for name in ("BNDA00", "BNDB00")]
        truncated = sum(int(0.5 * 999) / 999 for _ in specs)
        assert truncated <= 1.0          # what the bug admitted
        assert total_utilization(specs) > 1.0   # the true demand

        fleet = [ComponentDescriptor(
            name=name, implementation="impl.Class",
            task_type=TaskType.SPORADIC, cpu_usage=0.5,
            min_interarrival_ns=999, priority=index)
            for index, name in enumerate(("BNDA00", "BNDB00"))]
        codes = {d.code for d in lint_descriptors(fleet)
                 if d.severity is Severity.ERROR}
        assert "DRT301" in codes
