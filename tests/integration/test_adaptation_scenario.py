"""C5 (EXPERIMENTS.md): the load-spike experiment, both arms.

The acceptance criteria of the adaptation engine live here: under an
identical flash-crowd the rule-driven deployment holds its windowed
deadline-miss rate essentially flat while the static deployment
degrades by at least 5x, every action is routed through public APIs
(no private-attribute access anywhere in ``repro.adapt``), and the
``adapt.*`` counters actually move.
"""

import os
import re

import pytest

from repro.adapt.scenario import (
    SPIKE_PRIORITY_OFFSET,
    default_rules,
    run_comparison,
)

#: Miss-rate floor used by the flatness criterion: both arms start at
#: (or near) zero misses, and ratios against zero are meaningless.
FLOOR = 0.02


@pytest.fixture(scope="module")
def comparison():
    """Both arms of C5 on identical seeds (run once per module)."""
    return run_comparison(seconds=2.0)


def test_static_arm_degrades_after_spike(comparison):
    static = comparison["static"]
    pre = static["pre"]["miss_rate"]
    post = static["post"]["miss_rate"]
    assert post >= 5 * max(pre, FLOOR)
    # nothing shed anything: the whole fleet is still deployed
    assert len(static["active"]) == 10


def test_rule_arm_holds_miss_rate_flat(comparison):
    adaptive = comparison["rules"]
    pre = adaptive["pre"]["miss_rate"]
    post = adaptive["post"]["miss_rate"]
    assert post < 2 * max(pre, FLOOR)
    # and it is dramatically better than the static arm
    static_post = comparison["static"]["post"]["miss_rate"]
    assert static_post >= 5 * max(post, FLOOR)


def test_rules_actually_fired(comparison):
    adapt = comparison["rules"]["adapt"]
    assert adapt is not None
    assert adapt["rules_fired_total"] > 0
    assert adapt["counters"]["actions_executed_total"] > 0
    assert adapt["counters"]["action_errors_total"] == 0
    assert adapt["history"]


def test_shedding_ate_the_spike_first(comparison):
    adaptive = comparison["rules"]
    # the protected (most important) baseline component kept running
    assert adaptive["protected"]["deadline_misses"] == 0
    # every shed component is a spike component, not a baseline one
    shed = [name for name, state in adaptive["states"].items()
            if state != "active"]
    assert shed
    assert all(name.startswith("SPC") for name in shed)
    assert all(name.startswith("BAC") for name in adaptive["active"])


def test_spike_components_marked_less_important():
    assert SPIKE_PRIORITY_OFFSET >= 100
    rules = default_rules()
    assert rules
    assert all(rule.actions for rule in rules)


def test_no_private_attribute_access_in_adapt_package():
    """Every action must go through public APIs: no ``obj._name``
    access in repro.adapt except on ``self``/``cls``."""
    package = os.path.join(os.path.dirname(__file__), os.pardir,
                           os.pardir, "src", "repro", "adapt")
    pattern = re.compile(r"(\w+)\._")
    offenders = []
    for name in sorted(os.listdir(package)):
        if not name.endswith(".py"):
            continue
        with open(os.path.join(package, name), encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for owner in pattern.findall(line):
                    if owner not in ("self", "cls"):
                        offenders.append("%s:%d: %s._"
                                         % (name, lineno, owner))
    assert not offenders, offenders
