"""Failure injection: a raising implementation must be quarantined
without taking the platform (or any other component) down."""

import pytest

from repro.core import ComponentEventType, ComponentState
from repro.hybrid import RTImplementation, make_container_factory
from repro.hybrid.implementation import ImplementationRegistry
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.rtos.requests import Compute
from repro.rtos.task import TaskState, TaskType
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml


class BlowsUpAtJobFive(RTImplementation):
    def execute(self, ctx):
        if ctx.job_index == 4:
            raise RuntimeError("sensor went away")


@pytest.fixture
def faulty_platform():
    registry = ImplementationRegistry()
    registry.register("faulty.Impl", BlowsUpAtJobFive)
    platform = build_platform(
        seed=13,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        container_factory=make_container_factory(registry))
    platform.start_timer(1 * MSEC)
    return platform


class TestKernelFaultQuarantine:
    def test_raising_body_faults_task(self, sim, kernel):
        def body(task):
            yield Compute(100_000)
            raise ValueError("boom")

        task = kernel.create_task("BOOM00", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        assert task.state is TaskState.FAULTED
        assert isinstance(task.fault, ValueError)

    def test_fault_does_not_stop_other_tasks(self, sim, kernel):
        from repro.rtos.requests import WaitPeriod

        def bad_body(task):
            yield Compute(100_000)
            raise ValueError("boom")

        def good_body(task):
            while True:
                yield WaitPeriod()
                yield Compute(50_000)

        kernel.start_timer(1 * MSEC)
        bad = kernel.create_task("BOOM00", bad_body, 1,
                                 task_type=TaskType.APERIODIC)
        good = kernel.create_task("GOOD00", good_body, 2,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=1 * MSEC)
        kernel.start_task(bad)
        kernel.start_task(good)
        sim.run_for(100 * MSEC)
        assert bad.state is TaskState.FAULTED
        assert good.stats.completions >= 98
        assert good.stats.deadline_misses == 0

    def test_faulted_periodic_stops_releasing(self, sim, kernel):
        from repro.rtos.requests import WaitPeriod

        def body(task):
            yield WaitPeriod()
            raise ValueError("boom")

        kernel.start_timer(1 * MSEC)
        task = kernel.create_task("BOOM00", body, 1,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=1 * MSEC)
        kernel.start_task(task)
        sim.run_for(50 * MSEC)
        assert task.state is TaskState.FAULTED
        assert task.stats.activations <= 3

    def test_fault_callback_invoked(self, sim, kernel):
        faults = []
        kernel.on_task_fault = lambda task, error: faults.append(
            (task.name, str(error)))

        def body(task):
            yield Compute(1000)
            raise RuntimeError("dead")

        task = kernel.create_task("BOOM00", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        assert faults == [("BOOM00", "dead")]

    def test_fault_while_blocked_peer_unaffected(self, sim, kernel):
        from repro.rtos.requests import Receive

        box = kernel.mailbox("MBX000")

        def crasher(task):
            value = yield Receive(box, blocking=True)
            raise RuntimeError("bad message %r" % value)

        task = kernel.create_task("BOOM00", crasher, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        box.send_external("poison")
        sim.run_for(1 * MSEC)
        assert task.state is TaskState.FAULTED
        # The mailbox stays usable.
        assert box.send_external("next") is True


class TestDRCRFaultQuarantine:
    def _deploy_faulty(self, platform):
        xml = make_descriptor_xml(
            "FLTY00", cpuusage=0.05, frequency=1000, priority=2,
            bincode="faulty.Impl",
            outports=[("FDATA0", "RTAI.SHM", "Integer", 2)])
        return deploy(platform, xml)

    def test_component_disabled_on_fault(self, faulty_platform):
        self._deploy_faulty(faulty_platform)
        assert faulty_platform.drcr.component_state("FLTY00") \
            is ComponentState.ACTIVE
        faulty_platform.run_for(100 * MSEC)
        component = faulty_platform.drcr.component("FLTY00")
        assert component.state is ComponentState.DISABLED
        assert "implementation fault" in component.status_reason
        assert not faulty_platform.kernel.exists("FLTY00")

    def test_dependents_cascade_on_fault(self, faulty_platform):
        self._deploy_faulty(faulty_platform)
        consumer = make_descriptor_xml(
            "CONS00", cpuusage=0.01, frequency=250, priority=3,
            inports=[("FDATA0", "RTAI.SHM", "Integer", 2)])
        deploy(faulty_platform, consumer)
        faulty_platform.run_for(100 * MSEC)
        assert faulty_platform.drcr.component_state("CONS00") \
            is ComponentState.UNSATISFIED

    def test_fault_frees_admission_budget(self, faulty_platform):
        from repro.core import UtilizationBoundPolicy
        faulty_platform.drcr.set_internal_policy(
            UtilizationBoundPolicy(cap=0.08))
        self._deploy_faulty(faulty_platform)  # 0.05 of the 0.08 budget
        waiter = make_descriptor_xml("WAIT00", cpuusage=0.05,
                                     frequency=500, priority=4)
        deploy(faulty_platform, waiter)
        assert faulty_platform.drcr.component_state("WAIT00") \
            is ComponentState.UNSATISFIED
        faulty_platform.run_for(100 * MSEC)  # FLTY00 faults, frees 0.05
        assert faulty_platform.drcr.component_state("WAIT00") \
            is ComponentState.ACTIVE

    def test_enable_after_fault_reactivates(self, faulty_platform):
        self._deploy_faulty(faulty_platform)
        faulty_platform.run_for(100 * MSEC)
        faulty_platform.drcr.enable_component("FLTY00")
        assert faulty_platform.drcr.component_state("FLTY00") \
            is ComponentState.ACTIVE
        # It will fault again (fresh instance, job 5), and be
        # re-quarantined -- no crash loop in the runtime itself.
        faulty_platform.run_for(100 * MSEC)
        assert faulty_platform.drcr.component_state("FLTY00") \
            is ComponentState.DISABLED

    def test_fault_event_logged(self, faulty_platform):
        self._deploy_faulty(faulty_platform)
        faulty_platform.run_for(100 * MSEC)
        disabled = faulty_platform.drcr.events.of_type(
            ComponentEventType.DISABLED)
        assert any("implementation fault" in e.reason for e in disabled)
