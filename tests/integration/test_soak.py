"""Soak test: everything on at once, for 30 simulated seconds.

One platform runs the full feature surface simultaneously -- a port
pipeline, a sporadic handler, a FIFO exporter, deployment churn, Linux
stress, a polling adaptation manager, and a lying component that budget
enforcement must catch -- and the global invariants must hold at every
checkpoint and at the end.
"""

from repro.core import (
    AdaptationManager,
    ComponentState,
    UtilizationBoundPolicy,
)
from repro.core.adaptation import BudgetOveruseRule
from repro.core.lifecycle import INSTANTIATED_STATES
from repro.core.snapshot import export_state, restore_state
from repro.hybrid import RTImplementation, make_container_factory
from repro.hybrid.implementation import ImplementationRegistry
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.rtos.load import apply_stress
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml

SOAK_SECONDS = 30


class Greedy(RTImplementation):
    def compute_ns(self, ctx):
        return 4 * ctx.contract.wcet_ns


class FifoExporter(RTImplementation):
    def execute(self, ctx):
        ctx.write_outport("SOAKFF", ctx.job_index)


def build_soak_platform():
    registry = ImplementationRegistry()
    registry.register("soak.Greedy", Greedy)
    registry.register("soak.FifoExporter", FifoExporter)
    platform = build_platform(
        seed=2026,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=0.9),
        container_factory=make_container_factory(registry))
    platform.start_timer(1 * MSEC)
    return platform


def check_invariants(platform):
    registry = platform.drcr.registry
    for component in registry.in_state(ComponentState.ACTIVE):
        for provider_name in component.bound_providers():
            provider = registry.maybe_get(provider_name)
            assert provider is not None
            assert provider.state in (ComponentState.ACTIVE,
                                      ComponentState.SUSPENDED)
    assert registry.declared_utilization(0) <= 0.9 + 1e-9
    for component in registry.all():
        assert platform.kernel.exists(
            component.descriptor.task_name) \
            == (component.state in INSTANTIATED_STATES)


def test_thirty_second_soak():
    platform = build_soak_platform()

    # -- the permanent population -------------------------------------
    deploy(platform, make_descriptor_xml(
        "BASE00", cpuusage=0.2, frequency=1000, priority=1,
        outports=[("BASEP0", "RTAI.SHM", "Integer", 4)]))
    deploy(platform, make_descriptor_xml(
        "SINK00", cpuusage=0.05, frequency=250, priority=2,
        inports=[("BASEP0", "RTAI.SHM", "Integer", 4)]))
    deploy(platform, make_descriptor_xml(
        "EXPRT0", cpuusage=0.02, frequency=100, priority=3,
        bincode="soak.FifoExporter",
        outports=[("SOAKFF", "RTAI.FIFO", "Integer", 4096)]))
    sporadic_xml = """<?xml version="1.0"?>
    <drt:component name="EVENT0" type="sporadic" cpuusage="0.05">
      <implementation bincode="soak.Event"/>
      <sporadictask mininterarrival_ns="100000000" priority="6"/>
    </drt:component>"""
    platform.install_and_start(
        {"Bundle-SymbolicName": "soak.event",
         "RT-Component": "OSGI-INF/e.xml"},
        resources={"OSGI-INF/e.xml": sporadic_xml})
    # The liar that budget enforcement must eventually suspend.
    deploy(platform, make_descriptor_xml(
        "LIAR00", cpuusage=0.05, frequency=500, priority=4,
        bincode="soak.Greedy"))

    fifo = platform.kernel.lookup("SOAKFF")
    exported = []
    fifo.set_user_handler(exported.extend)

    manager = AdaptationManager(
        platform.framework,
        rules=[BudgetOveruseRule(tolerance=0.5)])
    manager.start_periodic_polling(platform.sim, 250 * MSEC)

    apply_stress(platform.kernel)

    # -- churn + soak ---------------------------------------------------
    event = platform.drcr.component("EVENT0")
    for second in range(SOAK_SECONDS):
        churn_xml = make_descriptor_xml(
            "CHRN%02d" % (second % 4), cpuusage=0.15,
            frequency=500, priority=10 + second % 4)
        bundle = platform.install_and_start(
            {"Bundle-SymbolicName": "soak.churn%02d" % second,
             "RT-Component": "OSGI-INF/c.xml"},
            resources={"OSGI-INF/c.xml": churn_xml})
        if event.is_active:
            event.container.release()
        platform.run_for(1 * SEC)
        check_invariants(platform)
        bundle.uninstall()
        check_invariants(platform)

    # -- end-state assertions --------------------------------------------
    base_task = platform.kernel.lookup("BASE00")
    sink_task = platform.kernel.lookup("SINK00")
    assert base_task.stats.completions \
        >= SOAK_SECONDS * 1000 - SOAK_SECONDS
    assert base_task.stats.deadline_misses == 0
    assert sink_task.stats.deadline_misses == 0

    # Budget enforcement caught the liar.
    assert platform.drcr.component_state("LIAR00") \
        is ComponentState.SUSPENDED
    assert any("budget" in rule_name for rule_name, _ in manager.log)

    # The FIFO exporter delivered to user space throughout.
    assert len(exported) > SOAK_SECONDS * 90

    # Sporadic handler was exercised and throttle-protected.
    event_task = platform.kernel.lookup("EVENT0")
    assert event_task.stats.activations >= 2

    # The event log is coherent: every activation paired with a
    # satisfied immediately before it.
    for name in ("BASE00", "SINK00", "EXPRT0"):
        history = [e.event_type.value for e in
                   platform.drcr.events.for_component(name)]
        for index, kind in enumerate(history):
            if kind == "activated":
                assert history[index - 1] == "satisfied"

    # Warm-restore the end state onto a fresh platform and verify it
    # comes back alive.
    state = export_state(platform.drcr)
    fresh = build_soak_platform()
    report = restore_state(fresh.drcr, state)
    assert "BASE00" in report["restored"]
    fresh.run_for(1 * SEC)
    assert fresh.kernel.lookup("BASE00").stats.completions >= 990
    manager.close()
