"""Cluster failover end to end: the issue's acceptance scenario.

A three-node federation runs a wired application plus standalone
components with drifted live properties.  One node is then killed
through the ``node_crash`` fault injector -- not by calling into the
cluster directly -- and the claims under test are:

* every component from the dead node is re-admitted on a survivor,
  ACTIVE, with its live property drift intact (the heartbeat-carried
  snapshot is the replication channel);
* components already admitted on the survivors never leave ACTIVE --
  failover is additive, the §3.3 batch round on each target must not
  disturb the running population;
* a migration that races the crash of its target still places the
  component exactly once.

Also pins the C3 experiment's premise: failover time is governed by
the heartbeat interval (detection dominates; redeploy is one batch
round).
"""

from repro.cluster import Cluster
from repro.core import ComponentState
from repro.core.events import ComponentEventType
from repro.faults import FaultEngine, FaultKind, FaultPlan, FaultSpec
from repro.sim.engine import MSEC, USEC

from conftest import make_descriptor_xml

PORT = ("WIRE00", "RTAI.SHM", "Integer", 2)

DISRUPTIVE = (
    ComponentEventType.DEACTIVATED,
    ComponentEventType.SUSPENDED,
    ComponentEventType.UNSATISFIED,
    ComponentEventType.DISPOSED,
)


def wired_app_xmls():
    return [
        make_descriptor_xml("PROV00", cpuusage=0.2, outports=[PORT]),
        make_descriptor_xml("CONS00", cpuusage=0.1, frequency=250,
                            priority=3, inports=[PORT],
                            properties=[("gain", "Integer", "1")]),
    ]


def test_node_crash_failover_end_to_end():
    cluster = Cluster(("node0", "node1", "node2"), seed=42,
                      heartbeat_interval_ns=10 * MSEC, miss_limit=3)
    try:
        victim = cluster.deploy_application("pipe", wired_app_xmls())
        standalone_home = cluster.deploy(make_descriptor_xml(
            "SOLO00", cpuusage=0.1, priority=4,
            properties=[("level", "Integer", "0")]), node=victim)
        assert standalone_home == victim
        survivors = [n for n in cluster.nodes if n != victim]
        bystanders = []
        for i, home in enumerate(survivors):
            name = "BYST0%d" % i
            cluster.deploy(make_descriptor_xml(
                name, cpuusage=0.1, priority=5 + i), node=home)
            bystanders.append((name, home))
        cluster.run_for(30 * MSEC)

        # Drift live properties on the victim's components, then give
        # the command path and a heartbeat time to carry the values.
        cluster.manage("CONS00", "set_property", "gain", 42)
        cluster.manage("SOLO00", "set_property", "level", 7)
        cluster.run_for(40 * MSEC)

        # Kill the node through the fault subsystem, not the cluster.
        plan = FaultPlan("kill-%s" % victim, seed=3, faults=[
            FaultSpec(FaultKind.NODE_CRASH, victim,
                      at_ns=cluster.sim.now + 5 * MSEC)])
        FaultEngine(cluster.node(survivors[0]), plan,
                    cluster=cluster).arm()
        crash_at = cluster.sim.now + 5 * MSEC
        cluster.run_for(200 * MSEC)

        assert cluster.membership.is_dead(victim)
        assert len(cluster.failovers) == 1
        moved = cluster.failovers[0]["moved"]
        assert sorted(moved) == ["CONS00", "PROV00", "SOLO00"]

        # Every dead-node component is ACTIVE on a survivor, live
        # property drift intact.
        for name in moved:
            home = cluster.deployments[name]
            assert home in survivors
            component = cluster.node(home).drcr.component(name)
            assert component.state is ComponentState.ACTIVE, name
        cons_home = cluster.node(cluster.deployments["CONS00"])
        assert cons_home.drcr.component("CONS00") \
            .container.get_property("gain") == 42
        solo_home = cluster.node(cluster.deployments["SOLO00"])
        assert solo_home.drcr.component("SOLO00") \
            .container.get_property("level") == 7
        # The wired pair stayed co-located and grouped.
        assert cluster.deployments["PROV00"] \
            == cluster.deployments["CONS00"]
        assert cons_home.drcr.applications()["pipe"] == [
            "PROV00", "CONS00"]

        # Bystanders never left ACTIVE: no disruptive lifecycle event
        # for them after the crash instant.
        for name, home in bystanders:
            drcr = cluster.node(home).drcr
            assert drcr.component_state(name) is ComponentState.ACTIVE
            disruptions = [event for event in
                           drcr.events.for_component(name)
                           if event.time >= crash_at
                           and event.event_type in DISRUPTIVE]
            assert disruptions == [], disruptions
    finally:
        cluster.shutdown()


def test_migration_races_node_crash():
    """Chaos: the migration target dies mid-protocol.  The coordinator
    must re-route from its ledger and the component must end up on
    exactly one node, state intact."""
    cluster = Cluster(("node0", "node1", "node2"), seed=77,
                      heartbeat_interval_ns=10 * MSEC,
                      migration_timeout_ns=5 * MSEC)
    try:
        cluster.deploy(make_descriptor_xml(
            "TUNED0", cpuusage=0.1,
            properties=[("gain", "Integer", "1")]), node="node0")
        cluster.run_for(30 * MSEC)
        cluster.manage("TUNED0", "set_property", "gain", 99)
        cluster.run_for(40 * MSEC)

        # Crash the target 700us after the migration starts: after
        # migrate_out is in flight, before the ack can return.
        plan = FaultPlan("kill-dst", seed=5, faults=[
            FaultSpec(FaultKind.NODE_CRASH, "node1",
                      at_ns=cluster.sim.now + 700 * USEC)])
        FaultEngine(cluster.node("node0"), plan,
                    cluster=cluster).arm()
        migration_id = cluster.migrate("TUNED0", dst="node1")
        cluster.run_for(300 * MSEC)

        status = cluster.migration(migration_id)
        assert status["done"]
        holders = [node.name for node in cluster.nodes.values()
                   if node.alive and "TUNED0" in node.drcr.registry]
        assert len(holders) == 1, holders
        assert holders[0] != "node1"
        component = cluster.node(holders[0]).drcr.component("TUNED0")
        assert component.state is ComponentState.ACTIVE
        assert component.container.get_property("gain") == 99
        assert cluster.deployments["TUNED0"] == holders[0]
    finally:
        cluster.shutdown()


def test_failover_time_tracks_heartbeat_interval():
    """EXPERIMENTS C3: detection dominates failover, so failover time
    scales with the heartbeat interval (deadline = miss_limit *
    interval)."""
    times = {}
    for interval_ms in (5, 20):
        cluster = Cluster(("node0", "node1", "node2"), seed=11,
                          heartbeat_interval_ns=interval_ms * MSEC,
                          miss_limit=3)
        try:
            cluster.deploy(make_descriptor_xml(
                "COMP00", cpuusage=0.1), node="node0")
            cluster.run_for(10 * interval_ms * MSEC)
            crash_at = cluster.sim.now
            cluster.crash_node("node0")
            cluster.run_for(20 * interval_ms * MSEC)
            assert len(cluster.failovers) == 1
            times[interval_ms] = \
                cluster.failovers[0]["at_ns"] - crash_at
            deadline = cluster.membership.deadline_ns
            assert times[interval_ms] >= deadline
            assert times[interval_ms] \
                <= deadline + 3 * interval_ms * MSEC
        finally:
            cluster.shutdown()
    assert times[20] > times[5]
