"""PlanGuard end to end: static veto agrees with runtime stranding.

The EXPERIMENTS C2 extension at fleet scope.  One two-node fleet is
built twice with identical deployments:

* **static arm** -- the :class:`~repro.cluster.federation.PlanGuard`
  is armed and asked to admit a wired application that would push the
  fleet past its N-1 failover capacity; the guard must veto it with a
  *new* DRT602 finding (the pre-existing fleet lints clean, so the
  differential blame is exact);
* **runtime arm** -- no guard: the same application deploys, the node
  is crashed, and failover strands exactly the component the static
  finding named.

Static analysis predicting the runtime outcome is the family's whole
claim; this test pins the agreement.
"""

import pytest

from repro.cluster import Cluster
from repro.cluster.federation import ClusterError
from repro.sim.engine import MSEC

from conftest import make_descriptor_xml

PORT = ("WPT000", "RTAI.SHM", "Integer", 2)


def base_fleet(**kwargs):
    """Two one-CPU nodes carrying one 0.3 component each."""
    cluster = Cluster(("node0", "node1"), seed=11,
                      heartbeat_interval_ns=10 * MSEC, **kwargs)
    cluster.deploy(make_descriptor_xml("BAS000", cpuusage=0.3,
                                       priority=5), node="node0")
    cluster.deploy(make_descriptor_xml("BAS001", cpuusage=0.3,
                                       priority=5), node="node1")
    return cluster


def wired_app_xmls():
    """A 0.5-claim application: fits node0 live (0.8 total), but
    afterwards neither node's loss can be absorbed by the other."""
    return [
        make_descriptor_xml("WIR000", cpuusage=0.25, frequency=10,
                            priority=20, outports=[PORT]),
        make_descriptor_xml("WIR001", cpuusage=0.25, frequency=10,
                            priority=21, inports=[PORT]),
    ]


def test_plan_guard_vetoes_what_failover_would_strand():
    # --- static arm: the guard predicts the stranding -------------
    cluster = base_fleet()
    try:
        cluster.run_for(30 * MSEC)
        guard = cluster.install_plan_guard()

        findings = guard.check_deploy(wired_app_xmls(), "node0",
                                      application="wapp",
                                      members=["WIR000", "WIR001"])
        assert findings, "the guard must flag the capacity loss"
        assert {f.code for f in findings} == {"DRT602"}
        static_stranded = {f.component for f in findings}
        # Losing node0 strands BAS000 (the 0.5 group re-homes first);
        # losing node1 strands BAS001 against the 0.8-loaded node0.
        assert static_stranded == {"BAS000", "BAS001"}

        with pytest.raises(ClusterError) as excinfo:
            cluster.deploy_application("wapp", wired_app_xmls(),
                                       node="node0")
        assert "DRT602" in str(excinfo.value)
        assert "WIR000" not in cluster.deployments

        # Two checks and two rejections: the direct check_deploy
        # above plus the vetoed deploy_application.
        registry = cluster.sim.telemetry.registry("lint")
        assert registry.get("plan_checks_total").value == 2
        assert registry.get("plan_rejections_total").value == 2
        assert registry.get("plan_code.DRT602").value >= 2
    finally:
        cluster.shutdown()

    # --- runtime arm: no guard, the crash proves it ---------------
    cluster = base_fleet()
    try:
        home = cluster.deploy_application("wapp", wired_app_xmls(),
                                          node="node0")
        assert home == "node0"
        cluster.run_for(50 * MSEC)

        cluster.crash_node("node0")
        cluster.run_for(500 * MSEC)

        report = cluster.report()
        assert report["dead"] == ["node0"]
        failover = report["failovers"][-1]
        assert failover["node"] == "node0"
        # The application group re-homed whole; the singleton the
        # static finding named is exactly what got stranded.
        moved = set(failover["moved"])
        assert {"WIR000", "WIR001"} <= moved
        assert failover["unplaced"] == ["BAS000"]
        assert "BAS000" in static_stranded
    finally:
        cluster.shutdown()


def test_plan_guard_never_blocks_failover():
    cluster = base_fleet()
    try:
        cluster.run_for(30 * MSEC)
        cluster.install_plan_guard()
        cluster.crash_node("node1")
        cluster.run_for(500 * MSEC)

        # Failover completed despite the armed guard; the advisory
        # post-failover lint was recorded.
        report = cluster.report()
        assert report["dead"] == ["node1"]
        assert cluster.deployments["BAS001"] == "node0"
        registry = cluster.sim.telemetry.registry("lint")
        assert registry.get("plan_failover_checks_total").value == 1
    finally:
        cluster.shutdown()


def test_plan_guard_ignores_preexisting_debt():
    # A fleet that already lints DRT602 (0.7 + 0.7 on one-CPU nodes)
    # must still accept an unrelated small deployment: differential
    # blame, not absolute cleanliness.
    cluster = Cluster(("node0", "node1"), seed=11,
                      heartbeat_interval_ns=10 * MSEC)
    try:
        cluster.deploy(make_descriptor_xml("BIG000", cpuusage=0.7,
                                           priority=5), node="node0")
        cluster.deploy(make_descriptor_xml("BIG001", cpuusage=0.7,
                                           priority=5), node="node1")
        cluster.run_for(30 * MSEC)
        cluster.install_plan_guard()
        home = cluster.deploy(make_descriptor_xml(
            "TIN000", cpuusage=0.05, priority=9), node="node0")
        assert home == "node0"
        registry = cluster.sim.telemetry.registry("lint")
        assert registry.get("plan_rejections_total").value == 0
    finally:
        cluster.shutdown()
