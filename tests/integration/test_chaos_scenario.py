"""The paper's section-4.3 adaptation scenario as a chaos experiment.

A three-stage pipeline (calculation -> filter -> display) is attacked
twice through a fixed :class:`FaultPlan`: the filter's task is crashed
at 200 ms, and at 500 ms its jobs overrun 1000x until the watchdog
evicts it.  Both times the DRCR quarantines the filter, cascades its
dependent, re-admits after the cool-down -- and every component that
stays admitted keeps its contract: **zero deadline misses platform
wide**.  This is the CI chaos smoke scenario (see EXPERIMENTS.md and
docs/FAULT_INJECTION.md).
"""

from repro.core import ComponentState
from repro.core.policies import UtilizationBoundPolicy
from repro.faults import FaultEngine, FaultKind, FaultPlan, FaultSpec
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC, SEC, USEC

from conftest import deploy, make_descriptor_xml


def chaos_plan():
    return FaultPlan(
        "chaos-4.3", seed=7,
        watchdog={"limit_ns": 300 * USEC,
                  "check_period_ns": 100 * USEC,
                  "policy": "fault"},
        quarantine={"cooldown_ns": 100 * MSEC, "max_failures": 3},
        faults=[
            FaultSpec(FaultKind.CRASH, "FILT00", at_ns=200 * MSEC),
            FaultSpec(FaultKind.OVERRUN, "FILT00", at_ns=500 * MSEC,
                      duration_ns=10 * MSEC, factor=1000.0),
        ])


def run_chaos():
    platform = build_platform(
        seed=2008,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=1.0))
    platform.start_timer(1 * MSEC)
    engine = FaultEngine(platform, chaos_plan()).arm()
    # The filter runs at the top priority: when its jobs overrun, only
    # the watchdog can break the lockout (the RTAI scenario).
    deploy(platform, make_descriptor_xml(
        "CALC00", cpuusage=0.03, frequency=1000, priority=2,
        outports=[("LATDAT", "RTAI.SHM", "Integer", 4)]))
    deploy(platform, make_descriptor_xml(
        "FILT00", cpuusage=0.02, frequency=500, priority=1,
        inports=[("LATDAT", "RTAI.SHM", "Integer", 4)],
        outports=[("FILTD0", "RTAI.SHM", "Integer", 4)]))
    deploy(platform, make_descriptor_xml(
        "DISP00", cpuusage=0.01, frequency=250, priority=3,
        inports=[("FILTD0", "RTAI.SHM", "Integer", 4)]))
    platform.run_for(1 * SEC)
    return platform, engine


def test_crashing_filter_is_quarantined_and_readmitted():
    platform, engine = run_chaos()
    # Both planned faults landed, at their planned instants.
    injected = [(time_ns, kind) for time_ns, kind, _, _
                in engine.injections]
    assert injected == [(200 * MSEC, "crash"),
                        (500 * MSEC, "overrun")]
    assert len(platform.sim.trace.by_category("fault_inject")) == 2
    # The watchdog broke the overrun lockout.
    assert engine.watchdog.interventions
    # Two quarantine cycles, both re-admitted (2 faults < 3 allowed).
    records = platform.sim.trace.by_category("quarantine")
    assert [r.fields["permanent"] for r in records] == [False, False]
    assert len(platform.sim.trace.by_category("quarantine_release")) \
        == 2
    assert platform.drcr.recovery_policy.failures["FILT00"] == 2
    # After the second cool-down the whole pipeline is back.
    for name in ("CALC00", "FILT00", "DISP00"):
        assert platform.drcr.component_state(name) \
            is ComponentState.ACTIVE


def test_admitted_components_keep_their_contracts():
    platform, _ = run_chaos()
    # The paper's adaptivity claim, measured: re-resolution preserved
    # every surviving contract -- not one deadline missed anywhere,
    # through a crash, a 1000x overrun, eviction and two re-admissions.
    flat = platform.telemetry.aggregate()
    assert flat["rtos.deadline_misses_total"].value == 0
    assert flat["rtos.watchdog_evictions_total"].value >= 1
    # The untouched provider ran essentially the whole second.
    calc = platform.kernel.lookup("CALC00")
    assert calc.stats.deadline_misses == 0
    assert calc.stats.completions >= 950
    # The cascade hit only the filter's dependent, and only while the
    # filter was down: DISP00 was re-resolved both times.
    history = [e.event_type.value for e in
               platform.drcr.events.for_component("DISP00")]
    assert history.count("activated") == 3


def test_chaos_run_is_deterministic():
    first_platform, first = run_chaos()
    second_platform, second = run_chaos()
    assert first.injections == second.injections
    assert first_platform.telemetry.aggregate()[
        "rtos.dispatches_total"].value \
        == second_platform.telemetry.aggregate()[
            "rtos.dispatches_total"].value
