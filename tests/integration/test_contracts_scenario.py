"""C6 (EXPERIMENTS.md): stochastic contracts under bursty load.

The acceptance criteria of the contract monitor live here: under an
identical post-onset burst the point-estimate deployment degrades and
never sheds anything (admission had no grounds to refuse, and nothing
at runtime enforces a distribution), while the monitored deployment
quarantines exactly the two planted components within its patience
window and returns the fleet's tail miss rate to (essentially) zero.
"""

import pytest

from repro.monitor.scenario import run_comparison
from repro.workloads import generate_bursty_fleet

#: Miss-rate floor: ratios against a zero baseline are meaningless.
FLOOR = 0.005


@pytest.fixture(scope="module")
def comparison():
    """Both arms of C6 on identical seeds (run once per module)."""
    return run_comparison(seconds=2.0)


def test_both_arms_admit_and_run_clean_before_onset(comparison):
    # Every descriptor is lint-clean and the point estimates fit, so
    # both arms deploy the full fleet and miss nothing pre-burst.
    for arm in ("static", "stochastic"):
        report = comparison[arm]
        assert report["pre"]["releases"] > 0
        assert report["pre"]["miss_rate"] <= FLOOR


def test_static_arm_degrades_and_sheds_nothing(comparison):
    static = comparison["static"]
    assert static["quarantined"] == []
    assert static["monitor"] is None
    # The burst never breaks a point estimate the runtime enforces, so
    # the degradation persists all the way into the tail window.
    assert static["post"]["miss_rate"] >= 0.10
    assert static["tail"]["miss_rate"] >= 0.10


def test_monitor_quarantines_exactly_the_planted_pair(comparison):
    stochastic = comparison["stochastic"]
    planted = sorted(stochastic["planted"].values())
    assert stochastic["quarantined"] == planted
    # the honest base fleet is untouched
    for name, state in stochastic["states"].items():
        if name not in planted:
            assert state == "active", (name, state)


def test_monitored_arm_recovers_in_the_tail(comparison):
    stochastic = comparison["stochastic"]
    static_tail = comparison["static"]["tail"]["miss_rate"]
    # After quarantine the tail window is clean -- under 1% of the
    # static arm's tail, and essentially back at the pre-burst level.
    assert stochastic["tail"]["miss_rate"] < 0.01 * static_tail
    assert stochastic["tail"]["miss_rate"] <= FLOOR


def test_monitor_findings_are_the_planted_violations(comparison):
    monitor = comparison["stochastic"]["monitor"]
    planted = set(comparison["stochastic"]["planted"].values())
    assert monitor["violations_total"] == 2
    assert monitor["quarantines_total"] == 2
    assert monitor["checks_total"] > 0
    by_component = {v["component"]: v for v in monitor["violations"]}
    assert set(by_component) == planted
    burst_at_ns = comparison["stochastic"]["burst_at_ns"]
    for violation in monitor["violations"]:
        # no false positives before the onset, and every rejection is
        # decisive at the declared tolerance
        assert violation["time_ns"] > burst_at_ns
        assert violation["p_value"] < 0.01
    # the periodic component lies about execution time, the sporadic
    # one about its arrival process
    bursty = comparison["stochastic"]["planted"]["bursty"]
    sporadic = comparison["stochastic"]["planted"]["sporadic"]
    assert by_component[bursty]["clause"] == "exectime"
    assert by_component[sporadic]["clause"] == "interarrival"


def test_fleet_is_lint_clean_by_construction():
    # Admission has no static grounds to refuse the C6 fleet: no
    # diagnostics at all, across every analyzer family.
    from repro.lint.engine import lint_descriptors
    from repro.sim.rng import RandomStreams
    descriptors, _ = generate_bursty_fleet(RandomStreams(7), "c6")
    assert lint_descriptors(descriptors) == []
