"""Table-1 shape stability across seeds.

The benchmark reproduces Table 1 with one seed; this test checks that
the *shape* claims hold across several independent seeds (shorter
windows, looser bounds), i.e. the calibration is not a single-seed
coincidence.
"""

import pytest

from repro.platform import build_platform
from repro.rtos.load import apply_stress
from repro.sim.engine import MSEC, SEC

from conftest import make_descriptor_xml

CALC_XML = make_descriptor_xml(
    "CALC00", cpuusage=0.03, frequency=1000, priority=2,
    outports=[("LATDAT", "RTAI.SHM", "Integer", 4)])

SEEDS = (1, 77, 4242)


def run_cell(seed, stress):
    platform = build_platform(seed=seed)
    platform.start_timer(1 * MSEC)
    platform.install_and_start(
        {"Bundle-SymbolicName": "stab.calc",
         "RT-Component": "OSGI-INF/c.xml"},
        resources={"OSGI-INF/c.xml": CALC_XML})
    if stress:
        apply_stress(platform.kernel)
    task = platform.kernel.lookup("CALC00")
    platform.run_for(50 * MSEC)  # settle
    task.stats.latency.clear()
    platform.run_for(1 * SEC)
    summary = task.stats.latency.summary()
    summary["misses"] = task.stats.deadline_misses
    return summary


@pytest.mark.parametrize("seed", SEEDS)
class TestShapeAcrossSeeds:
    def test_light_mode_shape(self, seed):
        cell = run_cell(seed, stress=False)
        assert -4500 < cell["average"] < 500
        assert 2500 < cell["avedev"] < 5500
        assert cell["min"] < -10_000
        assert cell["max"] > 8_000
        assert cell["misses"] == 0

    def test_stress_mode_shape(self, seed):
        cell = run_cell(seed, stress=True)
        assert -23_500 < cell["average"] < -19_000
        assert cell["avedev"] < 1200
        assert cell["max"] < 0
        assert cell["misses"] == 0

    def test_stress_tightens_by_factor(self, seed):
        light = run_cell(seed, stress=False)
        stress = run_cell(seed, stress=True)
        assert stress["avedev"] < light["avedev"] / 3
