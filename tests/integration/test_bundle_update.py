"""Continuous deployment: updating a bundle swaps its component's
contract in place (stop -> update -> restart, all through the DRCR)."""

from repro.core import ComponentState
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml


def test_update_swaps_contract(platform):
    bundle = deploy(platform, make_descriptor_xml(
        "COMP00", cpuusage=0.05, frequency=100, priority=2))
    platform.run_for(50 * MSEC)
    assert platform.drcr.component("COMP00").contract.frequency_hz \
        == 100

    # Ship version 2: double the rate, new budget.
    bundle.update(
        headers={"Bundle-SymbolicName": "test.bundle.COMP00",
                 "Bundle-Version": "2.0.0",
                 "RT-Component": "OSGI-INF/c.xml"},
        resources={"OSGI-INF/c.xml": make_descriptor_xml(
            "COMP00", cpuusage=0.1, frequency=200, priority=2)})

    component = platform.drcr.component("COMP00")
    assert component.state is ComponentState.ACTIVE
    assert component.contract.frequency_hz == 200
    assert component.contract.cpu_usage == 0.1
    task = platform.kernel.lookup("COMP00")
    completions = task.stats.completions
    platform.run_for(100 * MSEC)
    # Running at the new 200 Hz rate.
    assert task.stats.completions - completions >= 19


def test_update_preserves_dependents_via_cascade(platform):
    provider = deploy(platform, make_descriptor_xml(
        "PROV00", cpuusage=0.05,
        outports=[("LINK00", "RTAI.SHM", "Integer", 2)]))
    deploy(platform, make_descriptor_xml(
        "CONS00", cpuusage=0.02, frequency=250, priority=3,
        inports=[("LINK00", "RTAI.SHM", "Integer", 2)]))
    provider.update(resources={"OSGI-INF/c.xml": make_descriptor_xml(
        "PROV00", cpuusage=0.08,
        outports=[("LINK00", "RTAI.SHM", "Integer", 2)])})
    # The consumer rode through the update: deactivated with the old
    # provider, reactivated against the new one.
    assert platform.drcr.component_state("CONS00") \
        is ComponentState.ACTIVE
    assert platform.drcr.component("PROV00").contract.cpu_usage == 0.08
    history = [e.event_type.value for e in
               platform.drcr.events.for_component("CONS00")]
    assert history.count("activated") == 2


def test_update_to_incompatible_port_leaves_dependent_waiting(platform):
    provider = deploy(platform, make_descriptor_xml(
        "PROV00", cpuusage=0.05,
        outports=[("LINK00", "RTAI.SHM", "Integer", 2)]))
    deploy(platform, make_descriptor_xml(
        "CONS00", cpuusage=0.02, frequency=250, priority=3,
        inports=[("LINK00", "RTAI.SHM", "Integer", 2)]))
    # Version 2 renames the outport: the consumer can no longer bind.
    provider.update(resources={"OSGI-INF/c.xml": make_descriptor_xml(
        "PROV00", cpuusage=0.05,
        outports=[("LINKV2", "RTAI.SHM", "Integer", 2)])})
    assert platform.drcr.component_state("PROV00") \
        is ComponentState.ACTIVE
    assert platform.drcr.component_state("CONS00") \
        is ComponentState.UNSATISFIED
