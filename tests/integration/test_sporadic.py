"""Tests for sporadic tasks and sporadic DRCom components."""

import pytest

from repro.core import ComponentState, ResponseTimeAnalysisPolicy
from repro.core.descriptor import ComponentDescriptor
from repro.core.errors import ContractError, DescriptorError
from repro.rtos.requests import Compute
from repro.rtos.task import TaskState, TaskType
from repro.sim.engine import MSEC

SPORADIC_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="ALARM0" desc="event-driven alarm handler"
               type="sporadic" enabled="true" cpuusage="0.10">
  <implementation bincode="demo.AlarmHandler"/>
  <sporadictask mininterarrival_ns="10000000" runoncpu="0"
                priority="1"/>
</drt:component>
"""


def one_shot_body(compute_ns):
    def body(task):
        yield Compute(compute_ns)
    return body


class TestSporadicKernel:
    def _sporadic(self, kernel, mia=10 * MSEC, compute=1 * MSEC):
        task = kernel.create_task("SPOR00", one_shot_body(compute), 1,
                                  task_type=TaskType.SPORADIC,
                                  period_ns=mia)
        kernel.start_task(task)
        return task

    def test_needs_min_interarrival(self, kernel):
        with pytest.raises(ValueError):
            kernel.create_task("SPOR00", one_shot_body(1000), 1,
                               task_type=TaskType.SPORADIC)

    def test_legal_rate_released_normally(self, sim, kernel):
        task = self._sporadic(kernel)
        sim.run_for(15 * MSEC)
        kernel.release_task(task)  # 15ms > 10ms MIA: fine
        sim.run_for(5 * MSEC)
        assert task.stats.activations == 2
        assert task.stats.throttled_releases == 0

    def test_early_release_deferred_to_mia(self, sim, kernel):
        task = self._sporadic(kernel)
        sim.run_for(3 * MSEC)          # started at t=0
        kernel.release_task(task)      # too early (3ms < 10ms)
        assert task.stats.throttled_releases == 1
        assert task.stats.activations == 1
        sim.run_for(20 * MSEC)
        # The deferred release fired at exactly t=10ms.
        assert task.stats.activations == 2
        assert task._last_release_time == 10 * MSEC

    def test_extra_early_releases_dropped(self, sim, kernel):
        task = self._sporadic(kernel)
        sim.run_for(3 * MSEC)
        for _ in range(5):
            kernel.release_task(task)
        assert task.stats.throttled_releases == 5
        sim.run_for(50 * MSEC)
        assert task.stats.activations == 2  # only one deferral queued

    def test_demand_bounded_under_release_storm(self, sim, kernel):
        task = self._sporadic(kernel, mia=10 * MSEC, compute=1 * MSEC)
        # Hammer the release API every millisecond for one second.
        for _ in range(1000):
            if not task.suspended:
                kernel.release_task(task)
            sim.run_for(1 * MSEC)
        # The MIA bounds activations to ~1 per 10 ms.
        assert task.stats.activations <= 101
        assert task.stats.cpu_time_ns <= 101 * MSEC

    def test_deadline_checked_on_completion(self, sim, kernel):
        # Compute time exceeds the implicit deadline (= MIA).
        task = kernel.create_task("SPOR00", one_shot_body(15 * MSEC), 1,
                                  task_type=TaskType.SPORADIC,
                                  period_ns=10 * MSEC)
        kernel.start_task(task)
        sim.run_for(30 * MSEC)
        assert task.stats.deadline_misses == 1

    def test_delete_cancels_deferred_release(self, sim, kernel):
        task = self._sporadic(kernel)
        sim.run_for(3 * MSEC)
        kernel.release_task(task)
        kernel.delete_task(task)
        sim.run_for(50 * MSEC)
        assert task.state is TaskState.DELETED
        assert task.stats.activations == 1


class TestSporadicDescriptor:
    def test_parses(self):
        descriptor = ComponentDescriptor.from_xml(SPORADIC_XML)
        contract = descriptor.contract
        assert contract.task_type is TaskType.SPORADIC
        assert contract.period_ns == 10 * MSEC
        assert contract.is_rate_bound
        assert not contract.is_periodic
        assert contract.wcet_ns == 1 * MSEC  # 0.10 x 10 ms

    def test_roundtrip(self):
        descriptor = ComponentDescriptor.from_xml(SPORADIC_XML)
        reparsed = ComponentDescriptor.from_xml(descriptor.to_xml())
        assert reparsed.contract == descriptor.contract

    def test_sporadic_without_element_rejected(self):
        broken = SPORADIC_XML.replace(
            '<sporadictask mininterarrival_ns="10000000" runoncpu="0"\n'
            '                priority="1"/>', "")
        with pytest.raises(DescriptorError):
            ComponentDescriptor.from_xml(broken)

    def test_contract_requires_positive_mia(self):
        from repro.core.contracts import RealTimeContract
        with pytest.raises(ContractError):
            RealTimeContract("X", TaskType.SPORADIC, cpu_usage=0.1)


class TestSporadicComponent:
    def test_deploy_and_release(self, platform):
        platform.install_and_start(
            {"Bundle-SymbolicName": "demo.alarm",
             "RT-Component": "OSGI-INF/alarm.xml"},
            resources={"OSGI-INF/alarm.xml": SPORADIC_XML})
        component = platform.drcr.component("ALARM0")
        assert component.state is ComponentState.ACTIVE
        container = component.container
        platform.run_for(15 * MSEC)
        container.release()
        platform.run_for(15 * MSEC)
        assert container.task.stats.activations == 2

    def test_admission_uses_mia_as_period(self, platform):
        # RTA must account for the sporadic demand: a sporadic claiming
        # 90% leaves no room for a periodic claiming 50%.
        platform.drcr.set_internal_policy(ResponseTimeAnalysisPolicy())
        heavy = SPORADIC_XML.replace('cpuusage="0.10"',
                                     'cpuusage="0.90"')
        platform.install_and_start(
            {"Bundle-SymbolicName": "demo.alarm",
             "RT-Component": "OSGI-INF/alarm.xml"},
            resources={"OSGI-INF/alarm.xml": heavy})
        from conftest import deploy, make_descriptor_xml
        deploy(platform, make_descriptor_xml(
            "PERIO0", cpuusage=0.5, frequency=100, priority=2))
        assert platform.drcr.component_state("ALARM0") \
            is ComponentState.ACTIVE
        assert platform.drcr.component_state("PERIO0") \
            is ComponentState.UNSATISFIED
