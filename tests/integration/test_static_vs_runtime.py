"""Experiment C2: static defect detection vs runtime discovery.

One defective fleet (four planted defects, seed 2008) examined two
ways.  drtlint names every defect with a stable code and a fix hint
before any framework exists; the live runtime discovers the same
defects only piecemeal -- one as a deploy-time exception, two as
components that silently sit UNSATISFIED forever, and one as an
admission veto.  EXPERIMENTS.md section C2 documents the comparison
this test asserts."""

import pytest

from repro.core import ComponentState, DuplicateComponentError
from repro.core.policies import UtilizationBoundPolicy
from repro.lint import Severity, lint_descriptors
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC
from repro.workloads import generate_defective_fleet

SEED = 2008


@pytest.fixture
def fleet():
    return generate_defective_fleet(SEED)


@pytest.fixture
def platform():
    p = build_platform(
        seed=SEED,
        kernel_config=KernelConfig(num_cpus=2,
                                   latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=1.0),
    )
    p.start_timer(1 * MSEC)
    return p


class TestStaticSide:
    def test_drtlint_names_every_defect_up_front(self, fleet):
        descriptors, expected = fleet
        diagnostics = lint_descriptors(descriptors)
        found = sorted({d.code for d in diagnostics
                        if d.severity is Severity.ERROR})
        assert found == expected
        # Every finding is actionable: code, culprit and a fix hint.
        for diagnostic in diagnostics:
            assert diagnostic.fix_hint

    def test_static_analysis_needs_no_runtime(self, fleet):
        # The whole point of C2: the analysis above ran against plain
        # descriptor objects -- no simulator, kernel, framework or
        # DRCR was ever constructed in TestStaticSide.
        descriptors, _ = fleet
        assert all(type(d).__module__ == "repro.core.descriptor"
                   for d in descriptors)


class TestRuntimeSide:
    def deploy(self, platform, descriptors):
        deploy_errors = []
        for descriptor in descriptors:
            try:
                platform.drcr.register_component(descriptor)
            except DuplicateComponentError as error:
                deploy_errors.append((descriptor.name, str(error)))
        return deploy_errors

    def test_runtime_discovers_the_defects_only_piecemeal(
            self, platform, fleet):
        descriptors, _ = fleet
        deploy_errors = self.deploy(platform, descriptors)

        # Defect "duplicate_task": surfaces as a deploy-time
        # exception -- the second colliding registration blows up.
        assert len(deploy_errors) == 1
        assert deploy_errors[0][0] == "dupt00"

        # Defect "cycle": both members wait for the other to activate
        # first; they sit UNSATISFIED forever, with no cycle report.
        state = platform.drcr.component_state
        assert state("CYCA00") is ComponentState.UNSATISFIED
        assert state("CYCB00") is ComponentState.UNSATISFIED

        # Defect "size_mismatch": the consumer's inport never finds a
        # compatible provider -- again just UNSATISFIED, no diagnosis.
        assert state("MISB00") is ComponentState.UNSATISFIED

        # Defect "overutilization": the third half-CPU claim on CPU 1
        # is vetoed by admission control; the first two run.
        over_states = [state("OVR%03d" % index) for index in range(3)]
        active = [s for s in over_states
                  if s is ComponentState.ACTIVE]
        unsatisfied = [s for s in over_states
                       if s is ComponentState.UNSATISFIED]
        assert len(active) == 2 and len(unsatisfied) == 1

        # Time passes; nothing self-heals.  The planted defects are
        # permanent, which is exactly why catching them before
        # deployment is worth a static pass.
        platform.run_for(200 * MSEC)
        assert state("CYCA00") is ComponentState.UNSATISFIED
        assert state("MISB00") is ComponentState.UNSATISFIED

    def test_healthy_members_still_run(self, platform, fleet):
        descriptors, _ = fleet
        self.deploy(platform, descriptors)
        # The defects do not take the healthy chained base fleet down.
        base = [d.name for d in descriptors
                if d.name.startswith("DF")]
        platform.run_for(50 * MSEC)
        for name in base:
            assert platform.drcr.component_state(name) \
                is ComponentState.ACTIVE
