"""Tests for the platform assembly module and top-level package."""

import repro
from repro.core import DRCR_SERVICE_INTERFACE, ComponentState
from repro.platform import Platform, build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC, SEC

from conftest import make_descriptor_xml


class TestBuildPlatform:
    def test_builds_connected_stack(self):
        platform = build_platform(seed=1)
        assert platform.drcr.framework is platform.framework
        assert platform.drcr.kernel is platform.kernel
        assert platform.kernel.sim is platform.sim

    def test_drcr_attached_by_default(self):
        platform = build_platform(seed=1)
        ref = platform.framework.registry.get_reference(
            DRCR_SERVICE_INTERFACE)
        assert ref is not None

    def test_attach_false_defers(self):
        platform = build_platform(seed=1, attach=False)
        assert platform.framework.registry.get_reference(
            DRCR_SERVICE_INTERFACE) is None
        platform.drcr.attach()
        assert platform.framework.registry.get_reference(
            DRCR_SERVICE_INTERFACE) is not None

    def test_custom_kernel_config_used(self):
        config = KernelConfig(num_cpus=3,
                              latency_model=NullLatencyModel())
        platform = build_platform(seed=1, kernel_config=config)
        assert platform.kernel.config.num_cpus == 3

    def test_now_and_run_for(self):
        platform = build_platform(seed=1)
        assert platform.now == 0
        platform.run_for(5 * MSEC)
        assert platform.now == 5 * MSEC

    def test_start_timer_default_tick(self):
        platform = build_platform(seed=1)
        platform.start_timer()
        assert platform.kernel.timer_period_ns == 1 * MSEC

    def test_install_and_start_deploys(self):
        platform = build_platform(
            seed=1, kernel_config=KernelConfig(
                latency_model=NullLatencyModel()))
        platform.start_timer()
        platform.install_and_start(
            {"Bundle-SymbolicName": "x",
             "RT-Component": "OSGI-INF/c.xml"},
            resources={"OSGI-INF/c.xml": make_descriptor_xml(
                "COMP00", cpuusage=0.05)})
        assert platform.drcr.component_state("COMP00") \
            is ComponentState.ACTIVE

    def test_shutdown_cleans_everything(self):
        platform = build_platform(
            seed=1, kernel_config=KernelConfig(
                latency_model=NullLatencyModel()))
        platform.start_timer()
        platform.install_and_start(
            {"Bundle-SymbolicName": "x",
             "RT-Component": "OSGI-INF/c.xml"},
            resources={"OSGI-INF/c.xml": make_descriptor_xml(
                "COMP00", cpuusage=0.05)})
        platform.run_for(10 * MSEC)
        platform.shutdown()
        assert len(platform.drcr.registry) == 0
        assert not platform.kernel.exists("COMP00")
        assert len(platform.framework.registry) == 0

    def test_package_exports(self):
        assert repro.build_platform is build_platform
        assert repro.Platform is Platform
        assert repro.__version__

    def test_deterministic_across_builds(self):
        def run(seed):
            platform = build_platform(seed=seed)
            platform.start_timer()
            platform.install_and_start(
                {"Bundle-SymbolicName": "x",
                 "RT-Component": "OSGI-INF/c.xml"},
                resources={"OSGI-INF/c.xml": make_descriptor_xml(
                    "COMP00", cpuusage=0.05)})
            platform.run_for(1 * SEC)
            task = platform.kernel.lookup("COMP00")
            return task.stats.latency.values

        assert run(77) == run(77)
        assert run(77) != run(78)
