"""Telemetry integration: counters must agree with the event/trace log.

Replays the section 4.3 dynamicity scenario (Display depends on
Calculation's outport) with a customized resolving service that first
rejects and later accepts, then cross-checks every admission counter
against the DRCR event log and every kernel counter against the
structured trace.  Also exercises the CLI surface end to end.
"""

import json
import subprocess
import sys

import pytest

from repro.core import (
    RESOLVING_SERVICE_INTERFACE,
    ComponentEventType,
    ComponentState,
    Decision,
    ResolvingService,
)
from repro.core.lifecycle import state_metric_name
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml

CALC_XML = make_descriptor_xml(
    "CALC00", cpuusage=0.03, frequency=1000, priority=2,
    outports=[("LATDAT", "RTAI.SHM", "Integer", 4)])
DISP_XML = make_descriptor_xml(
    "DISP00", cpuusage=0.01, frequency=250, priority=3,
    inports=[("LATDAT", "RTAI.SHM", "Integer", 4)])


class GatedResolvingService(ResolvingService):
    """External customized service: vetoes DISP00 until opened."""

    name = "external gate"          # space: exercises sanitisation

    def __init__(self):
        self.open = False

    def admit(self, candidate, view):
        if candidate.name == "DISP00" and not self.open:
            return Decision.no("gate closed")
        return Decision.yes("gate open")


class TestDynamicityScenarioCounters:

    @pytest.fixture
    def scenario(self, platform):
        gate = GatedResolvingService()
        platform.framework.registry.register(
            RESOLVING_SERVICE_INTERFACE, gate)
        deploy(platform, CALC_XML, "scenario.calc")
        deploy(platform, DISP_XML, "scenario.display")   # gate closed
        platform.run_for(50 * MSEC)
        gate.open = True
        # disable/enable is the management-surface way to force a
        # reconfiguration pass after an external condition changes
        platform.drcr.disable_component("DISP00")
        platform.drcr.enable_component("DISP00")
        platform.run_for(50 * MSEC)
        return platform

    def test_admission_counters_match_event_log(self, scenario):
        drcr = scenario.drcr
        metrics = scenario.telemetry.registry("drcr")
        events = drcr.events

        # the state narrative: display rejected, then admitted
        rejected = events.of_type(ComponentEventType.ADMISSION_REJECTED)
        assert [e.component for e in rejected] == ["DISP00"]
        assert drcr.component_state("DISP00") is ComponentState.ACTIVE

        # every full acceptance increments admissions_total
        assert metrics.get("admissions_total").value == \
            len(events.of_type(ComponentEventType.SATISFIED))
        # events are deduped by reason; counters count every attempt
        assert metrics.get("admission_rejections_total").value >= \
            len(rejected) >= 1
        # each rejection is attributed to the vetoing service
        gate_counter = metrics.get("rejected_by.external_gate")
        assert gate_counter is not None
        assert gate_counter.value == \
            metrics.get("admission_rejections_total").value

    def test_event_counters_match_event_log(self, scenario):
        metrics = scenario.telemetry.registry("drcr")
        for event_type in ComponentEventType:
            counted = metrics.get("events_%s_total" % event_type.value)
            logged = len(scenario.drcr.events.of_type(event_type))
            assert (counted.value if counted else 0) == logged, \
                event_type

    def test_state_gauges_match_registry(self, scenario):
        metrics = scenario.telemetry.registry("drcr")
        for state in ComponentState:
            gauge = metrics.get(state_metric_name(state))
            assert gauge is not None, state
            assert gauge.value == \
                len(scenario.drcr.registry.in_state(state)), state

    def test_kernel_counters_match_trace(self, scenario):
        trace = scenario.sim.trace
        metrics = scenario.telemetry.registry("rtos")
        assert metrics.get("dispatches_total").value == \
            len(trace.by_category("dispatch"))
        assert metrics.get("deadline_misses_total").value == \
            len(trace.by_category("deadline_miss"))
        assert metrics.get("preemptions_total").value == \
            len(trace.by_category("preempt"))
        # every dispatch eventually leaves the CPU
        assert len(trace.by_category("off_cpu")) <= \
            metrics.get("dispatches_total").value
        # the latency histogram saw every periodic release
        assert metrics.get("dispatch_latency_ns").count == \
            metrics.get("releases_total").value

    def test_report_includes_metrics_section(self, scenario):
        from repro.core.inspection import system_report
        report = system_report(scenario.drcr)
        assert "metrics:" in report
        assert "drcr.admissions_total" in report
        assert "metrics" not in system_report(scenario.drcr,
                                              include_metrics=False)


class TestCliSurface:

    def test_trace_and_metrics_flags(self, tmp_path):
        trace_path = tmp_path / "out.json"
        metrics_path = tmp_path / "metrics.json"
        result = subprocess.run(
            [sys.executable, "-m", "repro",
             "--trace", str(trace_path),
             "--metrics", str(metrics_path)],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr

        from repro.telemetry.chrome import validate_chrome_trace
        document = json.loads(trace_path.read_text())
        assert validate_chrome_trace(document) > 0
        assert document["otherData"]["metrics"]["rtos"][
            "dispatches_total"]["value"] > 0

        metrics = json.loads(metrics_path.read_text())
        assert metrics["version"] == 1
        assert metrics["enabled"] is True
        assert metrics["subsystems"]["sim"]["events_total"]["value"] > 0

    def test_no_telemetry_flag(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--no-telemetry",
             "--metrics", str(metrics_path)],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        assert "telemetry disabled" in result.stdout
        metrics = json.loads(metrics_path.read_text())
        assert metrics["enabled"] is False
        assert metrics["subsystems"] == {}
