"""The ``python -m repro`` demo must run and print the report."""

import subprocess
import sys


def test_python_dash_m_repro():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "DRCR system report" in result.stdout
    assert "CALC00" in result.stdout
    assert "scheduling latency" in result.stdout
    # The pipeline resolved: the display lists its provider.
    assert "DISP00" in result.stdout
