"""The full runaway chain: implementation spins -> watchdog faults the
task -> kernel notifies the DRCR -> component quarantined to DISABLED
-> dependents cascade -> the rest of the system keeps its contracts."""

from repro.core import ComponentState
from repro.hybrid import RTImplementation, make_container_factory
from repro.hybrid.implementation import ImplementationRegistry
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.rtos.watchdog import Watchdog
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml


class SpinsForever(RTImplementation):
    def compute_ns(self, ctx):
        if ctx.job_index >= 3:
            return 10 * SEC  # wedged from the fourth job on
        return ctx.contract.wcet_ns


def test_runaway_component_quarantined_end_to_end():
    registry = ImplementationRegistry()
    registry.register("runaway.Impl", SpinsForever)
    platform = build_platform(
        seed=14,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        container_factory=make_container_factory(registry))
    platform.start_timer(1 * MSEC)
    watchdog = Watchdog(platform.kernel, limit_ns=20 * MSEC,
                        policy="fault").start()

    # The runaway runs at the TOP priority -- the scenario the RTAI
    # watchdog exists for: nothing below can ever preempt it, so only
    # the watchdog can break the lockout.
    deploy(platform, make_descriptor_xml(
        "SPIN00", cpuusage=0.1, frequency=100, priority=0,
        bincode="runaway.Impl",
        outports=[("SPINP0", "RTAI.SHM", "Integer", 2)]))
    deploy(platform, make_descriptor_xml(
        "DEP000", cpuusage=0.05, frequency=100, priority=3,
        inports=[("SPINP0", "RTAI.SHM", "Integer", 2)]))
    deploy(platform, make_descriptor_xml(
        "SAFE00", cpuusage=0.1, frequency=1000, priority=1))

    platform.run_for(1 * SEC)

    # The runaway was caught and its component quarantined.
    assert watchdog.interventions
    spin = platform.drcr.component("SPIN00")
    assert spin.state is ComponentState.DISABLED
    assert "watchdog" in spin.status_reason
    assert not platform.kernel.exists("SPIN00")

    # Its dependent cascaded; the unrelated component never suffered.
    assert platform.drcr.component_state("DEP000") \
        is ComponentState.UNSATISFIED
    safe_task = platform.kernel.lookup("SAFE00")
    # SAFE00 lost at most the lockout window (limit + check period),
    # then ran clean for the rest of the second.
    assert safe_task.stats.deadline_misses <= 30
    assert safe_task.stats.completions >= 950
    misses_at_end = safe_task.stats.deadline_misses
    platform.run_for(1 * SEC)
    assert safe_task.stats.deadline_misses == misses_at_end
