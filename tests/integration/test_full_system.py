"""End-to-end integration tests: the full stack running realistic
scenarios over simulated time."""

import pytest

from repro.core import (
    AdaptationManager,
    ComponentState,
    SuspendOnDeadlineMisses,
    UtilizationBoundPolicy,
)
from repro.hybrid import RTImplementation, make_container_factory
from repro.hybrid.implementation import ImplementationRegistry
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.rtos.load import apply_stress
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml


class TestControlSystemPipeline:
    """The paper's section 4.2 application: a 1000 Hz calculation task
    feeding a rate-4 (250 Hz) display task through shared memory."""

    @pytest.fixture
    def pipeline(self, platform):
        calc = make_descriptor_xml(
            "CALC00", cpuusage=0.05, frequency=1000, priority=2,
            outports=[("LATDAT", "RTAI.SHM", "Integer", 4)])
        disp = make_descriptor_xml(
            "DISP00", cpuusage=0.01, frequency=250, priority=3,
            inports=[("LATDAT", "RTAI.SHM", "Integer", 4)])
        deploy(platform, calc)
        deploy(platform, disp)
        return platform

    def test_rates_respected_over_one_second(self, pipeline):
        pipeline.run_for(1 * SEC)
        calc_task = pipeline.kernel.lookup("CALC00")
        disp_task = pipeline.kernel.lookup("DISP00")
        assert calc_task.stats.completions in range(995, 1002)
        assert disp_task.stats.completions in range(245, 252)
        assert calc_task.stats.deadline_misses == 0
        assert disp_task.stats.deadline_misses == 0

    def test_dataflow_through_shared_memory(self, pipeline):
        pipeline.run_for(100 * MSEC)
        segment = pipeline.kernel.lookup("LATDAT")
        assert segment.last_writer == "CALC00"
        assert segment.write_count >= 99
        disp = pipeline.drcr.component("DISP00")
        value = disp.container.ctx.read_inport("LATDAT")
        assert value[0] >= 99

    def test_stress_mode_does_not_disturb_pipeline(self, pipeline):
        pipeline.run_for(100 * MSEC)
        apply_stress(pipeline.kernel)
        pipeline.run_for(1 * SEC)
        calc_task = pipeline.kernel.lookup("CALC00")
        assert calc_task.stats.deadline_misses == 0
        assert pipeline.kernel.linux_work_ns() > 0

    def test_redeploy_cycle_many_times(self, pipeline):
        # Continuous deployment: restart the provider 10 times; the
        # consumer must track every cycle.
        calc_bundle = pipeline.framework.get_bundle("test.bundle.CALC00")
        for _ in range(10):
            pipeline.run_for(20 * MSEC)
            calc_bundle.stop()
            assert pipeline.drcr.component_state("DISP00") \
                is ComponentState.UNSATISFIED
            calc_bundle.start()
            assert pipeline.drcr.component_state("DISP00") \
                is ComponentState.ACTIVE
        activations = pipeline.drcr.events.for_component("DISP00")
        assert len([e for e in activations
                    if e.event_type.value == "activated"]) == 11


class TestCustomImplementationPipeline:
    def test_user_implementation_end_to_end(self):
        class Producer(RTImplementation):
            def execute(self, ctx):
                ctx.write_outport("FRAME0",
                                  [ctx.job_index % 256] * 16)

        class Consumer(RTImplementation):
            def __init__(self):
                self.seen = []

            def execute(self, ctx):
                self.seen.append(ctx.read_inport("FRAME0")[0])

        registry = ImplementationRegistry()
        registry.register("app.Producer", Producer)
        consumer_instance = Consumer()
        registry.register("app.Consumer", lambda: consumer_instance)

        platform = build_platform(
            seed=5,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel()),
            container_factory=make_container_factory(registry))
        platform.start_timer(1 * MSEC)
        producer_xml = make_descriptor_xml(
            "PROD00", cpuusage=0.1, frequency=100, priority=2,
            bincode="app.Producer",
            outports=[("FRAME0", "RTAI.SHM", "Byte", 16)])
        consumer_xml = make_descriptor_xml(
            "CONS00", cpuusage=0.05, frequency=50, priority=3,
            bincode="app.Consumer",
            inports=[("FRAME0", "RTAI.SHM", "Byte", 16)])
        deploy(platform, producer_xml)
        deploy(platform, consumer_xml)
        platform.run_for(1 * SEC)
        assert len(consumer_instance.seen) >= 48
        assert max(consumer_instance.seen) > 0


class TestAdmissionUnderChurn:
    def test_oversubscription_resolves_to_feasible_subset(self):
        platform = build_platform(
            seed=9,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel()),
            internal_policy=UtilizationBoundPolicy(cap=0.9))
        platform.start_timer(1 * MSEC)
        for index in range(6):
            xml = make_descriptor_xml(
                "LOAD%02d" % index, cpuusage=0.25,
                frequency=1000, priority=2 + index)
            deploy(platform, xml)
        active = platform.drcr.registry.active()
        assert len(active) == 3  # 3 * 0.25 <= 0.9 < 4 * 0.25
        platform.run_for(200 * MSEC)
        for component in active:
            task = platform.kernel.lookup(
                component.descriptor.task_name)
            assert task.stats.deadline_misses == 0

    def test_waiters_admitted_as_budget_frees(self):
        platform = build_platform(
            seed=9,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel()),
            internal_policy=UtilizationBoundPolicy(cap=0.5))
        platform.start_timer(1 * MSEC)
        bundles = []
        for index in range(4):
            xml = make_descriptor_xml(
                "LOAD%02d" % index, cpuusage=0.2,
                frequency=1000, priority=2 + index)
            bundles.append(deploy(platform, xml))
        assert len(platform.drcr.registry.active()) == 2
        bundles[0].stop()
        assert len(platform.drcr.registry.active()) == 2
        names = {c.name for c in platform.drcr.registry.active()}
        assert "LOAD00" not in names


class TestAdaptationLoop:
    def test_closed_loop_suspends_misbehaving_component(self):
        from repro.core import AlwaysAcceptPolicy
        platform = build_platform(
            seed=11,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel()),
            internal_policy=AlwaysAcceptPolicy())
        platform.start_timer(1 * MSEC)
        # Two hogs whose combined demand overruns the CPU.
        for name, usage, priority in (("HOGA00", 0.7, 1),
                                      ("HOGB00", 0.7, 2)):
            deploy(platform, make_descriptor_xml(
                name, cpuusage=usage, frequency=1000,
                priority=priority))
        manager = AdaptationManager(
            platform.framework, rules=[SuspendOnDeadlineMisses(10)])
        # Closed loop: run, poll, repeat.
        for _ in range(10):
            platform.run_for(50 * MSEC)
            manager.poll()
        # The lower-priority hog misses and gets suspended; the other
        # then runs clean.
        assert platform.drcr.component_state("HOGB00") \
            is ComponentState.SUSPENDED
        hog_a = platform.kernel.lookup("HOGA00")
        before = hog_a.stats.deadline_misses
        platform.run_for(200 * MSEC)
        assert hog_a.stats.deadline_misses == before
        manager.close()
