"""Tests for the service registry, references and rankings."""

import pytest

from repro.osgi.errors import ServiceUnregisteredError
from repro.osgi.events import ListenerList, ServiceEventType
from repro.osgi.registry import ServiceRegistry
from repro.osgi.services import OBJECTCLASS, SERVICE_RANKING


@pytest.fixture
def registry():
    return ServiceRegistry(listeners=ListenerList())


class TestRegistration:
    def test_register_and_lookup(self, registry):
        registry.register("IFoo", "impl")
        ref = registry.get_reference("IFoo")
        assert registry.get_service(ref) == "impl"

    def test_register_multiple_interfaces(self, registry):
        registry.register(["IFoo", "IBar"], "impl")
        assert registry.get_reference("IFoo") is not None
        assert registry.get_reference("IBar") is not None

    def test_service_ids_monotonic(self, registry):
        first = registry.register("IFoo", "a")
        second = registry.register("IFoo", "b")
        assert second.reference.service_id \
            > first.reference.service_id

    def test_empty_classes_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register([], "impl")

    def test_len(self, registry):
        registry.register("IFoo", "a")
        registry.register("IBar", "b")
        assert len(registry) == 2


class TestLookup:
    def test_filter_on_properties(self, registry):
        registry.register("IFoo", "cam", {"kind": "camera"})
        registry.register("IFoo", "disp", {"kind": "display"})
        refs = registry.get_references("IFoo", "(kind=camera)")
        assert len(refs) == 1
        assert registry.get_service(refs[0]) == "cam"

    def test_filter_without_class(self, registry):
        registry.register("IFoo", "x", {"tag": 1})
        registry.register("IBar", "y", {"tag": 1})
        assert len(registry.get_references(
            filter_text="(tag=1)")) == 2

    def test_filter_matches_objectclass(self, registry):
        registry.register("IFoo", "x")
        refs = registry.get_references(
            filter_text="(objectClass=IFoo)")
        assert len(refs) == 1

    def test_ranking_orders_best_first(self, registry):
        registry.register("IFoo", "low", {SERVICE_RANKING: 1})
        registry.register("IFoo", "high", {SERVICE_RANKING: 10})
        registry.register("IFoo", "default")
        services = [registry.get_service(r)
                    for r in registry.get_references("IFoo")]
        assert services == ["high", "low", "default"]

    def test_equal_ranking_lowest_id_wins(self, registry):
        registry.register("IFoo", "first")
        registry.register("IFoo", "second")
        assert registry.get_service(
            registry.get_reference("IFoo")) == "first"

    def test_no_match_returns_none(self, registry):
        assert registry.get_reference("IMissing") is None


class TestUnregister:
    def test_unregister_removes(self, registry):
        reg = registry.register("IFoo", "impl")
        reg.unregister()
        assert registry.get_reference("IFoo") is None

    def test_double_unregister_raises(self, registry):
        reg = registry.register("IFoo", "impl")
        reg.unregister()
        with pytest.raises(ServiceUnregisteredError):
            reg.unregister()

    def test_get_service_after_unregister_returns_none(self, registry):
        reg = registry.register("IFoo", "impl")
        ref = reg.reference
        reg.unregister()
        assert registry.get_service(ref) is None

    def test_reference_property_after_unregister_raises(self, registry):
        reg = registry.register("IFoo", "impl")
        reg.unregister()
        with pytest.raises(ServiceUnregisteredError):
            reg.reference

    def test_unregister_all_for_bundle(self, registry):
        bundle = object()
        registry.register("IFoo", "a", bundle=bundle)
        registry.register("IBar", "b", bundle=bundle)
        registry.register("IBaz", "c", bundle=object())
        registry.unregister_all_for_bundle(bundle)
        assert registry.get_reference("IFoo") is None
        assert registry.get_reference("IBaz") is not None


class TestPropertiesAndEvents:
    def test_set_properties_preserves_identity_keys(self, registry):
        reg = registry.register("IFoo", "impl", {"a": 1})
        original_id = reg.properties["service.id"]
        reg.set_properties({"b": 2})
        assert reg.properties["b"] == 2
        assert "a" not in reg.properties
        assert reg.properties[OBJECTCLASS] == ["IFoo"]
        assert reg.properties["service.id"] == original_id

    def test_modify_after_unregister_raises(self, registry):
        reg = registry.register("IFoo", "impl")
        reg.unregister()
        with pytest.raises(ServiceUnregisteredError):
            reg.set_properties({})

    def test_event_sequence(self, registry):
        events = []
        registry.listeners.add(
            lambda e: events.append(e.event_type))
        reg = registry.register("IFoo", "impl")
        reg.set_properties({"x": 1})
        reg.unregister()
        assert events == [ServiceEventType.REGISTERED,
                          ServiceEventType.MODIFIED,
                          ServiceEventType.UNREGISTERING]

    def test_unregistering_listener_sees_registry_without_service(
            self, registry):
        remaining = []
        registry.listeners.add(
            lambda e: remaining.append(len(registry))
            if e.event_type is ServiceEventType.UNREGISTERING else None)
        reg = registry.register("IFoo", "impl")
        reg.unregister()
        assert remaining == [0]

    def test_reference_get_property(self, registry):
        reg = registry.register("IFoo", "impl", {"key": "value"})
        assert reg.reference.get_property("key") == "value"
        assert reg.reference.get_property("missing") is None

    def test_reference_properties_copy(self, registry):
        reg = registry.register("IFoo", "impl", {"key": 1})
        props = reg.reference.get_properties()
        props["key"] = 99
        assert reg.reference.get_property("key") == 1

    def test_snapshot(self, registry):
        registry.register("IFoo", "impl", {"a": 1})
        snapshot = registry.snapshot()
        assert snapshot[0][0] == ["IFoo"]
        assert snapshot[0][1]["a"] == 1
