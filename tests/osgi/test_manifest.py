"""Unit tests for manifest header parsing."""

import pytest

from repro.osgi.errors import ManifestError
from repro.osgi.manifest import (
    RT_COMPONENT_HEADER,
    BundleManifest,
    parse_header,
)
from repro.osgi.version import Version


class TestParseHeader:
    def test_single_path(self):
        clauses = parse_header("com.example.api")
        assert len(clauses) == 1
        assert clauses[0].path == "com.example.api"

    def test_multiple_clauses(self):
        clauses = parse_header("a.b,c.d,e.f")
        assert [c.path for c in clauses] == ["a.b", "c.d", "e.f"]

    def test_attributes(self):
        clauses = parse_header('a.b;version="1.0";vendor=acme')
        assert clauses[0].attributes == {"version": "1.0",
                                         "vendor": "acme"}

    def test_directives(self):
        clauses = parse_header("a.b;resolution:=optional")
        assert clauses[0].directives == {"resolution": "optional"}
        assert clauses[0].attributes == {}

    def test_comma_inside_quotes_not_a_separator(self):
        clauses = parse_header('a.b;version="[1.0,2.0)"')
        assert len(clauses) == 1
        assert clauses[0].attributes["version"] == "[1.0,2.0)"

    def test_multiple_paths_share_attributes(self):
        clauses = parse_header('a.b;a.c;version="2.0"')
        assert clauses[0].paths == ["a.b", "a.c"]
        assert clauses[0].version() == Version.parse("2.0")

    def test_none_yields_empty(self):
        assert parse_header(None) == []

    def test_empty_clauses_skipped(self):
        assert len(parse_header("a.b,,c.d,")) == 2

    def test_clause_without_path_rejected(self):
        with pytest.raises(ManifestError):
            parse_header("version=1.0")

    def test_unterminated_quote_rejected(self):
        with pytest.raises(ManifestError):
            parse_header('a.b;version="1.0')

    def test_version_range_helper(self):
        clause = parse_header('a.b;version="[1.0,2.0)"')[0]
        rng = clause.version_range()
        assert rng.includes("1.5") and not rng.includes("2.0")


class TestBundleManifest:
    def _manifest(self, **extra):
        headers = {"Bundle-SymbolicName": "com.example.app"}
        headers.update(extra)
        return BundleManifest(headers)

    def test_symbolic_name_required(self):
        with pytest.raises(ManifestError):
            BundleManifest({"Bundle-Version": "1.0"})

    def test_defaults(self):
        m = self._manifest()
        assert m.symbolic_name == "com.example.app"
        assert m.version == Version()
        assert m.name == "com.example.app"
        assert m.activator is None
        assert m.imports == [] and m.exports == []
        assert m.rt_components == []

    def test_version_parsed(self):
        m = self._manifest(**{"Bundle-Version": "2.1.0"})
        assert m.version == Version(2, 1, 0)

    def test_imports_and_exports(self):
        m = self._manifest(**{
            "Import-Package": 'a.b;version="[1.0,2.0)",c.d',
            "Export-Package": "e.f;version=1.2",
        })
        imports = list(m.imported_packages())
        assert imports[0][0] == "a.b"
        assert imports[0][1].includes("1.5")
        assert imports[1][0] == "c.d"
        exports = list(m.exported_packages())
        assert exports[0][:2] == ("e.f", Version.parse("1.2"))

    def test_optional_import_directive(self):
        m = self._manifest(**{
            "Import-Package": "a.b;resolution:=optional,c.d"})
        flags = {pkg: optional for pkg, _, _, optional
                 in m.imported_packages()}
        assert flags == {"a.b": True, "c.d": False}

    def test_duplicate_import_rejected(self):
        with pytest.raises(ManifestError):
            self._manifest(**{"Import-Package": "a.b,a.b"})

    def test_rt_component_header(self):
        m = self._manifest(**{
            RT_COMPONENT_HEADER: "OSGI-INF/cam.xml,OSGI-INF/disp.xml"})
        assert m.rt_components == ["OSGI-INF/cam.xml",
                                   "OSGI-INF/disp.xml"]

    def test_symbolic_name_clause_attributes_ignored(self):
        m = BundleManifest({
            "Bundle-SymbolicName": "com.example;singleton:=true"})
        assert m.symbolic_name == "com.example"
