"""Tests for ServiceTracker and the Declarative Services subset."""

import pytest

from repro.osgi.declarative import (
    ComponentDescription,
    DSRuntime,
    ReferenceSpec,
)
from repro.osgi.framework import Framework
from repro.osgi.tracker import ServiceTracker


@pytest.fixture
def fw():
    return Framework()


class TestServiceTracker:
    def test_tracks_existing_services_on_open(self, fw):
        fw.registry.register("IFoo", "pre-existing")
        tracker = ServiceTracker(fw, clazz="IFoo")
        tracker.open()
        assert tracker.get_service() == "pre-existing"

    def test_tracks_later_registrations(self, fw):
        added = []
        tracker = ServiceTracker(fw, clazz="IFoo",
                                 on_added=lambda r, s: added.append(s))
        tracker.open()
        fw.registry.register("IFoo", "late")
        assert added == ["late"]
        assert tracker.tracking_count == 1

    def test_untracks_on_unregister(self, fw):
        removed = []
        tracker = ServiceTracker(fw, clazz="IFoo",
                                 on_removed=lambda r, s:
                                 removed.append(s))
        tracker.open()
        reg = fw.registry.register("IFoo", "x")
        reg.unregister()
        assert removed == ["x"]
        assert tracker.get_service() is None

    def test_filter_narrows_tracking(self, fw):
        tracker = ServiceTracker(fw, clazz="IFoo",
                                 filter_text="(kind=camera)")
        tracker.open()
        fw.registry.register("IFoo", "cam", {"kind": "camera"})
        fw.registry.register("IFoo", "disp", {"kind": "display"})
        assert tracker.get_services() == ["cam"]

    def test_modified_can_start_and_stop_tracking(self, fw):
        tracker = ServiceTracker(fw, clazz="IFoo",
                                 filter_text="(enabled=yes)")
        tracker.open()
        reg = fw.registry.register("IFoo", "x", {"enabled": "no"})
        assert tracker.tracking_count == 0
        reg.set_properties({"enabled": "yes"})
        assert tracker.tracking_count == 1
        reg.set_properties({"enabled": "no"})
        assert tracker.tracking_count == 0

    def test_modified_callback_for_still_matching(self, fw):
        modified = []
        tracker = ServiceTracker(
            fw, clazz="IFoo",
            on_modified=lambda r, s: modified.append(s))
        tracker.open()
        reg = fw.registry.register("IFoo", "x")
        reg.set_properties({"v": 2})
        assert modified == ["x"]

    def test_close_reports_removals(self, fw):
        removed = []
        tracker = ServiceTracker(fw, clazz="IFoo",
                                 on_removed=lambda r, s:
                                 removed.append(s))
        tracker.open()
        fw.registry.register("IFoo", "x")
        tracker.close()
        assert removed == ["x"]
        fw.registry.register("IFoo", "y")
        assert tracker.tracking_count == 0  # closed: no longer tracking

    def test_best_service_by_ranking(self, fw):
        tracker = ServiceTracker(fw, clazz="IFoo")
        tracker.open()
        fw.registry.register("IFoo", "low", {"service.ranking": 1})
        fw.registry.register("IFoo", "high", {"service.ranking": 5})
        assert tracker.get_service() == "high"

    def test_needs_class_or_filter(self, fw):
        with pytest.raises(ValueError):
            ServiceTracker(fw)

    def test_open_idempotent(self, fw):
        tracker = ServiceTracker(fw, clazz="IFoo")
        tracker.open()
        tracker.open()
        fw.registry.register("IFoo", "x")
        assert tracker.tracking_count == 1


class TestDeclarativeServices:
    def _display_description(self, cardinality="1..1", target=None,
                             provides="IDisplay"):
        return ComponentDescription(
            "display",
            lambda comp: "display-impl",
            provides=provides,
            references=[ReferenceSpec("calc", "ICalc", cardinality,
                                      target=target)])

    def test_mandatory_reference_gates_activation(self, fw):
        ds = DSRuntime(fw)
        comp = ds.add_component(self._display_description())
        assert not comp.active
        fw.registry.register("ICalc", "calc-impl")
        assert comp.active
        assert comp.service("calc") == "calc-impl"

    def test_optional_reference_activates_immediately(self, fw):
        ds = DSRuntime(fw)
        comp = ds.add_component(self._display_description("0..1"))
        assert comp.active
        assert comp.service("calc") is None

    def test_departure_deactivates(self, fw):
        ds = DSRuntime(fw)
        comp = ds.add_component(self._display_description())
        reg = fw.registry.register("ICalc", "calc-impl")
        assert comp.active
        reg.unregister()
        assert not comp.active

    def test_rebind_on_return(self, fw):
        ds = DSRuntime(fw)
        comp = ds.add_component(self._display_description())
        reg = fw.registry.register("ICalc", "v1")
        reg.unregister()
        fw.registry.register("ICalc", "v2")
        assert comp.active
        assert comp.service("calc") == "v2"

    def test_target_filter_respected(self, fw):
        ds = DSRuntime(fw)
        comp = ds.add_component(
            self._display_description(target="(rate=fast)"))
        fw.registry.register("ICalc", "slow", {"rate": "slow"})
        assert not comp.active
        fw.registry.register("ICalc", "fast", {"rate": "fast"})
        assert comp.active
        assert comp.service("calc") == "fast"

    def test_multiple_cardinality_binds_all(self, fw):
        ds = DSRuntime(fw)
        comp = ds.add_component(self._display_description("1..n"))
        fw.registry.register("ICalc", "a")
        fw.registry.register("ICalc", "b")
        assert sorted(comp.services("calc")) == ["a", "b"]

    def test_provided_service_registered(self, fw):
        ds = DSRuntime(fw)
        ds.add_component(self._display_description("0..1"))
        ref = fw.registry.get_reference("IDisplay")
        assert ref is not None
        assert ref.get_property("component.name") == "display"

    def test_activation_cascade(self, fw):
        # A provides IA; B requires IA and provides IB; C requires IB.
        ds = DSRuntime(fw)
        c = ds.add_component(ComponentDescription(
            "c", lambda comp: "c", references=[
                ReferenceSpec("dep", "IB")]))
        b = ds.add_component(ComponentDescription(
            "b", lambda comp: "b", provides="IB", references=[
                ReferenceSpec("dep", "IA")]))
        assert not b.active and not c.active
        ds.add_component(ComponentDescription(
            "a", lambda comp: "a", provides="IA"))
        assert b.active and c.active

    def test_deactivation_cascade(self, fw):
        ds = DSRuntime(fw)
        ds.add_component(ComponentDescription(
            "b", lambda comp: "b", provides="IB", references=[
                ReferenceSpec("dep", "IA")]))
        c = ds.add_component(ComponentDescription(
            "c", lambda comp: "c", references=[
                ReferenceSpec("dep", "IB")]))
        a_reg = fw.registry.register("IA", "a")
        assert c.active
        a_reg.unregister()
        assert not c.active

    def test_activate_deactivate_hooks(self, fw):
        calls = []

        class Impl:
            def activate(self, comp):
                calls.append("activate")

            def deactivate(self, comp):
                calls.append("deactivate")

        ds = DSRuntime(fw)
        comp = ds.add_component(ComponentDescription(
            "hooked", lambda c: Impl(),
            references=[ReferenceSpec("dep", "IA")]))
        reg = fw.registry.register("IA", "a")
        reg.unregister()
        assert calls == ["activate", "deactivate"]

    def test_remove_component(self, fw):
        ds = DSRuntime(fw)
        comp = ds.add_component(self._display_description("0..1"))
        assert comp.active
        ds.remove_component(comp)
        assert not comp.active
        assert fw.registry.get_reference("IDisplay") is None

    def test_components_die_with_bundle(self, fw):
        bundle = fw.install_bundle({"Bundle-SymbolicName": "host"})
        bundle.start()
        ds = DSRuntime(fw)
        comp = ds.add_component(self._display_description("0..1"),
                                bundle=bundle)
        assert comp.active
        bundle.stop()
        assert not comp.active
        assert comp not in ds.components()

    def test_bad_cardinality_rejected(self):
        with pytest.raises(ValueError):
            ReferenceSpec("x", "IX", cardinality="2..3")
