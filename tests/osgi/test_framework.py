"""Tests for bundle lifecycle, wiring and framework events."""

import pytest

from repro.osgi.bundle import BundleActivator, BundleState
from repro.osgi.errors import (
    BundleError,
    BundleStateError,
    ResolutionError,
)
from repro.osgi.events import BundleEventType, FrameworkEventType
from repro.osgi.framework import Framework


@pytest.fixture
def fw():
    return Framework()


def install(fw, name, version="1.0.0", **extra):
    headers = {"Bundle-SymbolicName": name, "Bundle-Version": version}
    headers.update(extra)
    return fw.install_bundle(headers)


class TestInstall:
    def test_install_assigns_ids(self, fw):
        a = install(fw, "a")
        b = install(fw, "b")
        assert a.bundle_id == 1
        assert b.bundle_id == 2
        assert a.state is BundleState.INSTALLED

    def test_duplicate_name_version_rejected(self, fw):
        install(fw, "a", "1.0.0")
        with pytest.raises(BundleError):
            install(fw, "a", "1.0.0")

    def test_same_name_different_version_ok(self, fw):
        install(fw, "a", "1.0.0")
        install(fw, "a", "2.0.0")
        assert len(fw.get_bundles()) == 2

    def test_get_bundle_by_name_and_version(self, fw):
        install(fw, "a", "1.0.0")
        b2 = install(fw, "a", "2.0.0")
        assert fw.get_bundle("a", "2.0.0") is b2
        assert fw.get_bundle("a").version == fw.get_bundles()[0].version
        assert fw.get_bundle("zzz") is None

    def test_installed_event_emitted(self, fw):
        events = []
        fw.bundle_listeners.add(events.append)
        install(fw, "a")
        assert events[0].event_type is BundleEventType.INSTALLED


class TestStartStop:
    def test_start_resolves_and_activates(self, fw):
        bundle = install(fw, "a")
        bundle.start()
        assert bundle.state is BundleState.ACTIVE
        assert bundle.context is not None

    def test_start_is_idempotent(self, fw):
        bundle = install(fw, "a")
        bundle.start()
        bundle.start()
        assert bundle.state is BundleState.ACTIVE

    def test_event_sequence_on_start_stop(self, fw):
        events = []
        fw.bundle_listeners.add(
            lambda e: events.append(e.event_type))
        bundle = install(fw, "a")
        bundle.start()
        bundle.stop()
        assert events == [
            BundleEventType.INSTALLED,
            BundleEventType.RESOLVED,
            BundleEventType.STARTING,
            BundleEventType.STARTED,
            BundleEventType.STOPPING,
            BundleEventType.STOPPED,
        ]

    def test_activator_called(self, fw):
        calls = []

        class Activator(BundleActivator):
            def start(self, context):
                calls.append(("start", context.bundle.symbolic_name))

            def stop(self, context):
                calls.append(("stop", context.bundle.symbolic_name))

        bundle = fw.install_bundle(
            {"Bundle-SymbolicName": "a"}, activator=Activator())
        bundle.start()
        bundle.stop()
        assert calls == [("start", "a"), ("stop", "a")]

    def test_activator_start_failure_rolls_back(self, fw):
        class Broken(BundleActivator):
            def start(self, context):
                raise RuntimeError("boom")

        bundle = fw.install_bundle(
            {"Bundle-SymbolicName": "a"}, activator=Broken())
        with pytest.raises(RuntimeError):
            bundle.start()
        assert bundle.state is BundleState.RESOLVED
        assert bundle.context is None

    def test_stop_unregisters_bundle_services(self, fw):
        bundle = install(fw, "a")
        bundle.start()
        bundle.context.register_service("IFoo", object())
        assert fw.registry.get_reference("IFoo") is not None
        bundle.stop()
        assert fw.registry.get_reference("IFoo") is None

    def test_stop_inactive_raises(self, fw):
        bundle = install(fw, "a")
        with pytest.raises(BundleStateError):
            bundle.stop()


class TestWiringIntegration:
    def test_import_resolves_against_export(self, fw):
        exporter = install(fw, "exp", **{
            "Export-Package": "com.api;version=1.5"})
        importer = install(fw, "imp", **{
            "Import-Package": 'com.api;version="[1.0,2.0)"'})
        exporter.start()
        importer.start()
        wires = fw.resolver.wires_of(importer)
        assert len(wires) == 1
        assert wires[0].exporter is exporter

    def test_unsatisfied_import_blocks_start(self, fw):
        importer = install(fw, "imp", **{
            "Import-Package": "com.missing"})
        with pytest.raises(ResolutionError):
            importer.start()
        assert importer.state is BundleState.INSTALLED

    def test_optional_import_does_not_block(self, fw):
        importer = install(fw, "imp", **{
            "Import-Package": "com.missing;resolution:=optional"})
        importer.start()
        assert importer.state is BundleState.ACTIVE

    def test_version_range_excludes_wrong_export(self, fw):
        install(fw, "exp", **{"Export-Package": "com.api;version=3.0"})
        importer = install(fw, "imp", **{
            "Import-Package": 'com.api;version="[1.0,2.0)"'})
        with pytest.raises(ResolutionError):
            importer.start()

    def test_highest_version_preferred(self, fw):
        old = install(fw, "old", **{
            "Export-Package": "com.api;version=1.0"})
        new = install(fw, "new", **{
            "Export-Package": "com.api;version=1.9"})
        old.start()
        new.start()
        importer = install(fw, "imp", **{"Import-Package": "com.api"})
        importer.start()
        assert fw.resolver.wires_of(importer)[0].exporter is new

    def test_dependents_tracked(self, fw):
        exporter = install(fw, "exp", **{
            "Export-Package": "com.api"})
        importer = install(fw, "imp", **{
            "Import-Package": "com.api"})
        exporter.start()
        importer.start()
        assert fw.resolver.dependents_of(exporter) == [importer]


class TestUninstallUpdate:
    def test_uninstall_active_bundle_stops_first(self, fw):
        bundle = install(fw, "a")
        bundle.start()
        bundle.uninstall()
        assert bundle.state is BundleState.UNINSTALLED
        assert fw.get_bundle("a") is None

    def test_double_uninstall_raises(self, fw):
        bundle = install(fw, "a")
        bundle.uninstall()
        with pytest.raises(BundleStateError):
            bundle.uninstall()

    def test_uninstall_withdraws_exports(self, fw):
        exporter = install(fw, "exp", **{"Export-Package": "com.api"})
        exporter.start()
        exporter.uninstall()
        assert fw.resolver.exported_of("com.api") == []

    def test_update_restarts_active_bundle(self, fw):
        events = []
        bundle = install(fw, "a")
        bundle.start()
        fw.bundle_listeners.add(lambda e: events.append(e.event_type))
        bundle.update(headers={"Bundle-SymbolicName": "a",
                               "Bundle-Version": "1.1.0"})
        assert bundle.state is BundleState.ACTIVE
        assert str(bundle.version) == "1.1.0"
        assert BundleEventType.UPDATED in events
        assert events[-1] is BundleEventType.STARTED

    def test_update_swaps_resources(self, fw):
        bundle = fw.install_bundle({"Bundle-SymbolicName": "a"},
                                   resources={"f.xml": "old"})
        bundle.update(resources={"f.xml": "new"})
        assert bundle.get_resource("f.xml") == "new"


class TestFrameworkLifecycle:
    def test_started_event_recorded(self, fw):
        assert fw.framework_events[0].event_type \
            is FrameworkEventType.STARTED

    def test_listener_errors_isolated(self, fw):
        seen = []

        def bad_listener(event):
            raise ValueError("listener bug")

        fw.bundle_listeners.add(bad_listener)
        fw.bundle_listeners.add(lambda e: seen.append(e))
        install(fw, "a")
        assert len(seen) == 1  # later listener still ran
        errors = [e for e in fw.framework_events
                  if e.event_type is FrameworkEventType.ERROR]
        assert len(errors) == 1

    def test_shutdown_stops_active_bundles_in_reverse(self, fw):
        order = []

        class Recorder(BundleActivator):
            def __init__(self, name):
                self.name = name

            def start(self, context):
                pass

            def stop(self, context):
                order.append(self.name)

        for name in ("a", "b", "c"):
            fw.install_bundle({"Bundle-SymbolicName": name},
                              activator=Recorder(name)).start()
        fw.shutdown()
        assert order == ["c", "b", "a"]
        assert fw.framework_events[-1].event_type \
            is FrameworkEventType.STOPPED
