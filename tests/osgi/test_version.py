"""Unit tests for OSGi versions and ranges."""

import pytest

from repro.osgi.errors import VersionError
from repro.osgi.version import Version, VersionRange


class TestVersionParse:
    def test_full_version(self):
        v = Version.parse("1.2.3.beta")
        assert (v.major, v.minor, v.micro, v.qualifier) == (1, 2, 3,
                                                            "beta")

    def test_missing_parts_default_zero(self):
        assert Version.parse("2") == Version(2, 0, 0)
        assert Version.parse("2.1") == Version(2, 1, 0)

    def test_empty_is_zero(self):
        assert Version.parse("") == Version()
        assert Version.parse(None) == Version()

    def test_idempotent_on_version(self):
        v = Version(1, 2, 3)
        assert Version.parse(v) is v

    def test_too_many_segments_rejected(self):
        with pytest.raises(VersionError):
            Version.parse("1.2.3.q.x")

    def test_non_numeric_rejected(self):
        with pytest.raises(VersionError):
            Version.parse("1.x.3")

    def test_negative_part_rejected(self):
        with pytest.raises(VersionError):
            Version(-1, 0, 0)

    def test_bad_qualifier_rejected(self):
        with pytest.raises(VersionError):
            Version(1, 0, 0, "with space")


class TestVersionOrdering:
    def test_numeric_ordering(self):
        assert Version.parse("1.0.0") < Version.parse("1.0.1")
        assert Version.parse("1.9.0") < Version.parse("1.10.0")
        assert Version.parse("2.0.0") > Version.parse("1.99.99")

    def test_qualifier_ordering(self):
        assert Version.parse("1.0.0") < Version.parse("1.0.0.a")
        assert Version.parse("1.0.0.a") < Version.parse("1.0.0.b")

    def test_equality_and_hash(self):
        a, b = Version.parse("1.2.3"), Version.parse("1.2.3")
        assert a == b
        assert hash(a) == hash(b)

    def test_str_roundtrip(self):
        for text in ("1.2.3", "1.2.3.beta", "0.0.0"):
            assert str(Version.parse(text)) == text


class TestVersionRange:
    def test_atleast_range(self):
        r = VersionRange.parse("1.5")
        assert r.includes("1.5.0")
        assert r.includes("99.0")
        assert not r.includes("1.4.9")

    def test_inclusive_exclusive_interval(self):
        r = VersionRange.parse("[1.0,2.0)")
        assert r.includes("1.0.0")
        assert r.includes("1.9.9")
        assert not r.includes("2.0.0")
        assert not r.includes("0.9")

    def test_exclusive_floor(self):
        r = VersionRange.parse("(1.0,2.0]")
        assert not r.includes("1.0.0")
        assert r.includes("1.0.1")
        assert r.includes("2.0.0")

    def test_empty_text_is_zero_floor(self):
        assert VersionRange.parse("").includes("0.0.0")

    def test_unterminated_raises(self):
        with pytest.raises(VersionError):
            VersionRange.parse("[1.0,2.0")

    def test_interval_needs_comma(self):
        with pytest.raises(VersionError):
            VersionRange.parse("[1.0]")

    def test_str_roundtrip(self):
        for text in ("[1.0.0,2.0.0)", "(1.0.0,2.0.0]", "1.5.0"):
            assert str(VersionRange.parse(text)) == text

    def test_equality_and_hash(self):
        a = VersionRange.parse("[1.0,2.0)")
        b = VersionRange.parse("[1.0,2.0)")
        assert a == b and hash(a) == hash(b)

    def test_idempotent_parse(self):
        r = VersionRange.parse("[1.0,2.0)")
        assert VersionRange.parse(r) is r
