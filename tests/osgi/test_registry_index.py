"""Per-interface index, filter cache, and min-based best-match lookup."""

from repro.osgi.ldap import FilterCache
from repro.osgi.registry import ServiceRegistry
from repro.osgi.services import SERVICE_RANKING
from repro.telemetry.metrics import Telemetry


class TestInterfaceIndex:
    def test_lookup_by_class_matches_full_scan(self):
        registry = ServiceRegistry()
        regs = []
        for index in range(6):
            clazz = "com.iface.%d" % (index % 3)
            regs.append(registry.register([clazz, "com.common"],
                                          object()))
        for index in range(3):
            clazz = "com.iface.%d" % index
            refs = registry.get_references(clazz)
            expected = [r._reference for r in regs
                        if clazz in r.properties["objectClass"]]
            assert sorted(refs, key=lambda r: r.sort_key()) == refs
            assert set(refs) == set(expected)
        assert len(registry.get_references("com.common")) == 6
        assert len(registry.get_references()) == 6

    def test_index_shrinks_on_unregister(self):
        registry = ServiceRegistry()
        first = registry.register("com.x", object())
        second = registry.register("com.x", object())
        first.unregister()
        refs = registry.get_references("com.x")
        assert refs == [second._reference]
        second.unregister()
        assert registry.get_references("com.x") == []
        assert registry.get_reference("com.x") is None

    def test_get_reference_is_best_by_ranking_then_id(self):
        registry = ServiceRegistry()
        registry.register("com.x", "low", {SERVICE_RANKING: 1})
        best = registry.register("com.x", "high", {SERVICE_RANKING: 9})
        registry.register("com.x", "tie", {SERVICE_RANKING: 9})
        reference = registry.get_reference("com.x")
        # Highest ranking wins; the earlier id breaks the tie.
        assert reference is best._reference

    def test_filtered_lookup_uses_index_and_filter(self):
        registry = ServiceRegistry()
        registry.register("com.x", "a", {"grade": 1})
        wanted = registry.register("com.x", "b", {"grade": 2})
        registry.register("com.y", "c", {"grade": 2})
        refs = registry.get_references("com.x", "(grade=2)")
        assert refs == [wanted._reference]


class TestFilterCache:
    def test_repeated_filters_compile_once(self):
        registry = ServiceRegistry()
        registry.register("com.x", object(), {"grade": 1})
        for _ in range(5):
            registry.get_references("com.x", "(grade=1)")
        assert registry.filter_cache.misses == 1
        assert registry.filter_cache.hits == 4

    def test_cache_is_bounded_fifo(self):
        cache = FilterCache(max_size=2)
        cache.compile("(a=1)")
        cache.compile("(b=1)")
        cache.compile("(c=1)")
        assert len(cache) == 2
        cache.compile("(a=1)")  # evicted -> recompiles
        assert cache.misses == 4

    def test_telemetry_counters_wired_through_framework(self):
        from repro.osgi.framework import Framework
        telemetry = Telemetry(enabled=True)
        framework = Framework(telemetry=telemetry)
        framework.registry.register("com.x", object(), {"grade": 1})
        framework.registry.get_references("com.x", "(grade=1)")
        framework.registry.get_references("com.x", "(grade=1)")
        metrics = telemetry.registry("osgi")
        assert metrics.get("service_lookups_total").value == 2
        assert metrics.get("filter_cache_misses_total").value == 1
        assert metrics.get("filter_cache_hits_total").value == 1
        assert metrics.get("service_lookup_candidates_total").value == 2

    def test_standalone_registry_needs_no_telemetry(self):
        registry = ServiceRegistry()
        registry.register("com.x", object())
        assert registry.get_reference("com.x") is not None
