"""Unit tests for the RFC 1960 LDAP filter implementation."""

import pytest

from repro.osgi.errors import InvalidFilterError
from repro.osgi.ldap import LDAPFilter, escape, parse_filter
from repro.osgi.version import Version


def matches(text, props):
    return parse_filter(text).matches(props)


class TestSimpleComparisons:
    def test_equality(self):
        assert matches("(name=camera)", {"name": "camera"})
        assert not matches("(name=camera)", {"name": "display"})

    def test_missing_attribute_never_matches(self):
        assert not matches("(name=camera)", {})

    def test_attribute_names_case_insensitive(self):
        assert matches("(NAME=camera)", {"name": "camera"})
        assert matches("(name=camera)", {"Name": "camera"})

    def test_numeric_coercion_int(self):
        assert matches("(priority=2)", {"priority": 2})
        assert not matches("(priority=2)", {"priority": 3})

    def test_numeric_coercion_float(self):
        assert matches("(cpuusage<=0.2)", {"cpuusage": 0.1})
        assert not matches("(cpuusage<=0.2)", {"cpuusage": 0.5})

    def test_gte_lte(self):
        props = {"ranking": 10}
        assert matches("(ranking>=10)", props)
        assert matches("(ranking<=10)", props)
        assert not matches("(ranking>=11)", props)

    def test_boolean_coercion(self):
        assert matches("(enabled=true)", {"enabled": True})
        assert matches("(enabled=FALSE)", {"enabled": False})
        assert not matches("(enabled=true)", {"enabled": False})

    def test_version_coercion(self):
        props = {"version": Version.parse("1.5.0")}
        assert matches("(version>=1.0)", props)
        assert not matches("(version>=2.0)", props)

    def test_uncoercible_value_no_match(self):
        assert not matches("(priority=abc)", {"priority": 2})

    def test_approx_ignores_case_and_whitespace(self):
        assert matches("(desc~=SmartCamera)", {"desc": "smart camera"})

    def test_list_valued_attribute_matches_any(self):
        props = {"objectClass": ["IFoo", "IBar"]}
        assert matches("(objectClass=IBar)", props)
        assert not matches("(objectClass=IBaz)", props)


class TestPresenceAndSubstring:
    def test_presence(self):
        assert matches("(name=*)", {"name": "x"})
        assert not matches("(name=*)", {"other": "x"})

    def test_prefix(self):
        assert matches("(name=cam*)", {"name": "camera"})
        assert not matches("(name=cam*)", {"name": "display"})

    def test_suffix(self):
        assert matches("(name=*era)", {"name": "camera"})
        assert not matches("(name=*era)", {"name": "cameras"})

    def test_contains(self):
        assert matches("(name=*mer*)", {"name": "camera"})
        assert not matches("(name=*xyz*)", {"name": "camera"})

    def test_multi_chunk(self):
        assert matches("(path=a*b*c)", {"path": "aXXbYYc"})
        assert not matches("(path=a*b*c)", {"path": "acb"})

    def test_wildcards_match_empty(self):
        # RFC 1960 '*' matches zero or more characters.
        assert matches("(x=a*bc*c)", {"x": "abcc"})
        assert matches("(x=a*bc*c)", {"x": "abcXc"})

    def test_chunks_may_not_overlap(self):
        # The final 'bc' needs its own characters after the middle one.
        assert not matches("(x=a*bc*bc)", {"x": "abc"})
        assert matches("(x=a*bc*bc)", {"x": "abcbc"})

    def test_escaped_star_is_literal(self):
        assert matches(r"(name=a\*b)", {"name": "a*b"})
        assert not matches(r"(name=a\*b)", {"name": "aXb"})

    def test_number_substring_uses_string_form(self):
        assert matches("(value=12*)", {"value": "123"})


class TestBooleanOperators:
    def test_and(self):
        props = {"a": 1, "b": 2}
        assert matches("(&(a=1)(b=2))", props)
        assert not matches("(&(a=1)(b=3))", props)

    def test_or(self):
        props = {"a": 1}
        assert matches("(|(a=2)(a=1))", props)
        assert not matches("(|(a=2)(a=3))", props)

    def test_not(self):
        assert matches("(!(a=1))", {"a": 2})
        assert not matches("(!(a=1))", {"a": 1})

    def test_nested(self):
        f = "(&(objectclass=camera)(|(cpu=0)(cpu=1))(!(disabled=true)))"
        assert matches(f, {"objectclass": "camera", "cpu": 1,
                           "disabled": False})
        assert not matches(f, {"objectclass": "camera", "cpu": 2,
                               "disabled": False})

    def test_single_child_and(self):
        assert matches("(&(a=1))", {"a": 1})


class TestParsing:
    def test_whitespace_tolerated(self):
        assert matches("( & (a=1) (b=2) )", {"a": 1, "b": 2})

    @pytest.mark.parametrize("bad", [
        "",
        "(",
        "(a=1",
        "a=1",
        "(a=1))",
        "(&)",
        "(a)",
        "(=1)",
        "((a=1))",
        "(a>1)",   # '>' must be '>='
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(InvalidFilterError):
            parse_filter(bad)

    def test_wildcard_with_ordering_operator_rejected(self):
        with pytest.raises(InvalidFilterError):
            parse_filter("(a>=1*2)")

    def test_escape_helper(self):
        assert escape("a(b)c*d\\e") == r"a\(b\)c\*d\\e"
        noisy = "we(ird)*na\\me"
        assert matches("(key=%s)" % escape(noisy), {"key": noisy})

    def test_str_normalizes(self):
        f = parse_filter("( a = 1 )")
        assert str(f) == "(a = 1)" or "(a" in str(f)

    def test_filter_equality_and_hash(self):
        a = parse_filter("(&(x=1)(y=2))")
        b = parse_filter("(&(x=1)(y=2))")
        assert a == b and hash(a) == hash(b)

    def test_parse_idempotent(self):
        f = parse_filter("(a=1)")
        assert parse_filter(f) is not None
        assert LDAPFilter(f).matches({"a": 1})
