"""DRT4xx RT-safety AST checks over implementation classes.

Purely syntactic: the sources are never imported, only parsed."""

import textwrap

from repro.lint import Severity
from repro.lint.rtsafety import check_python_source


def lint_source(body):
    source = textwrap.dedent(body)
    return check_python_source(source, "impl.py")


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


RT_CLASS = """\
    import time
    import socket
    from repro.core.implementation import RTImplementation

    class Impl(RTImplementation):
        def compute_ns(self, now_ns):
%s
            return 1000
"""


def rt_body(*lines):
    return RT_CLASS % "\n".join("            " + line
                                for line in lines)


class TestBlockingCalls:
    def test_time_sleep_in_rt_callback_is_drt401(self):
        diags = lint_source(rt_body("time.sleep(0.01)"))
        assert codes(diags) == ["DRT401"]
        assert diags[0].severity is Severity.ERROR
        assert "compute_ns" in diags[0].message

    def test_aliased_import_is_still_caught(self):
        diags = lint_source("""\
            import time as t
            from repro.core.implementation import RTImplementation

            class Impl(RTImplementation):
                def execute(self):
                    t.sleep(1)
        """)
        assert codes(diags) == ["DRT401"]

    def test_from_import_sleep_is_caught(self):
        diags = lint_source("""\
            from time import sleep
            from repro.core.implementation import RTImplementation

            class Impl(RTImplementation):
                def compute_ns(self, now_ns):
                    sleep(1)
        """)
        assert codes(diags) == ["DRT401"]

    def test_sleep_outside_rt_callback_is_allowed(self):
        diags = lint_source("""\
            import time
            from repro.core.implementation import RTImplementation

            class Impl(RTImplementation):
                def init(self, context):
                    time.sleep(0.1)

                def compute_ns(self, now_ns):
                    return 1000
        """)
        assert codes(diags) == []

    def test_sleep_in_plain_class_is_allowed(self):
        diags = lint_source("""\
            import time

            class NotAComponent:
                def compute_ns(self, now_ns):
                    time.sleep(1)
        """)
        assert codes(diags) == []


class TestIOCalls:
    def test_open_in_rt_callback_is_drt402(self):
        diags = lint_source(rt_body("open('/tmp/x')"))
        assert codes(diags) == ["DRT402"]

    def test_socket_use_is_drt402(self):
        diags = lint_source(rt_body("socket.socket()"))
        assert codes(diags) == ["DRT402"]

    def test_print_is_a_drt402_warning_only(self):
        diags = lint_source(rt_body("print('tick')"))
        assert codes(diags) == ["DRT402"]
        assert diags[0].severity is Severity.WARNING


class TestServiceLookups:
    def test_get_service_in_rt_callback_is_drt403(self):
        diags = lint_source(rt_body(
            "svc = self.context.get_service(ref)"))
        assert codes(diags) == ["DRT403"]

    def test_register_service_is_drt403(self):
        diags = lint_source(rt_body(
            "self.context.register_service('x', self)"))
        assert codes(diags) == ["DRT403"]


class TestUnboundedGrowth:
    def test_self_list_append_is_drt404(self):
        diags = lint_source(rt_body("self.history.append(now_ns)"))
        assert codes(diags) == ["DRT404"]
        assert diags[0].severity is Severity.WARNING

    def test_local_list_append_is_allowed(self):
        diags = lint_source(rt_body("local = []",
                                    "local.append(now_ns)"))
        assert codes(diags) == []


class TestInheritanceDiscovery:
    def test_indirect_subclass_is_checked(self):
        diags = lint_source("""\
            import time
            from repro.core.implementation import RTImplementation

            class Base(RTImplementation):
                pass

            class Leaf(Base):
                def compute_ns(self, now_ns):
                    time.sleep(1)
        """)
        assert codes(diags) == ["DRT401"]

    def test_syntax_error_is_drt400(self):
        diags = check_python_source("def broken(:\n", "impl.py")
        assert codes(diags) == ["DRT400"]
