"""DRT2xx wiring-graph analyzers: satisfaction, mismatches, ambiguity,
cycles -- all from PortSpec signatures, no runtime involved."""

from repro.core.descriptor import ComponentDescriptor
from repro.core.ports import PortDirection, PortSpec
from repro.lint import Severity, lint_descriptors
from repro.rtos.task import TaskType


def component(name, outs=(), ins=(), enabled=True, interface="RTAI.SHM",
              cpu_usage=0.01):
    ports = []
    for spec in outs:
        ports.append(_port(spec, PortDirection.OUT, interface))
    for spec in ins:
        ports.append(_port(spec, PortDirection.IN, interface))
    return ComponentDescriptor(
        name=name, implementation="wire.%s" % name,
        task_type=TaskType.PERIODIC, cpu_usage=cpu_usage,
        frequency_hz=100.0, priority=2, enabled=enabled, ports=ports)


def _port(spec, direction, interface):
    if isinstance(spec, str):
        spec = (spec, "Integer", 4)
    name, data_type, size = spec
    return PortSpec(name, direction, interface, data_type, size)


def wiring(diagnostics):
    return [d for d in diagnostics if d.code.startswith("DRT2")]


def codes(diagnostics):
    return sorted(d.code for d in wiring(diagnostics))


class TestSatisfaction:
    def test_satisfied_chain_is_clean(self):
        diags = lint_descriptors([
            component("PROD00", outs=["DATA00"]),
            component("CONS00", ins=["DATA00"]),
        ])
        assert wiring(diags) == []

    def test_missing_provider_is_drt201(self):
        diags = lint_descriptors([component("CONS00", ins=["DATA00"])])
        assert codes(diags) == ["DRT201"]
        assert wiring(diags)[0].component == "CONS00"
        assert wiring(diags)[0].severity is Severity.ERROR

    def test_disabled_provider_does_not_satisfy(self):
        diags = lint_descriptors([
            component("PROD00", outs=["DATA00"], enabled=False),
            component("CONS00", ins=["DATA00"]),
        ])
        assert "DRT201" in codes(diags)

    def test_size_mismatch_is_drt202_not_drt201(self):
        diags = lint_descriptors([
            component("PROD00", outs=[("DATA00", "Integer", 4)]),
            component("CONS00", ins=[("DATA00", "Integer", 8)]),
        ])
        assert "DRT202" in codes(diags)
        assert "DRT201" not in codes(diags)
        mismatch = [d for d in diags if d.code == "DRT202"][0]
        assert "PROD00" in mismatch.message

    def test_type_and_interface_mismatches_are_drt202(self):
        diags = lint_descriptors([
            component("PROD00", outs=[("DATA00", "Byte", 4)]),
            component("CONS00", ins=[("DATA00", "Integer", 4)]),
        ])
        assert "DRT202" in codes(diags)
        diags = lint_descriptors([
            component("PROD00", outs=["DATA00"],
                      interface="RTAI.Mailbox"),
            component("CONS00", ins=["DATA00"]),
        ])
        assert "DRT202" in codes(diags)


class TestAmbiguityAndDangling:
    def test_two_providers_one_consumer_is_drt203(self):
        diags = lint_descriptors([
            component("PRODA0", outs=["DATA00"]),
            component("PRODB0", outs=["DATA00"]),
            component("CONS00", ins=["DATA00"]),
        ])
        assert "DRT203" in codes(diags)

    def test_two_providers_no_consumer_is_not_ambiguous(self):
        diags = lint_descriptors([
            component("PRODA0", outs=["DATA00"]),
            component("PRODB0", outs=["DATA00"]),
        ])
        assert "DRT203" not in codes(diags)

    def test_dangling_outport_is_drt205_info(self):
        diags = lint_descriptors([component("PROD00",
                                            outs=["DATA00"])])
        assert codes(diags) == ["DRT205"]
        assert wiring(diags)[0].severity is Severity.INFO

    def test_fifo_outport_is_exempt_from_drt205(self):
        diags = lint_descriptors([
            component("PROD00", outs=["DATA00"],
                      interface="RTAI.FIFO")])
        assert wiring(diags) == []


class TestCycles:
    def test_two_cycle_is_drt204(self):
        diags = lint_descriptors([
            component("CYCA00", outs=["LINKA0"], ins=["LINKB0"]),
            component("CYCB00", outs=["LINKB0"], ins=["LINKA0"]),
        ])
        assert "DRT204" in codes(diags)
        cycle = [d for d in diags if d.code == "DRT204"][0]
        assert "CYCA00" in cycle.message and "CYCB00" in cycle.message

    def test_three_cycle_is_detected_once(self):
        diags = lint_descriptors([
            component("CYCA00", outs=["LINKA0"], ins=["LINKC0"]),
            component("CYCB00", outs=["LINKB0"], ins=["LINKA0"]),
            component("CYCC00", outs=["LINKC0"], ins=["LINKB0"]),
        ])
        assert codes(diags).count("DRT204") == 1

    def test_self_loop_is_drt204(self):
        diags = lint_descriptors([
            component("SELF00", outs=["LOOP00"], ins=["LOOP00"]),
        ])
        assert "DRT204" in codes(diags)

    def test_linear_chain_is_not_a_cycle(self):
        diags = lint_descriptors([
            component("STAGE0", outs=["LINKA0"]),
            component("STAGE1", outs=["LINKB0"], ins=["LINKA0"]),
            component("STAGE2", ins=["LINKB0"]),
        ])
        assert "DRT204" not in codes(diags)

    def test_deep_chain_does_not_recurse(self):
        # 500 components in a line: the iterative Tarjan must cope.
        members = [component("C%05d" % 0, outs=["P%05d" % 0])]
        for index in range(1, 500):
            members.append(component(
                "C%05d" % index, outs=["P%05d" % index],
                ins=["P%05d" % (index - 1)], cpu_usage=0.0001))
        diags = lint_descriptors(members)
        assert "DRT204" not in codes(diags)
