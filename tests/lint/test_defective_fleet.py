"""Acceptance: linting a generated defective fleet reports every
planted defect with its expected DRT code -- exact-match on the
error-level findings."""

import pytest

from repro.lint import Severity, lint_descriptors
from repro.workloads import DEFECT_CODES, generate_defective_fleet


def error_codes(diagnostics):
    return sorted({d.code for d in diagnostics
                   if d.severity is Severity.ERROR})


class TestDefectiveFleet:
    @pytest.mark.parametrize("seed", [1, 7, 2008, 424242])
    def test_all_planted_defects_are_found_exactly(self, seed):
        descriptors, expected = generate_defective_fleet(seed)
        assert expected == sorted(DEFECT_CODES.values())
        diags = lint_descriptors(descriptors)
        assert error_codes(diags) == expected

    def test_single_defect_subset(self):
        descriptors, expected = generate_defective_fleet(
            3, defects=("cycle",))
        assert expected == ["DRT204"]
        assert error_codes(lint_descriptors(descriptors)) == expected

    def test_healthy_base_fleet_has_no_errors(self):
        descriptors, expected = generate_defective_fleet(3, defects=())
        assert expected == []
        assert error_codes(lint_descriptors(descriptors)) == []

    def test_unknown_defect_is_rejected(self):
        with pytest.raises(ValueError):
            generate_defective_fleet(3, defects=("gremlins",))

    def test_fleet_is_seed_deterministic(self):
        first, _ = generate_defective_fleet(99)
        second, _ = generate_defective_fleet(99)
        assert [d.to_xml() for d in first] \
            == [d.to_xml() for d in second]
