"""drtlint CLI and engine plumbing: exit codes, JSON schema
stability, the ``--list-codes`` table, source dedupe, and the
acceptance check that the shipped examples lint clean at error
level."""

import json
import os
import subprocess
import sys

import pytest

from repro.lint.cli import main
from repro.lint.diagnostics import CODE_TABLE
from repro.workloads import generate_defective_plan

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
EXAMPLES = os.path.join(REPO, "examples")

CLEAN_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="CLEAN0" type="periodic" enabled="true"
               cpuusage="0.1">
  <implementation bincode="test.Clean"/>
  <periodictask frequence="100" runoncpu="0" priority="2"/>
</drt:component>"""

BROKEN_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="BROKEN" type="periodic" enabled="true"
               cpuusage="0.1">
  <implementation bincode="test.Broken"/>
  <periodictask frequence="100" runoncpu="0" priority="2"/>
  <inport name="NOPE00" interface="RTAI.SHM" type="Integer"
          size="4"/>
</drt:component>"""


WARN_XML = """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="WARNING7" type="periodic" enabled="true"
               cpuusage="0.1">
  <implementation bincode="test.Warn"/>
  <periodictask frequence="100" runoncpu="0" priority="2"/>
</drt:component>"""


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "clean.xml").write_text(CLEAN_XML)
    return str(tmp_path)


@pytest.fixture
def warning_tree(tmp_path):
    # An over-long name truncates into the RTAI task name: DRT103,
    # a warning -- the tree's only finding.
    (tmp_path / "warn.xml").write_text(WARN_XML)
    return str(tmp_path)


@pytest.fixture
def broken_tree(tmp_path):
    (tmp_path / "broken.xml").write_text(BROKEN_XML)
    return str(tmp_path)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main([clean_tree]) == 0
        assert "0 diagnostic(s)" in capsys.readouterr().out

    def test_error_finding_exits_one(self, broken_tree, capsys):
        assert main([broken_tree]) == 1
        assert "DRT201" in capsys.readouterr().out

    def test_fail_on_threshold_is_respected(self, clean_tree, capsys):
        # A dangling outport is only an info: below every threshold
        # the CLI accepts.
        assert main([clean_tree, "--fail-on", "warning"]) == 0
        capsys.readouterr()

    def test_missing_path_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nosuchdir")
        assert main([missing]) == 2
        assert "nosuchdir" in capsys.readouterr().err

    def test_warning_passes_default_threshold(self, warning_tree,
                                              capsys):
        assert main([warning_tree]) == 0
        assert "DRT103" in capsys.readouterr().out

    def test_warning_fails_warning_threshold(self, warning_tree,
                                             capsys):
        assert main([warning_tree, "--fail-on", "warning"]) == 1
        capsys.readouterr()

    def test_unknown_family_exits_two(self, clean_tree, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([clean_tree, "--family", "DRT9"])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_no_paths_without_list_codes_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code == 2
        capsys.readouterr()

    def test_defective_plan_exits_one(self, tmp_path, capsys):
        document, expected = generate_defective_plan("overcommit")
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps(document))
        assert main([str(plan), "--family", "DRT6"]) == 1
        assert expected in capsys.readouterr().out

    def test_warning_grade_plan_needs_the_threshold(self, tmp_path,
                                                    capsys):
        # DRT604 is a warning: passes at the default threshold,
        # fails at --fail-on warning.
        document, _ = generate_defective_plan("latency_budget")
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps(document))
        assert main([str(plan), "--family", "DRT6"]) == 0
        capsys.readouterr()
        assert main([str(plan), "--family", "DRT6",
                     "--fail-on", "warning"]) == 1
        assert "DRT604" in capsys.readouterr().out


class TestListCodes:
    def test_lists_every_code_and_exits_zero(self, capsys):
        assert main(["--list-codes"]) == 0
        out = capsys.readouterr().out
        for code in CODE_TABLE:
            assert code in out
        assert "%d diagnostic codes" % len(CODE_TABLE) in out

    def test_table_rows_carry_severity_and_family(self, capsys):
        main(["--list-codes"])
        out = capsys.readouterr().out
        assert "DRT601  error    deployment" in out
        assert "DRT604  warning  deployment" in out


class TestSourceDedupe:
    def test_file_named_twice_lints_once(self, broken_tree, capsys):
        # The same file via its path and its parent directory: one
        # source, one finding -- and no DRT101 name collision from
        # the phantom duplicate.
        broken_file = os.path.join(broken_tree, "broken.xml")
        assert main([broken_file, broken_tree, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["sources"] == 1
        assert payload["summary"]["by_code"] == {"DRT201": 1}


class TestJsonOutput:
    def test_json_schema_is_stable(self, broken_tree, capsys):
        main([broken_tree, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["tool"] == "drtlint"
        assert sorted(payload) == ["diagnostics", "summary", "tool",
                                   "version"]
        assert sorted(payload["summary"]) == [
            "by_code", "by_severity", "diagnostics", "sources",
            "units"]
        # Severity keys are always present, even at zero.
        assert sorted(payload["summary"]["by_severity"]) == [
            "error", "info", "warning"]
        for record in payload["diagnostics"]:
            assert sorted(record) == ["code", "component", "fix_hint",
                                      "location", "message",
                                      "severity"]

    def test_json_reports_the_finding(self, broken_tree, capsys):
        main([broken_tree, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["by_code"].get("DRT201") == 1
        record = payload["diagnostics"][0]
        assert record["code"] == "DRT201"
        assert record["component"] == "BROKEN"

    def test_family_filter_limits_analyzers(self, broken_tree,
                                            capsys):
        # Wiring excluded: the unsatisfied inport goes unreported.
        assert main([broken_tree, "--json", "--family",
                     "contract"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["diagnostics"] == 0


class TestTelemetry:
    def test_lint_paths_records_counters(self, broken_tree):
        from repro.lint import lint_paths
        from repro.telemetry.metrics import Telemetry

        telemetry = Telemetry()
        result = lint_paths([broken_tree], telemetry=telemetry)
        registry = telemetry.registry("lint")
        assert registry.get("runs_total").value == 1
        assert registry.get("units_total").value == result.units
        assert registry.get("sources_total").value == result.sources
        assert registry.get("diagnostics_total").value \
            == len(result.diagnostics)
        assert registry.get("severity.error").value == 1
        assert registry.get("code.DRT201").value == 1


class TestExamplesAcceptance:
    def test_shipped_examples_lint_clean_at_error_level(self):
        # The ISSUE acceptance check, run exactly as CI runs it.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", EXAMPLES,
             "--fail-on", "error"],
            capture_output=True, text=True, env=env, cwd=REPO)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_module_invocation_knows_the_lint_subcommand(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--help"],
            capture_output=True, text=True, env=env, cwd=REPO)
        assert result.returncode == 0
        assert "--fail-on" in result.stdout
