"""DRT1xx contract analyzers: schema, names, priorities, CPU claims."""

from repro.core.descriptor import ComponentDescriptor
from repro.lint import Severity, lint_descriptors
from repro.lint.contracts import MAX_SCHEDULER_PRIORITY
from repro.lint.engine import lint_descriptor_texts
from repro.rtos.task import TaskType


def xml(name="GOOD00", task="periodictask", attrs="frequence=\"100\"",
        extra="", type_name="periodic", cpuusage="0.1", priority=2):
    return """<?xml version="1.0" encoding="UTF-8"?>
<drt:component name="%s" type="%s" enabled="true" cpuusage="%s">
  <implementation bincode="test.Impl"/>
  <%s %s runoncpu="0" priority="%d"/>
  %s
</drt:component>""" % (name, type_name, cpuusage, task, attrs,
                       priority, extra)


def lint_xml(*texts):
    return lint_descriptor_texts(
        [("test.xml", text) for text in texts])


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


class TestParseFailures:
    def test_unparseable_xml_is_drt100(self):
        diags = lint_xml("<drt:component name='broken'")
        assert codes(diags) == ["DRT100"]
        assert diags[0].severity is Severity.ERROR

    def test_contract_violation_is_drt100(self):
        # cpuusage out of [0, 1] fails descriptor validation.
        diags = lint_xml(xml(cpuusage="1.5"))
        assert "DRT100" in codes(diags)

    def test_clean_descriptor_has_no_findings(self):
        assert lint_xml(xml()) == []


class TestSchemaBeyondParse:
    def test_unknown_attribute_is_drt107(self):
        diags = lint_xml(xml(attrs='frequence="100" frequencyy="9"'))
        assert codes(diags) == ["DRT107"]
        assert "frequencyy" in diags[0].message

    def test_papers_runoncup_spelling_is_not_flagged(self):
        assert lint_xml(xml(attrs='frequence="100" runoncup="0"')) \
            == []

    def test_frequency_on_aperiodic_task_is_drt104(self):
        diags = lint_xml(xml(task="aperiodictask",
                             attrs='frequence="100"',
                             type_name="aperiodic", cpuusage="0"))
        assert codes(diags) == ["DRT104"]

    def test_frequency_on_sporadic_task_is_drt104(self):
        diags = lint_xml(xml(
            task="sporadictask",
            attrs='mininterarrival_ns="1000000" frequency="10"',
            type_name="sporadic"))
        assert codes(diags) == ["DRT104"]


class TestNameChecks:
    def test_duplicate_component_name_is_drt101(self):
        diags = lint_xml(xml(), xml())
        assert "DRT101" in codes(diags)

    def test_nam2num_collision_is_drt102(self):
        # Distinct names, same canonical RTAI name (case folds).
        diags = lint_xml(xml(name="TASK01"), xml(name="task01"))
        assert "DRT102" in codes(diags)
        assert "DRT101" not in codes(diags)

    def test_long_name_truncation_is_drt103(self):
        diags = lint_xml(xml(name="calculation"))
        drt103 = [d for d in diags if d.code == "DRT103"]
        assert len(drt103) == 1
        assert drt103[0].severity is Severity.WARNING
        # The derived kernel name is spelled out in the message.
        assert "CALCAL" in drt103[0].message

    def test_derived_name_collision_is_drt102(self):
        # Both names derive the same 3+3 RTAI name.
        diags = lint_xml(xml(name="calculation"),
                         xml(name="calcatrix"))
        assert "DRT102" in codes(diags)


class TestContractValues:
    def test_priority_beyond_scheduler_range_is_drt105(self):
        diags = lint_xml(xml(priority=MAX_SCHEDULER_PRIORITY + 1))
        assert codes(diags) == ["DRT105"]
        assert diags[0].severity is Severity.ERROR

    def test_priority_at_scheduler_limit_is_clean(self):
        assert lint_xml(xml(priority=MAX_SCHEDULER_PRIORITY)) == []

    def test_zero_cpu_claim_is_drt106(self):
        diags = lint_xml(xml(cpuusage="0"))
        assert codes(diags) == ["DRT106"]
        assert diags[0].severity is Severity.WARNING

    def test_disabled_component_is_drt108_info(self):
        descriptor = ComponentDescriptor(
            "OFF000", "x.Off", TaskType.PERIODIC, enabled=False,
            cpu_usage=0.1, frequency_hz=100.0)
        diags = lint_descriptors([descriptor])
        assert codes(diags) == ["DRT108"]
        assert diags[0].severity is Severity.INFO
