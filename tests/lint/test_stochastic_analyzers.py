"""DRT7xx: the stochastic-contract analyzer family."""

import pytest

from repro.core.contracts import (
    DEFAULT_MONITOR_EPOCH_NS,
    DistributionSpec,
    StochasticContract,
)
from repro.core.descriptor import ComponentDescriptor
from repro.lint.diagnostics import CODE_TABLE, Severity
from repro.lint.engine import (
    FAMILIES,
    FAMILY_ALIASES,
    lint_descriptor_texts,
    lint_descriptors,
    resolve_family,
)
from repro.lint.stochastic import check_descriptor
from repro.rtos.task import TaskType
from repro.workloads import generate_defective_fleet


def _codes(diagnostics):
    return sorted({d.code for d in diagnostics})


def _periodic(stochastic, cpu_usage=0.01, frequency_hz=1000.0):
    # period 1 ms; derived WCET = ceil(cpu_usage * period) = 10 us.
    # 1 kHz keeps ~1000 samples per default epoch, far above any
    # min_samples here, so only the targeted code fires per test.
    return ComponentDescriptor(
        name="STOC00", implementation="impl.Class",
        task_type=TaskType.PERIODIC, cpu_usage=cpu_usage,
        frequency_hz=frequency_hz, priority=5, stochastic=stochastic)


def _sporadic(stochastic, mia_ns=2_000_000, cpu_usage=0.05):
    return ComponentDescriptor(
        name="SPOR00", implementation="impl.Class",
        task_type=TaskType.SPORADIC, cpu_usage=cpu_usage,
        min_interarrival_ns=mia_ns, priority=5, stochastic=stochastic)


def test_code_table_has_the_family():
    for code in ("DRT700", "DRT701", "DRT702"):
        severity, trigger, hint = CODE_TABLE[code]
        assert trigger and hint
    assert CODE_TABLE["DRT700"][0] is Severity.ERROR
    assert CODE_TABLE["DRT701"][0] is Severity.ERROR
    assert CODE_TABLE["DRT702"][0] is Severity.WARNING


def test_family_aliases_resolve():
    assert "stochastic" in FAMILIES
    assert resolve_family("stochastic") == "stochastic"
    assert resolve_family("DRT7") == "stochastic"
    assert resolve_family("drt7") == "stochastic"
    assert FAMILY_ALIASES["DRT7"] == "stochastic"


def test_resolver_checks_the_family_by_default():
    from repro.lint.resolver import _DEFAULT_FAMILIES
    assert "stochastic" in _DEFAULT_FAMILIES


class TestDrt700:
    def test_interarrival_on_periodic_is_unmonitorable(self):
        stochastic = StochasticContract(
            interarrival=DistributionSpec("exponential",
                                          mean_ns=5_000_000))
        diagnostics = check_descriptor(_periodic(stochastic), "<x>")
        assert _codes(diagnostics) == ["DRT700"]

    def test_interarrival_on_sporadic_is_fine(self):
        # Well above the 2 ms MIA: Phi(-3.33) mass below it.
        stochastic = StochasticContract(
            interarrival=DistributionSpec("normal", mean_ns=3_000_000,
                                          std_ns=300_000),
            min_samples=16)
        assert check_descriptor(_sporadic(stochastic), "<x>") == []


class TestDrt701:
    def test_exectime_mean_above_wcet(self):
        # Derived WCET 10 us; declared average demand 20 us.
        stochastic = StochasticContract(
            exectime=DistributionSpec("uniform", min_ns=15_000,
                                      max_ns=25_000))
        diagnostics = check_descriptor(_periodic(stochastic), "<x>")
        assert _codes(diagnostics) == ["DRT701"]
        assert "mean" in diagnostics[0].message

    def test_exectime_tail_mass_above_wcet(self):
        # Mean is fine (8.5 us < 10 us WCET) but over a quarter of
        # the mass sits past the WCET -- overruns by declaration.
        stochastic = StochasticContract(
            exectime=DistributionSpec("uniform", min_ns=5_000,
                                      max_ns=12_000),
            tolerance=0.01)
        diagnostics = check_descriptor(_periodic(stochastic), "<x>")
        assert _codes(diagnostics) == ["DRT701"]
        assert "mass" in diagnostics[0].message

    def test_exectime_tail_within_tolerance_is_fine(self):
        stochastic = StochasticContract(
            exectime=DistributionSpec("uniform", min_ns=1_000,
                                      max_ns=9_000))
        assert check_descriptor(_periodic(stochastic), "<x>") == []

    def test_interarrival_mean_below_mia(self):
        stochastic = StochasticContract(
            interarrival=DistributionSpec("normal", mean_ns=1_000_000,
                                          std_ns=50_000),
            min_samples=16)
        diagnostics = check_descriptor(_sporadic(stochastic), "<x>")
        assert _codes(diagnostics) == ["DRT701"]

    def test_exponential_interarrival_always_has_throttled_mass(self):
        # The memoryless family puts mass near zero no matter the
        # mean, so some arrivals are always below the MIA; a sporadic
        # declaration must use a bounded/normal family above the MIA.
        stochastic = StochasticContract(
            interarrival=DistributionSpec("exponential",
                                          mean_ns=20_000_000),
            min_samples=8)
        diagnostics = check_descriptor(_sporadic(stochastic), "<x>")
        assert _codes(diagnostics) == ["DRT701"]


class TestDrt702:
    def test_unverifiable_min_samples(self):
        # 5 Hz -> 5 observations per default 1 s epoch against
        # min_samples=32.  WCET is 2 ms; the declared execution times
        # fit well inside it, so DRT702 is the only finding.
        stochastic = StochasticContract(
            exectime=DistributionSpec("uniform", min_ns=100_000,
                                      max_ns=1_000_000),
            min_samples=32)
        descriptor = _periodic(stochastic, frequency_hz=5.0)
        diagnostics = check_descriptor(descriptor, "<x>")
        assert _codes(diagnostics) == ["DRT702"]

    def test_fast_component_accrues_samples(self):
        stochastic = StochasticContract(
            exectime=DistributionSpec("uniform", min_ns=1_000,
                                      max_ns=9_000),
            min_samples=32)
        descriptor = _periodic(stochastic)
        assert check_descriptor(descriptor, "<x>") == []

    def test_epoch_override_changes_the_verdict(self):
        stochastic = StochasticContract(
            exectime=DistributionSpec("uniform", min_ns=100_000,
                                      max_ns=1_000_000),
            min_samples=32)
        descriptor = _periodic(stochastic, frequency_hz=5.0)
        assert _codes(check_descriptor(
            descriptor, "<x>",
            epoch_ns=100 * DEFAULT_MONITOR_EPOCH_NS)) == []


def test_family_filtering_in_lint_descriptors():
    stochastic = StochasticContract(
        interarrival=DistributionSpec("exponential",
                                      mean_ns=5_000_000))
    descriptor = _periodic(stochastic)  # DRT700, nothing else
    diagnostics = lint_descriptors([descriptor],
                                   families=("stochastic",))
    assert _codes(diagnostics) == ["DRT700"]
    assert lint_descriptors([descriptor],
                            families=("contract",)) == []


def test_xml_clause_flows_through_the_engine():
    stochastic = StochasticContract(
        exectime=DistributionSpec("uniform", min_ns=15_000,
                                  max_ns=25_000))
    xml = _periodic(stochastic).to_xml()
    diagnostics = lint_descriptor_texts([("<mem>", xml)],
                                        families=("stochastic",))
    assert _codes(diagnostics) == ["DRT701"]


def test_descriptor_without_clause_is_exempt(tmp_path):
    descriptor = ComponentDescriptor(
        name="PLAIN0", implementation="impl.Class",
        task_type=TaskType.PERIODIC, cpu_usage=0.05,
        frequency_hz=100.0, priority=4)
    assert check_descriptor(descriptor, "<x>") == []


def test_defective_fleet_plants_the_mismatch():
    descriptors, expected = generate_defective_fleet(
        seed=17, defects=("stochastic_mismatch",))
    assert "DRT701" in expected
    diagnostics = lint_descriptors(descriptors,
                                   families=("stochastic",))
    errors = [d for d in diagnostics
              if CODE_TABLE[d.code][0] is Severity.ERROR]
    assert _codes(errors) == ["DRT701"]
    assert {d.component for d in errors} == {"STOC00"}


def test_cli_accepts_drt7_alias(tmp_path, capsys):
    from repro.lint.cli import main
    stochastic = StochasticContract(
        exectime=DistributionSpec("uniform", min_ns=1_000,
                                  max_ns=9_000),
        min_samples=8)
    path = tmp_path / "clean.xml"
    path.write_text(_periodic(stochastic).to_xml(), encoding="utf-8")
    status = main(["--family", "DRT7", str(tmp_path)])
    out = capsys.readouterr().out
    assert status == 0
    assert "0 error" in out
