"""DRT3xx admission analyzers: static schedulability over declared
contracts, per CPU, reusing repro.analysis bounds."""

from repro.core.descriptor import ComponentDescriptor
from repro.lint import Severity, lint_descriptors
from repro.rtos.task import TaskType


def component(name, cpu_usage, frequency_hz=100.0, priority=2, cpu=0,
              enabled=True, task_type=TaskType.PERIODIC):
    kwargs = {}
    if task_type is TaskType.PERIODIC:
        kwargs["frequency_hz"] = frequency_hz
    return ComponentDescriptor(
        name=name, implementation="adm.%s" % name, task_type=task_type,
        cpu_usage=cpu_usage, priority=priority, cpu=cpu,
        enabled=enabled, **kwargs)


def admission(diagnostics):
    return [d for d in diagnostics if d.code.startswith("DRT3")]


def codes(diagnostics):
    return sorted(d.code for d in admission(diagnostics))


class TestOverAdmission:
    def test_under_committed_cpu_is_clean(self):
        diags = lint_descriptors([
            component("LOAD%02d" % i, 0.2, priority=i)
            for i in range(4)])
        assert "DRT301" not in codes(diags)

    def test_total_claims_past_one_cpu_is_drt301(self):
        diags = lint_descriptors([
            component("LOAD%02d" % i, 0.4, priority=i)
            for i in range(3)])
        assert "DRT301" in codes(diags)
        over = [d for d in diags if d.code == "DRT301"][0]
        assert over.severity is Severity.ERROR
        assert "1.20" in over.message

    def test_claims_are_summed_per_cpu_not_globally(self):
        # 0.6 on CPU 0 plus 0.6 on CPU 1: each core is fine.
        diags = lint_descriptors([
            component("CPUA00", 0.6, cpu=0, priority=1),
            component("CPUB00", 0.6, cpu=1, priority=1),
        ])
        assert "DRT301" not in codes(diags)

    def test_disabled_components_do_not_count(self):
        diags = lint_descriptors([
            component("LOAD%02d" % i, 0.4, priority=i,
                      enabled=(i < 2))
            for i in range(3)])
        assert "DRT301" not in codes(diags)


class TestResponseTimes:
    def test_rta_failure_is_drt302_on_the_victim(self):
        # The hog leaves no room: the slow task's RTA diverges.
        diags = lint_descriptors([
            component("HOG000", 0.9, frequency_hz=1000.0, priority=0),
            component("SLOW00", 0.5, frequency_hz=10.0, priority=1),
        ])
        assert "DRT302" in codes(diags)
        victim = [d for d in diags if d.code == "DRT302"][0]
        assert victim.component == "SLOW00"

    def test_schedulable_set_has_no_drt302(self):
        diags = lint_descriptors([
            component("FAST00", 0.25, frequency_hz=100.0, priority=0),
            component("SLOW00", 0.25, frequency_hz=10.0, priority=1),
        ])
        assert "DRT302" not in codes(diags)


class TestPriorityBands:
    def test_hot_equal_priority_band_is_drt303(self):
        # Two tasks sharing one priority at a combined 0.9 > bound(2).
        diags = lint_descriptors([
            component("BANDA0", 0.45, priority=5),
            component("BANDB0", 0.45, priority=5),
        ])
        assert "DRT303" in codes(diags)

    def test_cool_band_is_clean(self):
        diags = lint_descriptors([
            component("BANDA0", 0.2, priority=5),
            component("BANDB0", 0.2, priority=5),
        ])
        assert "DRT303" not in codes(diags)

    def test_single_member_band_never_fires(self):
        diags = lint_descriptors([component("ALONE0", 0.95,
                                            priority=5)])
        assert "DRT303" not in codes(diags)


class TestRateMonotonicInversions:
    def test_slow_task_above_fast_task_is_drt304(self):
        # 10 Hz at priority 0 beats 100 Hz at priority 9: inverted.
        diags = lint_descriptors([
            component("SLOW00", 0.05, frequency_hz=10.0, priority=0),
            component("FAST00", 0.05, frequency_hz=100.0, priority=9),
        ])
        assert "DRT304" in codes(diags)
        inversion = [d for d in diags if d.code == "DRT304"][0]
        # The warning lands on the wrongly de-prioritized fast task.
        assert inversion.component == "FAST00"
        assert inversion.severity is Severity.WARNING

    def test_rm_consistent_order_is_clean(self):
        diags = lint_descriptors([
            component("FAST00", 0.05, frequency_hz=100.0, priority=0),
            component("SLOW00", 0.05, frequency_hz=10.0, priority=9),
        ])
        assert "DRT304" not in codes(diags)

    def test_aperiodic_tasks_are_ignored(self):
        # No period, no RM ordering to violate.
        diags = lint_descriptors([
            component("SLOW00", 0.05, frequency_hz=10.0, priority=0),
            component("APER00", 0.0, priority=9,
                      task_type=TaskType.APERIODIC),
        ])
        assert "DRT304" not in codes(diags)
