"""docs/STATIC_ANALYSIS.md and CODE_TABLE must agree code for code.

The doc renders the authoritative registry; a code added to either
side without the other is drift this test catches.  ``--list-codes``
prints the same registry, so the doc, the CLI table and the engine
can never disagree about what drtlint reports.
"""

import os
import re

from repro.lint.diagnostics import CODE_TABLE, Severity
from repro.lint.engine import FAMILIES, family_of_code

DOC = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__)))), "docs", "STATIC_ANALYSIS.md")

ROW = re.compile(r"^\|\s*(DRT\d{3})\s*\|\s*(error|warning|info)\s*\|",
                 re.M)


def doc_rows():
    with open(DOC, encoding="utf-8") as handle:
        return ROW.findall(handle.read())


def test_every_table_code_is_documented_and_vice_versa():
    documented = {code for code, _ in doc_rows()}
    assert documented == set(CODE_TABLE)


def test_documented_severities_match_the_registry():
    for code, severity in doc_rows():
        assert CODE_TABLE[code][0] is Severity.parse(severity), code


def test_no_duplicate_doc_rows():
    codes = [code for code, _ in doc_rows()]
    assert len(codes) == len(set(codes))


def test_every_code_resolves_to_a_known_family():
    for code in CODE_TABLE:
        assert family_of_code(code) in FAMILIES, code
