"""DRT6xx: deployment-plan analyzers.

Covers the plan parser (DRT600), the per-node hosting replay
(DRT601), N-1 failover capacity (DRT602), cross-node wiring
(DRT603), management-path latency (DRT604), and the rules-vs-topology
checks (DRT605/DRT606) -- plus the acceptance loops: every
``generate_defective_plan`` kind trips exactly its code, the
committed example plan is clean, and a live ``Cluster.export_plan()``
round-trips through the linter with zero DRT6xx findings.
"""

import json
import os

import pytest

from repro.cluster.federation import Cluster
from repro.core.descriptor import ComponentDescriptor, ComponentProperty
from repro.core.ports import PortDirection, PortSpec
from repro.lint import Severity, lint_paths, lint_plan
from repro.lint.deployment import (
    PLAN_SCHEMA_VERSION, lint_plan_source, looks_like_plan_file)
from repro.rtos.task import TaskType
from repro.sim.rng import RandomStreams
from repro.workloads import (
    PLAN_DEFECT_CODES, generate_component_set, generate_defective_plan)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
EXAMPLE_PLAN = os.path.join(REPO, "examples", "cluster_plan.json")


def xml(name, cpu_usage, frequency_hz=10.0, priority=10, cpu=0,
        deadline_ns=None, ports=(), properties=()):
    return ComponentDescriptor(
        name=name, implementation="test.%s" % name,
        task_type=TaskType.PERIODIC, cpu_usage=cpu_usage,
        frequency_hz=frequency_hz, priority=priority, cpu=cpu,
        deadline_ns=deadline_ns, ports=ports,
        properties=properties).to_xml()


def pinned(name, cpu_usage, cpu=0, priority=10):
    return xml(name, cpu_usage, cpu=cpu, priority=priority,
               properties=(ComponentProperty(
                   "drcom.placement", "String", "pinned"),))


def outport(name):
    return PortSpec(name, PortDirection.OUT, "RTAI.SHM", "Integer", 2)


def inport(name):
    return PortSpec(name, PortDirection.IN, "RTAI.SHM", "Integer", 2)


def plan_with(nodes=2, **extra):
    document = {
        "plan_version": PLAN_SCHEMA_VERSION,
        "nodes": [{"name": "node%d" % i, "num_cpus": 1}
                  for i in range(nodes)],
        "deployments": [],
    }
    document.update(extra)
    return document


def codes(result, family=None):
    found = [d.code for d in result.diagnostics]
    if family is not None:
        found = [c for c in found if c.startswith(family)]
    return sorted(set(found))


def deployment_findings(document):
    return lint_plan(document, families=("deployment",))


class TestPlanSniffing:
    def test_plan_version_marks_a_plan(self):
        assert looks_like_plan_file('{"plan_version": 1}')

    def test_nodes_plus_deployments_marks_a_plan(self):
        assert looks_like_plan_file(
            '{"nodes": [], "deployments": []}')

    def test_rule_documents_and_junk_are_not_plans(self):
        assert not looks_like_plan_file(
            '{"schema_version": 1, "rules": []}')
        assert not looks_like_plan_file("[1, 2]")
        assert not looks_like_plan_file("not json")


class TestPlanParsing:
    def test_invalid_json_is_drt600(self):
        diagnostics, units, sources = lint_plan_source("{nope")
        assert [d.code for d in diagnostics] == ["DRT600"]
        assert (units, sources) == (1, 1)

    def test_non_object_plan_is_drt600(self):
        result = deployment_findings(["not", "a", "plan"])
        assert codes(result) == ["DRT600"]

    @pytest.mark.parametrize("mutate, needle", [
        (lambda p: p.update(plan_version=99), "unsupported"),
        (lambda p: p.update(gremlins=1), "unknown top-level"),
        (lambda p: p.update(cap=-1.0), "'cap'"),
        (lambda p: p["nodes"].append({"name": "control"}), "reserved"),
        (lambda p: p["nodes"].append({"name": "node0"}), "duplicate"),
        (lambda p: p["nodes"].append(
            {"name": "nodeX", "num_cpus": 0}), "num_cpus"),
        (lambda p: p["deployments"].append(
            {"node": "ghost", "components": []}), "unknown node"),
        (lambda p: p.update(links=[
            {"src": "node0", "dst": "ghost"}]), "unknown endpoint"),
        (lambda p: p.update(links=[
            {"src": "node0", "dst": "node1",
             "latency_ns": -5}]), "links[0]"),
        (lambda p: p.update(applications={"app": ["GHOST0"]}),
         "no node deploys"),
    ])
    def test_schema_problems_are_drt600(self, mutate, needle):
        document = plan_with()
        mutate(document)
        result = deployment_findings(document)
        assert "DRT600" in codes(result)
        assert any(needle in d.message for d in result.diagnostics
                   if d.code == "DRT600")

    def test_duplicate_home_is_drt600(self):
        document = plan_with()
        text = xml("DUP000", 0.1)
        document["deployments"] = [
            {"node": "node0", "components": [{"xml": text}]},
            {"node": "node1", "components": [{"xml": text}]},
        ]
        result = deployment_findings(document)
        assert codes(result) == ["DRT600"]
        assert "both" in result.diagnostics[0].message

    def test_relative_source_without_base_dir_is_drt600(self):
        document = plan_with()
        document["deployments"] = [
            {"node": "node0", "components": ["nearby.xml"]}]
        result = deployment_findings(document)
        assert codes(result) == ["DRT600"]
        assert "no on-disk location" in result.diagnostics[0].message

    def test_unparseable_descriptor_is_excluded_not_fatal(self):
        document = plan_with()
        document["deployments"] = [
            {"node": "node0",
             "components": [{"xml": "<broken"},
                            {"xml": xml("OKC000", 0.1)}]}]
        result = deployment_findings(document)
        assert codes(result) == ["DRT600"]
        assert "excluded" in result.diagnostics[0].message


class TestHosting:
    def test_best_fit_spreads_over_cpus(self):
        document = plan_with(nodes=1)
        document["nodes"][0]["num_cpus"] = 2
        document["deployments"] = [{"node": "node0", "components": [
            {"xml": xml("FIT%03d" % i, 0.4, priority=10 + i)}
            for i in range(3)]}]
        assert codes(deployment_findings(document)) == []

    def test_pinned_beyond_cpu_count_is_drt601(self):
        document = plan_with(nodes=1)
        document["deployments"] = [{"node": "node0", "components": [
            {"xml": pinned("PIN000", 0.1, cpu=2)}]}]
        result = deployment_findings(document)
        assert codes(result) == ["DRT601"]
        assert "pinned to CPU 2" in result.diagnostics[0].message

    def test_pinned_oversubscription_is_drt601(self):
        document = plan_with(nodes=1)
        document["deployments"] = [{"node": "node0", "components": [
            {"xml": pinned("PIN000", 0.6)},
            {"xml": pinned("PIN001", 0.6, priority=11)}]}]
        result = deployment_findings(document)
        assert [d.code for d in result.diagnostics] == ["DRT601"]
        assert result.diagnostics[0].component == "PIN001"


class TestFailoverCapacity:
    def test_single_node_plans_skip_n1(self):
        document = plan_with(nodes=1)
        document["deployments"] = [{"node": "node0", "components": [
            {"xml": xml("ONE000", 0.9)}]}]
        assert codes(deployment_findings(document)) == []

    def test_application_groups_move_whole(self):
        # Two 0.3 members fit 0.45-loaded survivors separately, but
        # as one application group (0.6) neither survivor fits.
        document = plan_with(nodes=3)
        document["deployments"] = [
            {"node": "node0", "components": [
                {"xml": xml("GRP000", 0.3)},
                {"xml": xml("GRP001", 0.3, priority=11)}]},
            {"node": "node1", "components": [
                {"xml": xml("PAD000", 0.45)}]},
            {"node": "node2", "components": [
                {"xml": xml("PAD001", 0.45)}]},
        ]
        assert codes(deployment_findings(document)) == []
        document["applications"] = {"grp": ["GRP000", "GRP001"]}
        result = deployment_findings(document)
        assert codes(result) == ["DRT602"]
        assert "GRP000, GRP001" in result.diagnostics[0].component


class TestCrossNodeWiring:
    def wired_plan(self):
        document = plan_with()
        document["deployments"] = [
            {"node": "node0", "components": [
                {"xml": xml("SRC000", 0.1, ports=[outport("PRT000")])}
            ]},
            {"node": "node1", "components": [
                {"xml": xml("SNK000", 0.1, ports=[inport("PRT000")])}
            ]},
        ]
        return document

    def test_cross_node_only_provider_is_drt603(self):
        result = deployment_findings(self.wired_plan())
        assert codes(result) == ["DRT603"]
        assert result.diagnostics[0].component == "SNK000"

    def test_split_application_subsumes_member_findings(self):
        document = self.wired_plan()
        document["applications"] = {"wapp": ["SRC000", "SNK000"]}
        result = deployment_findings(document)
        assert [d.code for d in result.diagnostics] == ["DRT603"]
        assert result.diagnostics[0].component == "wapp"

    def test_same_node_provider_silences_the_inport(self):
        document = self.wired_plan()
        document["deployments"][1]["components"].append(
            {"xml": xml("SRC001", 0.1, priority=11,
                        ports=[outport("PRT000")])})
        assert codes(deployment_findings(document)) == []


class TestRulesAgainstTopology:
    def rules_plan(self, rules):
        document = plan_with()
        document["rules"] = [{"document": {
            "schema_version": 1, "rules": rules}}]
        return document

    def migrate_rule(self, name, dst, threshold, op=">"):
        return {"name": name, "priority": 10,
                "when": {"param": "deadline_miss_rate", "op": op,
                         "value": threshold, "for_epochs": 2},
                "then": [{"action": "migrate", "component": "TGT000",
                          "dst": dst}],
                "cooldown_ns": 100_000_000}

    def test_overlapping_migrations_are_drt606(self):
        result = deployment_findings(self.rules_plan([
            self.migrate_rule("go-left", "node0", 0.05),
            self.migrate_rule("go-right", "node1", 0.10)]))
        assert codes(result) == ["DRT606"]
        assert result.diagnostics[0].component == "TGT000"

    def test_disjoint_conditions_cannot_ping_pong(self):
        result = deployment_findings(self.rules_plan([
            self.migrate_rule("calm", "node0", 0.01, op="<"),
            self.migrate_rule("storm", "node1", 0.50, op=">")]))
        assert codes(result) == []

    def test_same_destination_cannot_ping_pong(self):
        result = deployment_findings(self.rules_plan([
            self.migrate_rule("one", "node0", 0.05),
            self.migrate_rule("two", "node0", 0.10)]))
        assert codes(result) == []

    def test_orphan_scope_and_target_are_drt605(self):
        result = deployment_findings(self.rules_plan([{
            "name": "ghost-drain", "priority": 10,
            "when": {"param": "deadline_miss_rate", "op": ">",
                     "value": 0.05, "node": "node9", "for_epochs": 2},
            "then": [{"action": "rebalance", "node": "node9",
                      "count": 1}],
            "cooldown_ns": 100_000_000}]))
        assert [d.code for d in result.diagnostics] \
            == ["DRT605", "DRT605"]

    def test_rule_parse_problems_belong_to_drt5xx(self):
        document = plan_with()
        document["rules"] = [{"document": {"schema_version": 1,
                                           "rules": "nope"}}]
        result = deployment_findings(document)
        assert codes(result) == []
        everything = lint_plan(document)
        assert any(c.startswith("DRT5")
                   for c in codes(everything))


class TestDefectivePlans:
    @pytest.mark.parametrize("kind", sorted(PLAN_DEFECT_CODES))
    def test_each_kind_trips_exactly_its_code(self, kind):
        document, expected = generate_defective_plan(kind)
        assert expected == PLAN_DEFECT_CODES[kind]
        result = deployment_findings(document)
        assert codes(result) == [expected]

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError):
            generate_defective_plan("gremlins")

    @pytest.mark.parametrize("kind", sorted(PLAN_DEFECT_CODES))
    def test_defective_plans_parse_cleanly(self, kind):
        document, _ = generate_defective_plan(kind)
        result = deployment_findings(document)
        assert "DRT600" not in codes(result)


class TestPlanFilesOnDisk:
    def test_relative_sources_resolve_against_the_plan_dir(
            self, tmp_path):
        (tmp_path / "src.xml").write_text(
            xml("SRC000", 0.1, ports=[outport("PRT000")]))
        (tmp_path / "guard.rules.json").write_text(json.dumps({
            "schema_version": 1, "rules": [{
                "name": "guard", "priority": 10,
                "when": {"param": "deadline_miss_rate", "op": ">",
                         "value": 0.05, "for_epochs": 2},
                "then": [{"action": "rebalance", "node": "node0",
                          "count": 1}],
                "cooldown_ns": 100_000_000}]}))
        plan = plan_with()
        plan["deployments"] = [
            {"node": "node0", "components": ["src.xml"]},
            {"node": "node1",
             "components": [{"xml": xml("SNK000", 0.1)}]}]
        plan["rules"] = ["guard.rules.json"]
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        result = lint_paths([str(plan_path)])
        assert codes(result, family="DRT6") == []
        # plan + two node units + one rule unit
        assert result.units == 4
        assert result.sources == 4

    def test_example_plan_is_clean_across_all_families(self):
        result = lint_paths([EXAMPLE_PLAN])
        assert result.diagnostics == []


class TestExportPlanRoundTrip:
    def test_live_fleet_exports_a_lint_clean_plan(self):
        cluster = Cluster(
            node_names=("node0", "node1", "node2"), seed=7)
        try:
            rng = RandomStreams(7)
            for descriptor in generate_component_set(
                    rng, "rt", 5, total_utilization=0.8):
                cluster.deploy(descriptor.to_xml())
            document = cluster.export_plan()
            assert document["plan_version"] == PLAN_SCHEMA_VERSION
            assert [n["name"] for n in document["nodes"]] \
                == ["node0", "node1", "node2"]
            result = lint_plan(document)
            assert codes(result, family="DRT6") == []
            assert result.by_severity(Severity.ERROR) == []
        finally:
            cluster.shutdown()
