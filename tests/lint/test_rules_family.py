"""DRT5xx: the adaptation-rule analyzer family."""

import json

import pytest

from repro.lint.adaptrules import check_rule_source, looks_like_rule_file
from repro.lint.diagnostics import CODE_TABLE, Severity
from repro.lint.engine import (
    FAMILIES,
    FAMILY_ALIASES,
    lint_paths,
    resolve_family,
)
from repro.workloads import RULE_SET_KINDS, generate_rule_set


def _codes(diagnostics):
    return sorted({d.code for d in diagnostics})


def test_code_table_has_the_family():
    for code in ("DRT500", "DRT501", "DRT502", "DRT503", "DRT504",
                 "DRT505"):
        severity, trigger, hint = CODE_TABLE[code]
        assert trigger and hint
    assert CODE_TABLE["DRT501"][0] is Severity.ERROR
    assert CODE_TABLE["DRT503"][0] is Severity.WARNING
    assert CODE_TABLE["DRT505"][0] is Severity.INFO


def test_family_aliases_resolve():
    assert "rules" in FAMILIES
    assert resolve_family("rules") == "rules"
    assert resolve_family("DRT5") == "rules"
    assert resolve_family("drt5") == "rules"
    assert FAMILY_ALIASES["DRT1"] == "contract"
    with pytest.raises(ValueError, match="unknown analyzer family"):
        resolve_family("DRT9")


def test_rule_file_sniffing():
    assert looks_like_rule_file('{"rules": []}')
    assert not looks_like_rule_file('{"plan": []}')
    assert not looks_like_rule_file("[1, 2]")
    assert not looks_like_rule_file("not json")


@pytest.mark.parametrize("kind", RULE_SET_KINDS)
def test_generated_rule_sets_lint_clean(kind):
    text = json.dumps(generate_rule_set(kind))
    assert check_rule_source(text, "<%s>" % kind) == []


def test_invalid_json_is_drt500():
    diagnostics = check_rule_source("{broken", "<x>")
    assert _codes(diagnostics) == ["DRT500"]


def test_schema_and_semantic_codes_coexist():
    """One malformed rule must not mask findings about valid ones."""
    document = {"rules": [
        {"name": "r1",
         "when": {"param": "nope", "op": ">", "value": 1},
         "then": [{"action": "frobnicate"}]},
        {"name": "r2",  # unreachable: miss rate is in [0, 1]
         "when": {"param": "deadline_miss_rate", "op": ">", "value": 2},
         "then": [{"action": "reconfigure"}], "cooldown_ns": 1000},
        {"name": "r3",
         "when": {"param": "deadline_miss_rate", "op": ">",
                  "value": 0.5},
         "then": [{"action": "suspend", "component": "B"}],
         "cooldown_ns": 1000},
        {"name": "r4",  # overlaps r3: (0.5, 0.9) satisfies both
         "when": {"param": "deadline_miss_rate", "op": "<",
                  "value": 0.9},
         "then": [{"action": "resume", "component": "B"}],
         "cooldown_ns": 1000},
        {"name": "r5",  # fires every epoch: no damping at all
         "when": {"param": "overruns", "op": ">", "value": 10},
         "then": [{"action": "reconfigure"}]},
    ]}
    diagnostics = check_rule_source(json.dumps(document), "<x>")
    assert _codes(diagnostics) == ["DRT501", "DRT502", "DRT503",
                                   "DRT504", "DRT505"]


def test_disjoint_all_group_is_unreachable():
    document = {"rules": [{
        "name": "impossible",
        "when": {"all": [
            {"param": "overruns", "op": ">", "value": 10},
            {"param": "overruns", "op": "<", "value": 5},
        ]},
        "then": [{"action": "reconfigure"}], "cooldown_ns": 1,
    }]}
    diagnostics = check_rule_source(json.dumps(document), "<x>")
    assert _codes(diagnostics) == ["DRT504"]


def test_exclusive_bands_are_not_contradictory():
    document = {"rules": [
        {"name": "off",
         "when": {"param": "deadline_miss_rate", "op": ">",
                  "value": 0.5},
         "then": [{"action": "suspend", "component": "C"}],
         "cooldown_ns": 1000},
        {"name": "on",
         "when": {"param": "deadline_miss_rate", "op": "<",
                  "value": 0.1},
         "then": [{"action": "resume", "component": "C"}],
         "cooldown_ns": 1000},
    ]}
    assert check_rule_source(json.dumps(document), "<x>") == []


class TestClampedThresholds:
    """DRT506: thresholds above the histogram grid's last finite bound
    are dead -- ``percentile_from_buckets`` clamps what it reports."""

    GRID_MAX = 1_000_000.0  # DEFAULT_LATENCY_BOUNDS_NS[-1]

    def _rule(self, op, value, param="dispatch_latency_p99"):
        return {"rules": [{
            "name": "clamped",
            "when": {"param": param, "op": op, "value": value},
            "then": [{"action": "reconfigure"}], "cooldown_ns": 1000,
        }]}

    def test_strictly_above_grid_max_is_dead(self):
        diagnostics = check_rule_source(
            json.dumps(self._rule(">", self.GRID_MAX)), "<x>")
        assert _codes(diagnostics) == ["DRT506"]
        assert CODE_TABLE["DRT506"][0] is Severity.WARNING

    def test_at_or_above_past_grid_max_is_dead(self):
        diagnostics = check_rule_source(
            json.dumps(self._rule(">=", self.GRID_MAX + 1)), "<x>")
        assert _codes(diagnostics) == ["DRT506"]

    def test_equality_past_grid_max_is_dead(self):
        diagnostics = check_rule_source(
            json.dumps(self._rule("==", self.GRID_MAX * 2)), "<x>")
        assert _codes(diagnostics) == ["DRT506"]

    def test_reachable_thresholds_stay_clean(self):
        for op, value in ((">", self.GRID_MAX - 1),
                          (">=", self.GRID_MAX),   # can hold: clamp hits it
                          ("<", self.GRID_MAX * 2),
                          ("<=", self.GRID_MAX * 2)):
            diagnostics = check_rule_source(
                json.dumps(self._rule(op, value)), "<x>")
            assert diagnostics == [], (op, value)

    def test_unclamped_params_are_exempt(self):
        # deadline_miss_rate has a range, not a clamp; values past its
        # range are DRT504's business, not DRT506's.
        diagnostics = check_rule_source(
            json.dumps(self._rule(">", 2.0,
                                  param="deadline_miss_rate")), "<x>")
        assert _codes(diagnostics) == ["DRT504"]

    def test_clear_predicate_is_checked_too(self):
        document = {"rules": [{
            "name": "clamped-clear",
            "when": {"param": "dispatch_latency_p99", "op": ">",
                     "value": 50_000},
            "clear": {"param": "dispatch_latency_p99", "op": ">",
                      "value": self.GRID_MAX * 10},
            "then": [{"action": "reconfigure"}],
        }]}
        diagnostics = check_rule_source(json.dumps(document), "<x>")
        assert _codes(diagnostics) == ["DRT506"]


def test_lint_paths_picks_up_rule_files(tmp_path):
    rule_path = tmp_path / "guard.rules.json"
    rule_path.write_text(json.dumps(generate_rule_set("latency-guard")),
                         encoding="utf-8")
    other_json = tmp_path / "baseline.json"
    other_json.write_text('{"samples": [1, 2, 3]}', encoding="utf-8")
    result = lint_paths([str(tmp_path)])
    assert result.units == 1  # the non-rule JSON passes unexamined
    assert result.diagnostics == []

    bad = tmp_path / "bad.rules.json"
    bad.write_text(json.dumps({"rules": [{
        "name": "r",
        "when": {"param": "nope", "op": ">", "value": 1},
        "then": [{"action": "reconfigure"}],
    }]}), encoding="utf-8")
    result = lint_paths([str(tmp_path)], families=("rules",))
    assert result.codes() == ["DRT501"]
    # family filtering: the rules family off means no rule diagnostics
    result = lint_paths([str(tmp_path)], families=("contract",))
    assert result.diagnostics == []


def test_cli_accepts_drt5_alias(tmp_path, capsys):
    from repro.lint.cli import main
    rule_path = tmp_path / "guard.rules.json"
    rule_path.write_text(json.dumps(generate_rule_set("miss-rate-guard")),
                         encoding="utf-8")
    status = main(["--family", "DRT5", str(tmp_path)])
    out = capsys.readouterr().out
    assert status == 0
    assert "0 error" in out
