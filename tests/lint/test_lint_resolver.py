"""LintResolvingService plugged into a live DRCR: drtlint vetoes
defective admissions through the paper's customized-resolving-service
hook, and counts what it did in ``lint.*`` telemetry."""

import pytest
from conftest import deploy, make_descriptor_xml

from repro.core import ComponentState
from repro.core.policies import AlwaysAcceptPolicy
from repro.core.resolving import RESOLVING_SERVICE_INTERFACE
from repro.lint import LintResolvingService, Severity
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC


@pytest.fixture
def linted_platform():
    # A permissive internal policy, so any veto observed in these
    # tests is attributable to drtlint alone.
    p = build_platform(
        seed=7,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        internal_policy=AlwaysAcceptPolicy(),
    )
    p.start_timer(1 * MSEC)
    p.framework.registry.register(RESOLVING_SERVICE_INTERFACE,
                                  LintResolvingService())
    return p


def lint_counter(platform, name):
    metric = platform.telemetry.registry("lint").get(name)
    return metric.value if metric is not None else 0


class TestAdmissionVeto:
    def test_clean_candidate_is_admitted(self, linted_platform):
        deploy(linted_platform,
               make_descriptor_xml("CLEAN0", cpuusage=0.4))
        assert linted_platform.drcr.component_state("CLEAN0") \
            is ComponentState.ACTIVE
        assert lint_counter(linted_platform,
                            "resolver_consults_total") >= 1
        assert lint_counter(linted_platform,
                            "resolver_rejections_total") == 0

    def test_over_admission_is_vetoed_with_drt301(self,
                                                  linted_platform):
        deploy(linted_platform,
               make_descriptor_xml("CLEAN0", cpuusage=0.4))
        deploy(linted_platform,
               make_descriptor_xml("HOGGY0", cpuusage=0.8,
                                   priority=3))
        assert linted_platform.drcr.component_state("HOGGY0") \
            is ComponentState.UNSATISFIED
        # The healthy component must stay up: differential blame
        # charges the newcomer, not the fleet.
        assert linted_platform.drcr.component_state("CLEAN0") \
            is ComponentState.ACTIVE
        assert lint_counter(linted_platform,
                            "resolver_rejections_total") >= 1
        assert lint_counter(linted_platform,
                            "resolver_code.DRT301") >= 1

    def test_veto_is_attributed_to_drtlint(self, linted_platform):
        deploy(linted_platform,
               make_descriptor_xml("CLEAN0", cpuusage=0.4))
        deploy(linted_platform,
               make_descriptor_xml("HOGGY0", cpuusage=0.8,
                                   priority=3))
        attributed = linted_platform.telemetry.registry("drcr").get(
            "rejected_by.drtlint")
        assert attributed is not None and attributed.value >= 1

    def test_warnings_do_not_veto_at_default_threshold(
            self, linted_platform):
        # A zero CPU claim is only DRT106 (warning): below the
        # default ERROR threshold the candidate sails through.
        deploy(linted_platform,
               make_descriptor_xml("FREE00", cpuusage=0))
        assert linted_platform.drcr.component_state("FREE00") \
            is ComponentState.ACTIVE

    def test_warning_threshold_can_be_tightened(self):
        p = build_platform(
            seed=7,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel()),
            internal_policy=AlwaysAcceptPolicy(),
        )
        p.start_timer(1 * MSEC)
        p.framework.registry.register(
            RESOLVING_SERVICE_INTERFACE,
            LintResolvingService(fail_on=Severity.WARNING))
        deploy(p, make_descriptor_xml("FREE00", cpuusage=0))
        assert p.drcr.component_state("FREE00") \
            is ComponentState.UNSATISFIED
