"""Shared fixtures for the test suite."""

import pytest

from repro.core.policies import UtilizationBoundPolicy
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC, Simulator


@pytest.fixture
def sim():
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def kernel(sim):
    """A single-CPU kernel with a zero-jitter latency model (tests make
    exact timing assertions)."""
    return RTKernel(sim, KernelConfig(latency_model=NullLatencyModel()))


@pytest.fixture
def kernel2(sim):
    """A dual-CPU kernel with zero-jitter latency."""
    return RTKernel(sim, KernelConfig(num_cpus=2,
                                      latency_model=NullLatencyModel()))


@pytest.fixture
def platform():
    """A full platform (zero-jitter kernel, timer already running)."""
    p = build_platform(
        seed=7,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=1.0),
    )
    p.start_timer(1 * MSEC)
    return p


def make_descriptor_xml(name, *, task_type="periodic", enabled=True,
                        cpuusage=0.05, frequency=1000, priority=2, cpu=0,
                        outports=(), inports=(), properties=(),
                        bincode=None):
    """Compose DRCom descriptor XML for tests.

    ``outports``/``inports`` are iterables of (name, interface, type,
    size); ``properties`` of (name, type, value).
    """
    lines = ['<?xml version="1.0" encoding="UTF-8"?>']
    lines.append(
        '<drt:component name="%s" desc="test component" type="%s" '
        'enabled="%s" cpuusage="%s">'
        % (name, task_type, "true" if enabled else "false", cpuusage))
    lines.append('  <implementation bincode="%s"/>'
                 % (bincode or "test.%s.Impl" % name))
    if task_type == "periodic":
        lines.append('  <periodictask frequence="%s" runoncpu="%d" '
                     'priority="%d"/>' % (frequency, cpu, priority))
    else:
        lines.append('  <aperiodictask runoncpu="%d" priority="%d"/>'
                     % (cpu, priority))
    for pname, iface, dtype, size in outports:
        lines.append('  <outport name="%s" interface="%s" type="%s" '
                     'size="%d"/>' % (pname, iface, dtype, size))
    for pname, iface, dtype, size in inports:
        lines.append('  <inport name="%s" interface="%s" type="%s" '
                     'size="%d"/>' % (pname, iface, dtype, size))
    for pname, ptype, value in properties:
        lines.append('  <property name="%s" type="%s" value="%s"/>'
                     % (pname, ptype, value))
    lines.append("</drt:component>")
    return "\n".join(lines)


def deploy(platform, xml, bundle_name=None):
    """Install+start a one-descriptor bundle; returns the bundle."""
    import re
    name = bundle_name or "test.bundle.%s" % re.search(
        r'name="([^"]+)"', xml).group(1)
    return platform.install_and_start(
        {"Bundle-SymbolicName": name, "RT-Component": "OSGI-INF/c.xml"},
        resources={"OSGI-INF/c.xml": xml})
