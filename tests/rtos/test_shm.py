"""Unit tests for shared-memory segments."""

import pytest

from repro.rtos.errors import DuplicateNameError, ShmTypeError
from repro.rtos.shm import SharedMemory, element_size_bytes


def make_shm(dtype="Integer", size=4):
    clock = {"t": 0}
    shm = SharedMemory(lambda: clock["t"], "SEG000", dtype, size)
    return shm, clock


class TestSharedMemory:
    def test_initial_contents_zeroed(self):
        shm, _ = make_shm()
        assert shm.read() == [0, 0, 0, 0]

    def test_write_whole_segment(self):
        shm, _ = make_shm()
        shm.write([1, 2, 3, 4])
        assert shm.read() == [1, 2, 3, 4]

    def test_write_wrong_length_raises(self):
        shm, _ = make_shm()
        with pytest.raises(ShmTypeError):
            shm.write([1, 2])

    def test_write_at_single_element(self):
        shm, _ = make_shm()
        shm.write_at(2, 99)
        assert shm.read_at(2) == 99
        assert shm.read_at(0) == 0

    def test_integer_type_rejects_float(self):
        shm, _ = make_shm("Integer")
        with pytest.raises(ShmTypeError):
            shm.write_at(0, 1.5)

    def test_integer_type_rejects_bool(self):
        shm, _ = make_shm("Integer")
        with pytest.raises(ShmTypeError):
            shm.write_at(0, True)

    def test_byte_range_enforced(self):
        shm, _ = make_shm("Byte")
        shm.write_at(0, 255)
        with pytest.raises(ShmTypeError):
            shm.write_at(0, 256)
        with pytest.raises(ShmTypeError):
            shm.write_at(0, -1)

    def test_float_accepts_int_and_float(self):
        shm, _ = make_shm("Float")
        shm.write_at(0, 1)
        shm.write_at(1, 2.5)
        assert shm.read()[:2] == [1, 2.5]

    def test_unknown_type_rejected(self):
        with pytest.raises(ShmTypeError):
            SharedMemory(lambda: 0, "BAD000", "Complex", 4)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ShmTypeError):
            SharedMemory(lambda: 0, "BAD000", "Integer", 0)

    def test_write_metadata(self):
        shm, clock = make_shm()
        assert shm.last_write_time is None
        assert shm.age_ns() is None
        clock["t"] = 500
        shm.write_at(0, 7, writer="CALC00")
        assert shm.write_count == 1
        assert shm.last_write_time == 500
        assert shm.last_writer == "CALC00"
        clock["t"] = 800
        assert shm.age_ns() == 300

    def test_read_returns_copy(self):
        shm, _ = make_shm()
        data = shm.read()
        data[0] = 42
        assert shm.read_at(0) == 0

    def test_len(self):
        shm, _ = make_shm(size=7)
        assert len(shm) == 7


class TestAttachment:
    def test_attach_detach_refcount(self):
        shm, _ = make_shm()
        shm.attach("a")
        shm.attach("b")
        assert shm.attached_count == 2
        assert shm.detach("a") is False
        assert shm.detach("b") is True

    def test_detach_unknown_is_noop(self):
        shm, _ = make_shm()
        shm.attach("a")
        assert shm.detach("ghost") is False


class TestKernelShmAlloc:
    def test_alloc_and_lookup(self, kernel):
        segment = kernel.shm_alloc("DATA00", "Integer", 8, owner="a")
        assert kernel.lookup("DATA00") is segment

    def test_realloc_attaches_same_segment(self, kernel):
        first = kernel.shm_alloc("DATA00", "Integer", 8, owner="a")
        second = kernel.shm_alloc("DATA00", "Integer", 8, owner="b")
        assert first is second
        assert first.attached_count == 2

    def test_realloc_with_different_shape_raises(self, kernel):
        kernel.shm_alloc("DATA00", "Integer", 8, owner="a")
        with pytest.raises(DuplicateNameError):
            kernel.shm_alloc("DATA00", "Byte", 8, owner="b")
        with pytest.raises(DuplicateNameError):
            kernel.shm_alloc("DATA00", "Integer", 4, owner="b")

    def test_alloc_name_clash_with_mailbox_raises(self, kernel):
        kernel.mailbox("CLASH0")
        with pytest.raises(DuplicateNameError):
            kernel.shm_alloc("CLASH0", "Integer", 4)

    def test_free_on_last_detach(self, kernel):
        kernel.shm_alloc("DATA00", "Integer", 8, owner="a")
        kernel.shm_alloc("DATA00", "Integer", 8, owner="b")
        kernel.shm_free("DATA00", owner="a")
        assert kernel.exists("DATA00")
        kernel.shm_free("DATA00", owner="b")
        assert not kernel.exists("DATA00")


class TestElementSize:
    def test_sizes(self):
        assert element_size_bytes("Byte") == 1
        assert element_size_bytes("Integer") == 4
        assert element_size_bytes("Float") == 8

    def test_unknown_raises(self):
        with pytest.raises(ShmTypeError):
            element_size_bytes("Complex")
