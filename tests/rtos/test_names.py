"""Unit tests for RTAI 6-character names."""

import pytest

from repro.rtos.errors import InvalidTaskNameError
from repro.rtos.names import (
    MAX_NAME_LENGTH,
    derive_port_name,
    nam2num,
    num2nam,
    validate_name,
)


class TestValidateName:
    def test_canonicalizes_to_upper(self):
        assert validate_name("camera") == "CAMERA"

    def test_exactly_six_characters_ok(self):
        assert validate_name("ABCDEF") == "ABCDEF"

    def test_seven_characters_rejected(self):
        with pytest.raises(InvalidTaskNameError):
            validate_name("ABCDEFG")

    def test_empty_rejected(self):
        with pytest.raises(InvalidTaskNameError):
            validate_name("")

    def test_non_string_rejected(self):
        with pytest.raises(InvalidTaskNameError):
            validate_name(123)

    def test_digits_and_underscore_allowed(self):
        assert validate_name("A_9") == "A_9"

    def test_space_rejected(self):
        with pytest.raises(InvalidTaskNameError):
            validate_name("A B")

    def test_hyphen_rejected(self):
        with pytest.raises(InvalidTaskNameError):
            validate_name("A-B")

    def test_dollar_allowed(self):
        assert validate_name("A$B") == "A$B"

    def test_max_length_constant(self):
        assert MAX_NAME_LENGTH == 6


class TestNam2Num:
    def test_roundtrip(self):
        for name in ("CAMERA", "CALC00", "A", "Z9_", "IMAGES", "XYSIZE"):
            assert num2nam(nam2num(name)) == name

    def test_case_insensitive_encoding(self):
        assert nam2num("camera") == nam2num("CAMERA")

    def test_distinct_names_distinct_numbers(self):
        names = ["CALC00", "CALC01", "DISP00", "A", "AA", "AAA"]
        numbers = [nam2num(n) for n in names]
        assert len(set(numbers)) == len(names)

    def test_num2nam_negative_rejected(self):
        with pytest.raises(InvalidTaskNameError):
            num2nam(-1)

    def test_num2nam_too_large_rejected(self):
        huge = nam2num("______") * 40
        with pytest.raises(InvalidTaskNameError):
            num2nam(huge)

    def test_num2nam_zero_rejected(self):
        with pytest.raises(InvalidTaskNameError):
            num2nam(0)


class TestDerivePortName:
    def test_short_names_concatenate(self):
        assert derive_port_name("cam", "img") == "CAMIMG"

    def test_long_names_truncate(self):
        derived = derive_port_name("calculation", "output")
        assert len(derived) <= 6
        assert derived == "CALOUT"

    def test_index_disambiguates(self):
        base = derive_port_name("calculation", "output")
        other = derive_port_name("calculation", "output", index=1)
        assert base != other

    def test_illegal_characters_replaced(self):
        derived = derive_port_name("a.b", "c-d")
        # '.' and '-' are not in the RTAI alphabet
        assert derive_port_name("a.b", "c-d") == derived
        from repro.rtos.names import validate_name
        validate_name(derived)
