"""Tests for the latency model, load generators and dual-kernel
isolation -- the mechanisms behind Table 1."""

import pytest

from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import LatencyModel, NullLatencyModel
from repro.rtos.load import (
    CPUHogLoad,
    JVMGarbageCollectorLoad,
    LoadGenerator,
    apply_stress,
    remove_loads,
    stress_suite,
)
from repro.rtos.requests import Compute, WaitPeriod
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, SEC, USEC, Simulator
from repro.sim.rng import RandomStreams


def periodic_body(compute_ns):
    def body(task):
        while True:
            yield WaitPeriod()
            yield Compute(compute_ns)
    return body


class TestLatencyModelDistributions:
    def _sample(self, linux_demand, hybrid, n=4000):
        model = LatencyModel()
        rng = RandomStreams(11)
        return [model.sample_release_offset(rng, "T", linux_demand,
                                            hybrid) for _ in range(n)]

    def test_mode_classification(self):
        model = LatencyModel()
        assert model.mode_for(0.0) == "light"
        assert model.mode_for(0.5) == "light"
        assert model.mode_for(0.75) == "stress"
        assert model.mode_for(1.0) == "stress"

    def test_light_mode_wide_and_near_zero(self):
        samples = self._sample(0.0, hybrid=False)
        mean = sum(samples) / len(samples)
        assert -3000 < mean < 1500
        assert min(samples) < -15_000
        assert max(samples) > 10_000

    def test_stress_mode_shifted_and_tight(self):
        samples = self._sample(1.0, hybrid=False)
        mean = sum(samples) / len(samples)
        assert -23_000 < mean < -20_000
        assert all(s < -15_000 for s in samples)
        avedev = sum(abs(s - mean) for s in samples) / len(samples)
        assert avedev < 1000

    def test_stress_tighter_than_light(self):
        def avedev(samples):
            mean = sum(samples) / len(samples)
            return sum(abs(s - mean) for s in samples) / len(samples)

        assert avedev(self._sample(1.0, False)) \
            < avedev(self._sample(0.0, False)) / 3

    def test_hybrid_shift_small_relative_to_jitter(self):
        pure = self._sample(0.0, hybrid=False)
        hrc = self._sample(0.0, hybrid=True)
        mean_gap = abs(sum(hrc) / len(hrc) - sum(pure) / len(pure))
        mean = sum(pure) / len(pure)
        avedev = sum(abs(s - mean) for s in pure) / len(pure)
        assert mean_gap < avedev  # "no much difference"

    def test_clamps_respected(self):
        model = LatencyModel()
        for mode, hybrid in (("light", False), ("stress", True)):
            profile = model.profile(mode, hybrid)
            rng = RandomStreams(3)
            for _ in range(2000):
                value = profile.sample(rng, "s")
                assert profile.clamp_lo_ns <= value <= profile.clamp_hi_ns

    def test_null_model_returns_zero(self):
        model = NullLatencyModel()
        rng = RandomStreams(0)
        assert model.sample_release_offset(rng, "T", 1.0, True) == 0


class TestLoadGenerators:
    def test_demand_bounds_enforced(self):
        with pytest.raises(ValueError):
            LoadGenerator("bad", 1.5)
        with pytest.raises(ValueError):
            LoadGenerator("bad", -0.1)

    def test_stress_suite_reaches_full_demand(self, kernel):
        loads = apply_stress(kernel)
        assert kernel.linux_demand == pytest.approx(1.0)
        remove_loads(kernel, loads)
        assert kernel.linux_demand == 0.0

    def test_stress_suite_is_three_commands(self):
        # "we use the following three commands" (section 4.4)
        assert len(stress_suite()) == 3

    def test_demand_caps_at_one(self, kernel):
        kernel.register_load(CPUHogLoad(demand=0.9))
        kernel.register_load(CPUHogLoad(demand=0.9, name="second"))
        assert kernel.linux_demand == 1.0

    def test_gc_load_is_linux_side(self):
        gc = JVMGarbageCollectorLoad()
        assert gc.worst_case_pause_ns() == 40 * MSEC

    def test_describe(self):
        assert "cpuhog" in CPUHogLoad().describe()


class TestDualKernelIsolation:
    """The headline property: Linux load cannot touch RT scheduling."""

    def _run(self, stress):
        sim = Simulator(seed=21)
        kernel = RTKernel(sim, KernelConfig(
            latency_model=NullLatencyModel()))
        kernel.start_timer(1 * MSEC)
        task = kernel.create_task("RT0000", periodic_body(200 * USEC), 1,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=1 * MSEC,
                                  collect_latency=True)
        kernel.start_task(task)
        if stress:
            apply_stress(kernel)
        sim.run_for(1 * SEC)
        return kernel, task

    def test_rt_latency_identical_under_stress(self):
        _, light_task = self._run(stress=False)
        _, stress_task = self._run(stress=True)
        # With the mechanical (null) latency model the dispatch path is
        # bit-identical: Linux load has NO scheduling influence.
        assert light_task.stats.latency.values \
            == stress_task.stats.latency.values

    def test_rt_misses_zero_under_stress(self):
        _, task = self._run(stress=True)
        assert task.stats.deadline_misses == 0

    def test_linux_gets_only_leftover_time(self):
        kernel, task = self._run(stress=True)
        elapsed = kernel.sim.now
        rt_busy = kernel.rt_busy_ns(0)
        linux = kernel.linux_work_ns(0)
        assert linux == pytest.approx(elapsed - rt_busy, rel=0.01)

    def test_linux_idle_without_load(self):
        kernel, _ = self._run(stress=False)
        assert kernel.linux_work_ns() == 0.0

    def test_rt_utilization_measured(self):
        kernel, _ = self._run(stress=False)
        assert kernel.rt_utilization(0) == pytest.approx(0.2, rel=0.05)
