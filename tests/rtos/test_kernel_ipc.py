"""Kernel tests: mailbox and semaphore blocking semantics."""

import pytest

from repro.rtos.errors import DuplicateNameError, UnknownObjectError
from repro.rtos.requests import (
    Compute,
    Receive,
    SemSignal,
    SemWait,
    Send,
    Sleep,
)
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC


def run_aperiodic(kernel, name, body, priority=1):
    task = kernel.create_task(name, body, priority,
                              task_type=TaskType.APERIODIC)
    kernel.start_task(task)
    return task


class TestMailboxTasks:
    def test_blocking_receive_wakes_on_send(self, sim, kernel):
        box = kernel.mailbox("MBX000")
        received = []

        def receiver(task):
            message = yield Receive(box, blocking=True)
            received.append((kernel.now, message))

        def sender(task):
            yield Sleep(2 * MSEC)
            yield Send(box, "data")

        run_aperiodic(kernel, "RECV00", receiver)
        run_aperiodic(kernel, "SEND00", sender)
        sim.run_for(5 * MSEC)
        assert len(received) == 1
        assert received[0][1] == "data"
        assert received[0][0] >= 2 * MSEC

    def test_nonblocking_receive_returns_none(self, sim, kernel):
        box = kernel.mailbox("MBX000")
        results = []

        def poller(task):
            message = yield Receive(box, blocking=False)
            results.append(message)

        run_aperiodic(kernel, "POLL00", poller)
        sim.run_for(1 * MSEC)
        assert results == [None]

    def test_receive_timeout(self, sim, kernel):
        box = kernel.mailbox("MBX000")
        results = []

        def receiver(task):
            message = yield Receive(box, blocking=True,
                                    timeout_ns=3 * MSEC)
            results.append((kernel.now, message))

        run_aperiodic(kernel, "RECV00", receiver)
        sim.run_for(10 * MSEC)
        assert results == [(3 * MSEC, None)]

    def test_timeout_cancelled_by_delivery(self, sim, kernel):
        box = kernel.mailbox("MBX000")
        results = []

        def receiver(task):
            message = yield Receive(box, blocking=True,
                                    timeout_ns=5 * MSEC)
            results.append(message)
            # A second receive proves the timeout event didn't linger.
            message = yield Receive(box, blocking=True,
                                    timeout_ns=5 * MSEC)
            results.append(message)

        run_aperiodic(kernel, "RECV00", receiver)
        sim.run_for(1 * MSEC)
        box.send_external("fast")
        sim.run_for(20 * MSEC)
        assert results == ["fast", None]

    def test_blocking_send_on_full_mailbox(self, sim, kernel):
        box = kernel.mailbox("MBX000", capacity=1)
        box.send_external("fill")
        progress = []

        def sender(task):
            delivered = yield Send(box, "second", blocking=True)
            progress.append((kernel.now, delivered))

        run_aperiodic(kernel, "SEND00", sender)
        sim.run_for(2 * MSEC)
        assert progress == []  # still blocked
        assert box.receive_external() == "fill"
        sim.run_for(1 * MSEC)
        assert progress and progress[0][1] is True
        assert box.receive_external() == "second"

    def test_nonblocking_send_on_full_returns_false(self, sim, kernel):
        box = kernel.mailbox("MBX000", capacity=1)
        box.send_external("fill")
        results = []

        def sender(task):
            delivered = yield Send(box, "x", blocking=False)
            results.append(delivered)

        run_aperiodic(kernel, "SEND00", sender)
        sim.run_for(1 * MSEC)
        assert results == [False]
        assert box.dropped_count == 1

    def test_send_hands_directly_to_waiter(self, sim, kernel):
        box = kernel.mailbox("MBX000", capacity=1)
        received = []

        def receiver(task):
            message = yield Receive(box, blocking=True)
            received.append(message)

        def sender(task):
            yield Sleep(1 * MSEC)
            delivered = yield Send(box, "direct")
            assert delivered is True

        run_aperiodic(kernel, "RECV00", receiver)
        run_aperiodic(kernel, "SEND00", sender)
        sim.run_for(5 * MSEC)
        assert received == ["direct"]
        assert len(box) == 0

    def test_fifo_order(self, sim, kernel):
        box = kernel.mailbox("MBX000", capacity=8)
        for i in range(4):
            box.send_external(i)
        received = []

        def receiver(task):
            for _ in range(4):
                message = yield Receive(box, blocking=True)
                received.append(message)

        run_aperiodic(kernel, "RECV00", receiver)
        sim.run_for(1 * MSEC)
        assert received == [0, 1, 2, 3]

    def test_drain(self, sim, kernel):
        box = kernel.mailbox("MBX000", capacity=8)
        for i in range(3):
            box.send_external(i)
        assert box.drain() == [0, 1, 2]
        assert box.empty


class TestSemaphoreTasks:
    def test_mutual_exclusion(self, sim, kernel):
        sem = kernel.semaphore("SEM000", initial=1)
        timeline = []

        def worker(label, hold_ns):
            def body(task):
                acquired = yield SemWait(sem)
                assert acquired
                timeline.append(("enter", label, kernel.now))
                yield Compute(hold_ns)
                timeline.append(("exit", label, kernel.now))
                yield SemSignal(sem)
            return body

        run_aperiodic(kernel, "WORKA0", worker("a", 1 * MSEC), priority=2)
        run_aperiodic(kernel, "WORKB0", worker("b", 1 * MSEC), priority=3)
        sim.run_for(10 * MSEC)
        # Critical sections must not interleave.
        events = [e[0] for e in timeline]
        assert events == ["enter", "exit", "enter", "exit"]

    def test_priority_ordered_wakeup(self, sim, kernel):
        sem = kernel.semaphore("SEM000", initial=0)
        order = []

        def waiter(label):
            def body(task):
                yield SemWait(sem)
                order.append(label)
            return body

        run_aperiodic(kernel, "LOWW00", waiter("low"), priority=8)
        run_aperiodic(kernel, "HIGHW0", waiter("high"), priority=1)
        run_aperiodic(kernel, "MIDW00", waiter("mid"), priority=4)
        sim.run_for(1 * MSEC)
        assert sem.waiter_count == 3
        for _ in range(3):
            sem.signal()
        sim.run_for(1 * MSEC)
        assert order == ["high", "mid", "low"]

    def test_sem_timeout(self, sim, kernel):
        sem = kernel.semaphore("SEM000", initial=0)
        results = []

        def body(task):
            acquired = yield SemWait(sem, timeout_ns=2 * MSEC)
            results.append((kernel.now, acquired))

        run_aperiodic(kernel, "WAIT00", body)
        sim.run_for(10 * MSEC)
        assert results == [(2 * MSEC, False)]

    def test_initial_count_admits_without_blocking(self, sim, kernel):
        sem = kernel.semaphore("SEM000", initial=2)
        acquired = []

        def body(name):
            def gen(task):
                ok = yield SemWait(sem)
                acquired.append((name, ok))
            return gen

        run_aperiodic(kernel, "WAITA0", body("a"))
        run_aperiodic(kernel, "WAITB0", body("b"))
        sim.run_for(1 * MSEC)
        assert sorted(acquired) == [("a", True), ("b", True)]
        assert sem.count == 0


class TestObjectRegistry:
    def test_lookup_by_name(self, kernel):
        box = kernel.mailbox("FINDME")
        assert kernel.lookup("findme") is box

    def test_unknown_lookup_raises(self, kernel):
        with pytest.raises(UnknownObjectError):
            kernel.lookup("GHOST0")

    def test_duplicate_mailbox_name_raises(self, kernel):
        kernel.mailbox("DUP000")
        with pytest.raises(DuplicateNameError):
            kernel.mailbox("DUP000")

    def test_free_object(self, kernel):
        kernel.mailbox("TEMP00")
        kernel.free_object("TEMP00")
        assert not kernel.exists("TEMP00")

    def test_unique_name_allocates_fresh(self, kernel):
        first = kernel.unique_name("C")
        kernel.mailbox(first)
        second = kernel.unique_name("C")
        assert first != second
