"""Tests for the digital I/O module (Figure 3)."""

import pytest

from repro.rtos.dio import (
    ConstantSignal,
    RandomWalk,
    SineWave,
    SquareWave,
    attach_dio,
)
from repro.sim.engine import MSEC


class TestSignalSources:
    def test_constant(self, kernel):
        dio = attach_dio(kernel)
        dio.wire_input(0, ConstantSignal(7))
        assert dio.read(0) == 7

    def test_square_wave_halves(self, sim, kernel):
        dio = attach_dio(kernel)
        dio.wire_input(0, SquareWave(period_ns=10 * MSEC, low=0,
                                     high=5))
        assert dio.read(0) == 5        # t=0: first half
        sim.run_for(6 * MSEC)
        assert dio.read(0) == 0        # t=6ms: second half
        sim.run_for(5 * MSEC)
        assert dio.read(0) == 5        # t=11ms: wrapped

    def test_square_wave_phase(self, kernel):
        dio = attach_dio(kernel)
        dio.wire_input(0, SquareWave(period_ns=10 * MSEC,
                                     phase_ns=5 * MSEC))
        assert dio.read(0) == 0        # phase shifts into second half

    def test_sine_wave_bounds_and_zero_crossings(self, sim, kernel):
        dio = attach_dio(kernel)
        dio.wire_input(0, SineWave(period_ns=8 * MSEC, amplitude=2.0,
                                   offset=1.0))
        values = []
        for _ in range(16):
            values.append(dio.read(0))
            sim.run_for(1 * MSEC)
        assert all(-1.0 - 1e-9 <= v <= 3.0 + 1e-9 for v in values)
        assert max(values) > 2.5 and min(values) < -0.5

    def test_random_walk_bounded(self, kernel):
        dio = attach_dio(kernel)
        dio.wire_input(0, RandomWalk(step=5.0, lo=-10, hi=10))
        for _ in range(500):
            assert -10 <= dio.read(0) <= 10

    def test_bad_period_rejected(self):
        with pytest.raises(ValueError):
            SquareWave(period_ns=0)
        with pytest.raises(ValueError):
            SineWave(period_ns=-1)


class TestDIOModule:
    def test_attach_is_idempotent(self, kernel):
        assert attach_dio(kernel) is attach_dio(kernel)
        assert kernel.dio is attach_dio(kernel)

    def test_unwired_read_raises(self, kernel):
        dio = attach_dio(kernel)
        with pytest.raises(KeyError):
            dio.read(3)

    def test_non_source_rejected(self, kernel):
        dio = attach_dio(kernel)
        with pytest.raises(TypeError):
            dio.wire_input(0, lambda t: 1)

    def test_writes_logged_with_timestamps(self, sim, kernel):
        dio = attach_dio(kernel)
        dio.write(1, 100)
        sim.run_for(5 * MSEC)
        dio.write(1, 200)
        assert dio.output_log[1] == [(0, 100), (5 * MSEC, 200)]
        assert dio.last_output(1) == (5 * MSEC, 200)
        assert dio.last_output(9) is None

    def test_counters(self, kernel):
        dio = attach_dio(kernel)
        dio.wire_input(0, ConstantSignal(1))
        dio.read(0)
        dio.write(1, 2)
        assert dio.read_count == 1
        assert dio.write_count == 1

    def test_input_channels_listing(self, kernel):
        dio = attach_dio(kernel)
        dio.wire_input(3, ConstantSignal(1))
        dio.wire_input(1, ConstantSignal(2))
        assert dio.input_channels() == [1, 3]


class TestComponentDIOAccess:
    def test_control_loop_through_context(self, platform):
        """A controller component reads a sensor and drives an actuator
        every period -- the Figure-3 wiring, end to end."""
        from repro.hybrid import RTImplementation, make_container_factory
        from repro.hybrid.implementation import ImplementationRegistry
        from repro.platform import build_platform
        from repro.rtos.kernel import KernelConfig
        from repro.rtos.latency import NullLatencyModel
        from conftest import deploy, make_descriptor_xml

        class BangBang(RTImplementation):
            def execute(self, ctx):
                level = ctx.read_sensor(0)
                ctx.write_actuator(1, 1 if level < 0 else 0)

        registry = ImplementationRegistry()
        registry.register("ctl.BangBang", BangBang)
        platform = build_platform(
            seed=8,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel()),
            container_factory=make_container_factory(registry))
        platform.start_timer(1 * MSEC)
        dio = attach_dio(platform.kernel)
        dio.wire_input(0, SineWave(period_ns=20 * MSEC, amplitude=1.0))
        deploy(platform, make_descriptor_xml(
            "CTRL00", cpuusage=0.05, frequency=1000, priority=2,
            bincode="ctl.BangBang"))
        platform.run_for(100 * MSEC)
        writes = dio.output_log[1]
        assert len(writes) >= 99
        values = {value for _, value in writes}
        assert values == {0, 1}  # the controller actually switched

    def test_missing_dio_raises_cleanly(self, platform):
        from repro.hybrid.context import RTContext
        from repro.core.descriptor import ComponentDescriptor
        from conftest import make_descriptor_xml
        descriptor = ComponentDescriptor.from_xml(
            make_descriptor_xml("NODIO0", cpuusage=0.05))
        ctx = RTContext(descriptor, platform.kernel)
        with pytest.raises(RuntimeError, match="no DIO module"):
            ctx.read_sensor(0)
        with pytest.raises(RuntimeError, match="no DIO module"):
            ctx.write_actuator(0, 1)
