"""Kernel corner cases not covered elsewhere."""

import pytest

from repro.rtos.errors import TaskStateError
from repro.rtos.requests import Compute, Receive, Send, Sleep, \
    WaitPeriod
from repro.rtos.task import TaskState, TaskType
from repro.sim.engine import MSEC, USEC


class TestRequestValidation:
    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-5)

    def test_zero_compute_is_free(self, sim, kernel):
        steps = []

        def body(task):
            yield Compute(0)
            steps.append(kernel.now)
            yield Compute(0)
            steps.append(kernel.now)

        task = kernel.create_task("ZERO00", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        assert steps == [0, 0]
        assert task.stats.cpu_time_ns == 0

    def test_unknown_request_faults_task(self, sim, kernel):
        def body(task):
            yield "not a request"

        task = kernel.create_task("WEIRD0", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        assert task.state is TaskState.FAULTED
        assert isinstance(task.fault, TypeError)

    def test_wait_period_on_aperiodic_faults(self, sim, kernel):
        def body(task):
            yield WaitPeriod()

        task = kernel.create_task("APWP00", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        assert task.state is TaskState.FAULTED
        assert isinstance(task.fault, TaskStateError)


class TestSchedulingCorners:
    def test_zero_sleep_resumes_same_instant(self, sim, kernel):
        times = []

        def body(task):
            times.append(kernel.now)
            yield Sleep(0)
            times.append(kernel.now)

        task = kernel.create_task("SLEEP0", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        assert times == [0, 0]
        assert task.state is TaskState.DORMANT

    def test_preemption_at_exact_completion_boundary(self, sim, kernel):
        # Low finishes exactly when high releases: the cancelled
        # completion must be replayed on redispatch, not lost.
        kernel.start_timer(1 * MSEC)

        def low_body(task):
            while True:
                yield WaitPeriod()
                # Exactly one period minus overheads of high's work.
                yield Compute(1 * MSEC
                              - kernel.config.irq_entry_ns
                              - kernel.config.dispatch_cost_ns)

        def high_body(task):
            while True:
                yield WaitPeriod()
                yield Compute(10 * USEC)

        low = kernel.create_task("LOWX00", low_body, 5,
                                 task_type=TaskType.PERIODIC,
                                 period_ns=2 * MSEC)
        high = kernel.create_task("HIGHX0", high_body, 1,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=1 * MSEC)
        kernel.start_task(low)
        kernel.start_task(high)
        sim.run_for(100 * MSEC)
        assert high.stats.deadline_misses == 0
        assert low.stats.completions >= 48

    def test_many_tasks_same_instant_release(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        tasks = []
        for index in range(20):
            def body(task):
                while True:
                    yield WaitPeriod()
                    yield Compute(10 * USEC)

            task = kernel.create_task("MANY%02d" % index, body,
                                      priority=index,
                                      task_type=TaskType.PERIODIC,
                                      period_ns=1 * MSEC,
                                      collect_latency=True)
            kernel.start_task(task)
            tasks.append(task)
        sim.run_for(100 * MSEC)
        for task in tasks:
            assert task.stats.deadline_misses == 0
        # The lowest-priority task queues behind all 19 others.
        assert tasks[-1].stats.latency.minimum \
            > tasks[0].stats.latency.maximum

    def test_task_sending_to_own_mailbox(self, sim, kernel):
        box = kernel.mailbox("SELF00", capacity=4)
        echoes = []

        def body(task):
            delivered = yield Send(box, "ping")
            assert delivered
            message = yield Receive(box, blocking=False)
            echoes.append(message)

        task = kernel.create_task("ECHO00", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        assert echoes == ["ping"]

    def test_start_twice_rejected(self, sim, kernel):
        def body(task):
            yield Sleep(10 * MSEC)

        task = kernel.create_task("TWICE0", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        with pytest.raises(TaskStateError):
            kernel.start_task(task)

    def test_trace_can_be_disabled(self):
        from repro.rtos.kernel import KernelConfig, RTKernel
        from repro.rtos.latency import NullLatencyModel
        from repro.sim.engine import Simulator
        sim = Simulator(seed=1)
        kernel = RTKernel(sim, KernelConfig(
            latency_model=NullLatencyModel(), trace_kernel=False))
        kernel.start_timer(1 * MSEC)

        def body(task):
            while True:
                yield WaitPeriod()

        task = kernel.create_task("QUIET0", body, 1,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=1 * MSEC)
        kernel.start_task(task)
        sim.run_for(10 * MSEC)
        assert len(sim.trace) == 0
