"""Kernel tests: preemption, priorities, round-robin, multi-CPU."""

from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import NullLatencyModel
from repro.rtos.requests import Compute, WaitPeriod
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, USEC, Simulator


def periodic_body(compute_ns):
    def body(task):
        while True:
            yield WaitPeriod()
            yield Compute(compute_ns)
    return body


def start_periodic(kernel, name, priority, period, compute, cpu=0):
    task = kernel.create_task(name, periodic_body(compute), priority,
                              cpu=cpu, task_type=TaskType.PERIODIC,
                              period_ns=period, collect_latency=True)
    kernel.start_task(task)
    return task


class TestPreemption:
    def test_high_priority_preempts_low(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        # Low's 1.5ms job straddles high's 1ms releases -> preemption.
        low = start_periodic(kernel, "LOW000", 5, 4 * MSEC, 1500 * USEC)
        high = start_periodic(kernel, "HIGH00", 1, 1 * MSEC, 100 * USEC)
        sim.run_for(100 * MSEC)
        assert low.stats.preemptions > 0
        assert high.stats.preemptions == 0
        assert high.stats.deadline_misses == 0

    def test_preempted_work_is_conserved(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        low = start_periodic(kernel, "LOW000", 5, 5 * MSEC, 2 * MSEC)
        start_periodic(kernel, "HIGH00", 1, 1 * MSEC, 200 * USEC)
        sim.run_for(100 * MSEC)
        # Low still completes all jobs despite constant preemption:
        # 2ms of work per 5ms period, 0.2 high util -> feasible.
        assert low.stats.deadline_misses == 0
        expected_cpu = low.stats.completions * 2 * MSEC
        assert low.stats.cpu_time_ns == expected_cpu

    def test_high_priority_latency_unaffected_by_low(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        start_periodic(kernel, "LOW000", 5, 2 * MSEC, 1900 * USEC)
        high = start_periodic(kernel, "HIGH00", 1, 1 * MSEC, 50 * USEC)
        sim.run_for(100 * MSEC)
        expected = (kernel.config.irq_entry_ns
                    + kernel.config.dispatch_cost_ns)
        assert high.stats.latency.maximum == expected

    def test_low_priority_queues_behind_high(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        # Same release instants: high runs first, low waits 300us.
        high = start_periodic(kernel, "HIGH00", 1, 1 * MSEC, 300 * USEC)
        low = start_periodic(kernel, "LOW000", 5, 1 * MSEC, 100 * USEC)
        sim.run_for(20 * MSEC)
        assert low.stats.latency.minimum > 300 * USEC
        assert high.stats.latency.maximum < 10 * USEC

    def test_equal_priority_no_preemption_without_quantum(self, sim,
                                                          kernel):
        kernel.start_timer(1 * MSEC)
        a = start_periodic(kernel, "EQA000", 3, 2 * MSEC, 500 * USEC)
        b = start_periodic(kernel, "EQB000", 3, 2 * MSEC, 500 * USEC)
        sim.run_for(50 * MSEC)
        assert a.stats.preemptions == 0
        assert b.stats.preemptions == 0
        assert a.stats.deadline_misses == 0


class TestRoundRobin:
    def _kernel(self, quantum):
        sim = Simulator(seed=5)
        kernel = RTKernel(sim, KernelConfig(
            latency_model=NullLatencyModel(), rr_quantum_ns=quantum))
        return sim, kernel

    def test_quantum_rotates_equal_priority(self):
        sim, kernel = self._kernel(100 * USEC)
        kernel.start_timer(10 * MSEC)
        # Two long jobs at equal priority: RR interleaves them.
        a = start_periodic(kernel, "RRA000", 3, 10 * MSEC, 3 * MSEC)
        b = start_periodic(kernel, "RRB000", 3, 10 * MSEC, 3 * MSEC)
        sim.run_for(19 * MSEC)  # first releases land at t=10ms
        assert a.stats.preemptions > 5
        assert b.stats.preemptions > 5

    def test_rr_fairness(self):
        sim, kernel = self._kernel(100 * USEC)
        kernel.start_timer(10 * MSEC)
        a = start_periodic(kernel, "RRA000", 3, 10 * MSEC, 4 * MSEC)
        b = start_periodic(kernel, "RRB000", 3, 10 * MSEC, 4 * MSEC)
        sim.run_for(15 * MSEC)  # first releases at 10ms; mid-burst now
        ratio = (a.stats.cpu_time_ns + 1) / (b.stats.cpu_time_ns + 1)
        assert 0.5 < ratio < 2.0

    def test_no_rotation_for_sole_task(self):
        sim, kernel = self._kernel(100 * USEC)
        kernel.start_timer(10 * MSEC)
        a = start_periodic(kernel, "RRA000", 3, 10 * MSEC, 3 * MSEC)
        sim.run_for(50 * MSEC)
        assert a.stats.preemptions == 0

    def test_higher_priority_not_rotated_by_lower(self):
        sim, kernel = self._kernel(100 * USEC)
        kernel.start_timer(10 * MSEC)
        high = start_periodic(kernel, "HIGH00", 1, 10 * MSEC, 3 * MSEC)
        start_periodic(kernel, "LOW000", 5, 10 * MSEC, 3 * MSEC)
        sim.run_for(50 * MSEC)
        assert high.stats.preemptions == 0


class TestMultiCPU:
    def test_tasks_pinned_to_cpus(self, sim, kernel2):
        kernel2.start_timer(1 * MSEC)
        a = start_periodic(kernel2, "CPU0T0", 1, 1 * MSEC, 800 * USEC,
                           cpu=0)
        b = start_periodic(kernel2, "CPU1T0", 1, 1 * MSEC, 800 * USEC,
                           cpu=1)
        sim.run_for(100 * MSEC)
        # 0.8 utilization each would be infeasible on one CPU with the
        # same priority; on two CPUs both run clean.
        assert a.stats.deadline_misses == 0
        assert b.stats.deadline_misses == 0

    def test_no_cross_cpu_interference(self, sim, kernel2):
        kernel2.start_timer(1 * MSEC)
        hog = start_periodic(kernel2, "HOG000", 0, 1 * MSEC, 950 * USEC,
                             cpu=0)
        other = start_periodic(kernel2, "OTHER0", 5, 1 * MSEC, 50 * USEC,
                               cpu=1)
        sim.run_for(50 * MSEC)
        expected = (kernel2.config.irq_entry_ns
                    + kernel2.config.dispatch_cost_ns)
        assert other.stats.latency.maximum == expected

    def test_rt_busy_accounted_per_cpu(self, sim, kernel2):
        kernel2.start_timer(1 * MSEC)
        start_periodic(kernel2, "CPU0T0", 1, 1 * MSEC, 500 * USEC, cpu=0)
        sim.run_for(100 * MSEC)
        assert kernel2.rt_busy_ns(0) > 0
        assert kernel2.rt_busy_ns(1) == 0

    def test_invalid_cpu_rejected(self, kernel2):
        import pytest
        with pytest.raises(ValueError):
            kernel2.create_task("BAD000", periodic_body(0), 1, cpu=7,
                                task_type=TaskType.APERIODIC)
