"""Kernel tests: external suspend/resume and task deletion."""

import pytest

from repro.rtos.errors import TaskStateError
from repro.rtos.requests import Compute, Sleep, SuspendSelf, WaitPeriod
from repro.rtos.task import TaskState, TaskType
from repro.sim.engine import MSEC, USEC


def periodic_body(compute_ns):
    def body(task):
        while True:
            yield WaitPeriod()
            yield Compute(compute_ns)
    return body


def start_periodic(kernel, name="TASK00", priority=2, period=1 * MSEC,
                   compute=100 * USEC):
    task = kernel.create_task(name, periodic_body(compute), priority,
                              task_type=TaskType.PERIODIC,
                              period_ns=period, collect_latency=True)
    kernel.start_task(task)
    return task


class TestSuspendResume:
    def test_suspend_stops_job_execution(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel)
        sim.run_for(10 * MSEC)
        completions = task.stats.completions
        kernel.suspend_task(task)
        sim.run_for(20 * MSEC)
        assert task.stats.completions == completions
        assert task.state is TaskState.SUSPENDED

    def test_releases_skipped_while_suspended(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel)
        sim.run_for(5 * MSEC)
        kernel.suspend_task(task)
        sim.run_for(10 * MSEC)
        assert task.stats.skipped_releases >= 9

    def test_resume_rejoins_grid(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel)
        sim.run_for(5 * MSEC)
        kernel.suspend_task(task)
        sim.run_for(10 * MSEC)
        kernel.resume_task(task)
        completions = task.stats.completions
        sim.run_for(10 * MSEC)
        assert task.stats.completions >= completions + 9
        assert task.stats.deadline_misses == 0

    def test_suspend_mid_compute_conserves_work(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel, period=10 * MSEC, compute=5 * MSEC)
        sim.run_for(12 * MSEC)  # release at 10ms; 2ms into the job
        assert task.state is TaskState.RUNNING
        kernel.suspend_task(task)
        sim.run_for(10 * MSEC)
        kernel.resume_task(task)
        sim.run_for(10 * MSEC)
        # The interrupted job finished with the full 5ms of CPU billed.
        assert task.stats.completions >= 1
        assert task.stats.cpu_time_ns >= 5 * MSEC

    def test_nested_suspend_needs_matching_resumes(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel)
        sim.run_for(3 * MSEC)
        kernel.suspend_task(task)
        kernel.suspend_task(task)
        kernel.resume_task(task)
        assert task.suspended
        completions = task.stats.completions
        sim.run_for(5 * MSEC)
        assert task.stats.completions == completions
        kernel.resume_task(task)
        sim.run_for(5 * MSEC)
        assert task.stats.completions > completions

    def test_resume_unsuspended_raises(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel)
        with pytest.raises(TaskStateError):
            kernel.resume_task(task)

    def test_suspend_counts_in_stats(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel)
        kernel.suspend_task(task)
        assert task.stats.suspensions == 1

    def test_self_suspend_via_request(self, sim, kernel):
        def body(task):
            yield Compute(100 * USEC)
            yield SuspendSelf()
            yield Compute(100 * USEC)

        task = kernel.create_task("SELF00", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        assert task.state is TaskState.SUSPENDED
        assert task.stats.cpu_time_ns == 100 * USEC
        kernel.resume_task(task)
        sim.run_for(1 * MSEC)
        assert task.state is TaskState.DORMANT
        assert task.stats.cpu_time_ns == 200 * USEC

    def test_suspend_while_blocked_defers_wake(self, sim, kernel):
        box = kernel.mailbox("MBX000")

        from repro.rtos.requests import Receive
        received = []

        def body(task):
            message = yield Receive(box, blocking=True)
            received.append(message)

        task = kernel.create_task("BLK000", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        kernel.suspend_task(task)
        box.send_external("hello")
        sim.run_for(1 * MSEC)
        assert received == []  # wake deferred during suspension
        kernel.resume_task(task)
        sim.run_for(1 * MSEC)
        assert received == ["hello"]

    def test_suspend_while_sleeping(self, sim, kernel):
        done = []

        def body(task):
            yield Sleep(2 * MSEC)
            done.append(kernel.now)

        task = kernel.create_task("SLP000", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        kernel.suspend_task(task)
        sim.run_for(5 * MSEC)  # sleep expires while suspended
        assert done == []
        kernel.resume_task(task)
        sim.run_for(1 * MSEC)
        assert len(done) == 1


class TestDelete:
    def test_delete_running_task(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel, period=10 * MSEC, compute=5 * MSEC)
        sim.run_for(12 * MSEC)
        assert task.state is TaskState.RUNNING
        kernel.delete_task(task)
        assert task.state is TaskState.DELETED
        sim.run_for(20 * MSEC)
        assert task.stats.completions == 0

    def test_delete_removes_from_registry(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel, name="GONE00")
        kernel.delete_task(task)
        assert not kernel.exists("GONE00")
        assert task not in kernel.tasks

    def test_delete_is_idempotent(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel)
        kernel.delete_task(task)
        kernel.delete_task(task)  # no raise

    def test_delete_runs_finally_blocks(self, sim, kernel):
        cleaned = []

        def body(task):
            try:
                while True:
                    yield Sleep(1 * MSEC)
            finally:
                cleaned.append(True)

        task = kernel.create_task("FIN000", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(500 * USEC)
        kernel.delete_task(task)
        assert cleaned == [True]

    def test_delete_blocked_task_forgets_waiter(self, sim, kernel):
        from repro.rtos.requests import Receive
        box = kernel.mailbox("MBX000")

        def body(task):
            yield Receive(box, blocking=True)

        task = kernel.create_task("BLK000", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        assert box.recv_waiter_count == 1
        kernel.delete_task(task)
        # The parked entry is stale; a send must not wake a deleted task.
        assert box.send_external("x") is True
        sim.run_for(1 * MSEC)
        assert task.state is TaskState.DELETED

    def test_suspend_deleted_raises(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel)
        kernel.delete_task(task)
        with pytest.raises(TaskStateError):
            kernel.suspend_task(task)

    def test_freed_name_reusable(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = start_periodic(kernel, name="REUSE0")
        kernel.delete_task(task)
        again = start_periodic(kernel, name="REUSE0")
        assert kernel.lookup("REUSE0") is again
