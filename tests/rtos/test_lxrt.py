"""Tests for the LXRT procedural facade."""

import pytest

from repro.rtos.lxrt import LXRT, PIT_FREQUENCY_HZ
from repro.rtos.requests import Compute, WaitPeriod
from repro.rtos.task import TaskState, TaskType
from repro.sim.engine import MSEC, USEC


@pytest.fixture
def lxrt(kernel):
    return LXRT(kernel)


def periodic_body(task):
    while True:
        yield WaitPeriod()
        yield Compute(50 * USEC)


class TestTimeConversion:
    def test_nano2count_uses_pit_frequency(self, lxrt):
        counts = lxrt.nano2count(1_000_000_000)
        assert counts == PIT_FREQUENCY_HZ

    def test_count2nano_roundtrip_is_lossy_like_rtai(self, lxrt):
        # 1 ms is not an integer number of PIT counts: the roundtrip
        # loses sub-count precision, exactly the drift the paper's
        # latency test observes.
        period = lxrt.count2nano(lxrt.nano2count(1 * MSEC))
        assert period != 1 * MSEC
        assert abs(period - 1 * MSEC) < 1000

    def test_rt_get_time(self, sim, lxrt):
        sim.schedule(5 * MSEC, lambda: None)
        sim.run()
        assert lxrt.rt_get_time_ns() == 5 * MSEC
        assert lxrt.rt_get_time() == lxrt.nano2count(5 * MSEC)


class TestTaskAPI:
    def test_rt_task_init_creates_aperiodic(self, lxrt):
        task = lxrt.rt_task_init("TASK00", periodic_body, priority=2)
        assert task.task_type is TaskType.APERIODIC
        assert task.state is TaskState.DORMANT

    def test_make_periodic_starts_task(self, sim, lxrt):
        lxrt.rt_set_periodic_mode()
        lxrt.start_rt_timer_ns(1 * MSEC)
        task = lxrt.rt_task_init("TASK00", periodic_body, priority=2)
        lxrt.rt_task_make_periodic(task, 1 * MSEC, collect_latency=True)
        sim.run_for(10 * MSEC)
        assert task.stats.completions > 5

    def test_suspend_resume_via_facade(self, sim, lxrt):
        lxrt.start_rt_timer_ns(1 * MSEC)
        task = lxrt.rt_task_init("TASK00", periodic_body, priority=2)
        lxrt.rt_task_make_periodic(task, 1 * MSEC)
        sim.run_for(5 * MSEC)
        lxrt.rt_task_suspend(task)
        assert task.suspended
        lxrt.rt_task_resume(task)
        assert not task.suspended

    def test_delete_via_facade(self, sim, lxrt):
        lxrt.start_rt_timer_ns(1 * MSEC)
        task = lxrt.rt_task_init("TASK00", periodic_body, priority=2)
        lxrt.rt_task_make_periodic(task, 1 * MSEC)
        lxrt.rt_task_delete(task)
        assert task.state is TaskState.DELETED


class TestIPCFacade:
    def test_shm(self, lxrt):
        segment = lxrt.rt_shm_alloc("SHM000", "Integer", 4, owner="me")
        segment.write_at(0, 5)
        assert lxrt.rt_get_adr("SHM000").read_at(0) == 5
        lxrt.rt_shm_free("SHM000", owner="me")
        assert not lxrt.kernel.exists("SHM000")

    def test_mailbox(self, lxrt):
        box = lxrt.rt_mbx_init("MBX000", capacity=4)
        assert box.send_external("x")
        lxrt.rt_mbx_delete(box)
        assert not lxrt.kernel.exists("MBX000")

    def test_semaphore(self, lxrt):
        sem = lxrt.rt_sem_init("SEM000", initial=2)
        assert sem.count == 2
        lxrt.rt_sem_delete(sem)
        assert not lxrt.kernel.exists("SEM000")

    def test_nam2num_facade(self, lxrt):
        assert lxrt.num2nam(lxrt.nam2num("CAMERA")) == "CAMERA"
