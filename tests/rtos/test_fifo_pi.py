"""Tests for RTAI FIFOs and priority-inheritance semaphores."""

import pytest

from repro.rtos.fifo import LinuxWakeupModel
from repro.rtos.load import apply_stress
from repro.rtos.requests import Compute, SemSignal, SemWait, Sleep, \
    WaitPeriod
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, SEC


class TestRTFifo:
    def test_put_and_poll(self, kernel):
        fifo = kernel.fifo_create("FIFO00", capacity=8)
        assert fifo.put("a") and fifo.put("b")
        assert fifo.read() == ["a", "b"]
        assert fifo.read() == []
        assert fifo.put_count == 2 and fifo.read_count == 2

    def test_overflow_drops_nonblocking(self, kernel):
        fifo = kernel.fifo_create("FIFO00", capacity=2)
        assert fifo.put(1) and fifo.put(2)
        assert fifo.put(3) is False  # rtf_put never blocks
        assert fifo.dropped_count == 1
        assert fifo.read() == [1, 2]

    def test_read_max_records(self, kernel):
        fifo = kernel.fifo_create("FIFO00", capacity=8)
        for value in range(5):
            fifo.put(value)
        assert fifo.read(max_records=2) == [0, 1]
        assert len(fifo) == 3

    def test_registered_in_kernel_namespace(self, kernel):
        fifo = kernel.fifo_create("FIFO00", capacity=4)
        assert kernel.lookup("FIFO00") is fifo

    def test_user_handler_runs_after_wakeup_delay(self, sim, kernel):
        fifo = kernel.fifo_create("FIFO00", capacity=8)
        seen = []
        fifo.set_user_handler(lambda records: seen.append(
            (kernel.now, records)))
        fifo.put("frame")
        assert seen == []  # not synchronous
        sim.run_for(5 * MSEC)
        assert len(seen) == 1
        assert seen[0][1] == ["frame"]
        assert seen[0][0] > 0  # wakeup delay elapsed

    def test_handler_batches_racing_puts(self, sim, kernel):
        fifo = kernel.fifo_create("FIFO00", capacity=64)
        batches = []
        fifo.set_user_handler(batches.append)
        for value in range(5):
            fifo.put(value)
        sim.run_for(10 * MSEC)
        assert sum(len(batch) for batch in batches) == 5

    def test_wakeup_delay_grows_with_linux_load(self, sim, kernel):
        def measure(stress):
            fifo = kernel.fifo_create("FIF%03d" % stress,
                                      capacity=1024)
            fifo.set_user_handler(lambda records: None)
            producer_state = {"fifo": fifo}

            def body(task):
                while True:
                    yield WaitPeriod()
                    producer_state["fifo"].put(kernel.now)

            kernel.start_timer(1 * MSEC) if not kernel.timer_started \
                else None
            task = kernel.create_task("PRD%03d" % stress, body, 1,
                                      task_type=TaskType.PERIODIC,
                                      period_ns=1 * MSEC)
            kernel.start_task(task)
            sim.run_for(1 * SEC)
            kernel.delete_task(task)
            lat = fifo.delivery_latencies_ns
            return sum(lat) / len(lat)

        light = measure(0)
        apply_stress(kernel)
        stressed = measure(1)
        # RT->userspace delivery IS hurt by Linux load (unlike the RT
        # side itself): the complementary half of the Table-1 story.
        assert stressed > light * 10

    def test_bad_capacity_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.fifo_create("FIFO00", capacity=0)

    def test_wakeup_model_bounds(self):
        from repro.sim.rng import RandomStreams
        model = LinuxWakeupModel()
        rng = RandomStreams(1)
        for demand in (0.0, 0.5, 1.0):
            for _ in range(100):
                assert model.sample(rng, "F", demand) >= 0


class TestPriorityInheritance:
    def _run_inversion(self, sim, kernel, protocol):
        """Classic Mars-Pathfinder setup: low-priority task holds the
        resource, medium-priority hog preempts it, high-priority task
        blocks on the resource.  Returns the high task's blocking time.
        """
        if protocol == "inherit":
            res = kernel.resource_semaphore("RES000")
        else:
            res = kernel.semaphore("RES000", initial=1)
        timeline = {}

        def low_body(task):
            yield SemWait(res)
            yield Compute(4 * MSEC)   # long critical section
            yield SemSignal(res)

        def medium_body(task):
            yield Sleep(1 * MSEC)
            yield Compute(20 * MSEC)  # hog, preempts low

        def high_body(task):
            yield Sleep(2 * MSEC)
            timeline["request"] = kernel.now
            yield SemWait(res)
            timeline["acquired"] = kernel.now
            yield SemSignal(res)

        for name, body, priority in (("LOWT00", low_body, 30),
                                     ("MEDT00", medium_body, 20),
                                     ("HIGHT0", high_body, 10)):
            task = kernel.create_task(name, body, priority,
                                      task_type=TaskType.APERIODIC)
            kernel.start_task(task)
        sim.run_for(100 * MSEC)
        return timeline["acquired"] - timeline["request"]

    def test_plain_semaphore_suffers_inversion(self, sim, kernel):
        blocked = self._run_inversion(sim, kernel, "none")
        # High waits for the 20 ms medium hog + the critical section.
        assert blocked > 15 * MSEC

    def test_inheritance_bounds_inversion(self):
        from repro.rtos.kernel import KernelConfig, RTKernel
        from repro.rtos.latency import NullLatencyModel
        from repro.sim.engine import Simulator
        sim = Simulator(seed=2)
        kernel = RTKernel(sim, KernelConfig(
            latency_model=NullLatencyModel()))
        blocked = self._run_inversion(sim, kernel, "inherit")
        # Bounded by the remaining critical section (~3 ms), not by
        # the medium hog.
        assert blocked < 5 * MSEC

    def test_owner_priority_restored_after_release(self, sim, kernel):
        res = kernel.resource_semaphore("RES000")
        low_priority_after = {}

        def low_body(task):
            yield SemWait(res)
            yield Compute(2 * MSEC)
            yield SemSignal(res)
            low_priority_after["value"] = task.priority

        def high_body(task):
            yield Sleep(1 * MSEC)
            yield SemWait(res)
            yield SemSignal(res)

        low = kernel.create_task("LOWT00", low_body, 30,
                                 task_type=TaskType.APERIODIC)
        high = kernel.create_task("HIGHT0", high_body, 10,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(low)
        kernel.start_task(high)
        sim.run_for(50 * MSEC)
        assert low_priority_after["value"] == 30
        assert res.boost_count == 1
        assert res.owner is None

    def test_handoff_to_highest_priority_waiter(self, sim, kernel):
        res = kernel.resource_semaphore("RES000")
        order = []

        def holder_body(task):
            yield SemWait(res)
            yield Compute(2 * MSEC)
            yield SemSignal(res)

        def waiter_body(label):
            def body(task):
                yield Sleep(1 * MSEC)
                yield SemWait(res)
                order.append(label)
                yield SemSignal(res)
            return body

        kernel.start_task(kernel.create_task(
            "HOLD00", holder_body, 5, task_type=TaskType.APERIODIC))
        kernel.start_task(kernel.create_task(
            "WLOW00", waiter_body("low"), 20,
            task_type=TaskType.APERIODIC))
        kernel.start_task(kernel.create_task(
            "WHIGH0", waiter_body("high"), 1,
            task_type=TaskType.APERIODIC))
        sim.run_for(50 * MSEC)
        assert order == ["high", "low"]
