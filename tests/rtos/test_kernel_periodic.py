"""Kernel tests: periodic task release, latency accounting, deadlines."""

import pytest

from repro.rtos.errors import TimerNotStartedError
from repro.rtos.kernel import TIMER_ONESHOT
from repro.rtos.requests import Compute, WaitPeriod
from repro.rtos.task import TaskState, TaskType
from repro.sim.engine import MSEC, SEC, USEC


def periodic_body(compute_ns):
    def body(task):
        while True:
            yield WaitPeriod()
            if compute_ns:
                yield Compute(compute_ns)
    return body


def make_periodic(kernel, name="TASK0", priority=2, period=1 * MSEC,
                  compute=50 * USEC, cpu=0, body=None, **kwargs):
    task = kernel.create_task(
        name, body or periodic_body(compute), priority, cpu=cpu,
        task_type=TaskType.PERIODIC, period_ns=period,
        collect_latency=True, **kwargs)
    kernel.start_task(task)
    return task


class TestPeriodicRelease:
    def test_requires_timer(self, kernel):
        task = kernel.create_task("T0", periodic_body(0), 1,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=MSEC)
        with pytest.raises(TimerNotStartedError):
            kernel.start_task(task)

    def test_activations_match_elapsed_periods(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = make_periodic(kernel)
        sim.run_for(1 * SEC)
        # Releases start one period in; allow the boundary release.
        assert task.stats.activations in (999, 1000)

    def test_completions_track_activations(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = make_periodic(kernel)
        sim.run_for(100 * MSEC)
        assert abs(task.stats.activations - task.stats.completions) <= 1

    def test_latency_is_wakeup_path_cost_with_null_model(self, sim,
                                                         kernel):
        kernel.start_timer(1 * MSEC)
        task = make_periodic(kernel)
        sim.run_for(50 * MSEC)
        values = set(task.stats.latency.values)
        # Full wakeup path: IRQ entry + scheduler pass + context switch.
        expected = (kernel.config.irq_entry_ns
                    + kernel.config.dispatch_cost_ns)
        assert values == {expected}

    def test_cpu_time_accumulates(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = make_periodic(kernel, compute=100 * USEC)
        sim.run_for(100 * MSEC)
        expected = task.stats.completions * 100 * USEC
        assert task.stats.cpu_time_ns == expected

    def test_no_deadline_misses_when_underloaded(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = make_periodic(kernel, compute=100 * USEC)
        sim.run_for(200 * MSEC)
        assert task.stats.deadline_misses == 0
        assert task.stats.overruns == 0

    def test_release_quantized_to_timer_grid(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        sim.run_for(300 * USEC)  # desync: timer epoch at 0, now 300us
        task = make_periodic(kernel, period=1 * MSEC)
        sim.run_for(10 * MSEC)
        # Nominal releases snap to the 1ms grid anchored at t=0.
        assert task._next_release % MSEC == 0

    def test_oneshot_mode_no_quantization(self, sim, kernel):
        kernel.set_timer_mode(TIMER_ONESHOT)
        kernel.start_timer(1 * MSEC)
        sim.run_for(300 * USEC)
        task = make_periodic(kernel, period=1 * MSEC)
        assert task._next_release == 300 * USEC + 1 * MSEC

    def test_periodic_task_state_waits_between_jobs(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = make_periodic(kernel, compute=10 * USEC)
        sim.run_for(1 * MSEC + 500 * USEC)
        assert task.state is TaskState.WAITING_PERIOD


class TestOverrun:
    def test_wcet_over_period_overruns(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = make_periodic(kernel, compute=1500 * USEC)  # 1.5x period
        sim.run_for(50 * MSEC)
        assert task.stats.overruns > 0
        assert task.stats.deadline_misses > 0

    def test_overrun_latency_positive(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = make_periodic(kernel, compute=1200 * USEC)
        sim.run_for(20 * MSEC)
        assert task.stats.latency.maximum > 0

    def test_timer_stop_halts_releases(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = make_periodic(kernel)
        sim.run_for(10 * MSEC)
        count = task.stats.activations
        kernel.stop_timer()
        sim.run_for(20 * MSEC)
        assert task.stats.activations <= count + 1


class TestAperiodic:
    def test_start_runs_once(self, sim, kernel):
        runs = []

        def body(task):
            runs.append(kernel.now)
            yield Compute(10 * USEC)

        task = kernel.create_task("AP0", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        assert len(runs) == 1
        assert task.state is TaskState.DORMANT
        assert task.stats.activations == 1

    def test_release_restarts(self, sim, kernel):
        runs = []

        def body(task):
            runs.append(kernel.now)
            yield Compute(10 * USEC)

        task = kernel.create_task("AP0", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        kernel.release_task(task)
        sim.run_for(1 * MSEC)
        assert len(runs) == 2
        assert task.stats.activations == 2

    def test_release_while_running_counts_overrun(self, sim, kernel):
        def body(task):
            yield Compute(10 * MSEC)

        task = kernel.create_task("AP0", body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        sim.run_for(1 * MSEC)
        kernel.release_task(task)  # still computing
        assert task.stats.overruns == 1

    def test_periodic_release_task_rejected(self, sim, kernel):
        from repro.rtos.errors import TaskStateError
        kernel.start_timer(1 * MSEC)
        task = make_periodic(kernel)
        with pytest.raises(TaskStateError):
            kernel.release_task(task)
