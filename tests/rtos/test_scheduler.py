"""Unit tests for the ready-queue scheduling policies."""

import pytest

from repro.rtos.errors import SchedulerError
from repro.rtos.scheduler import (
    EDFScheduler,
    PriorityScheduler,
    make_scheduler,
)


class FakeTask:
    def __init__(self, name, priority, release=None, deadline=None):
        self.name = name
        self.priority = priority
        self._release_nominal = release
        self._pending_nominals = []
        self.deadline_ns = deadline

    def __repr__(self):
        return "FakeTask(%s)" % self.name


class TestPriorityScheduler:
    def test_picks_highest_priority(self):
        sched = PriorityScheduler()
        low, high = FakeTask("low", 5), FakeTask("high", 1)
        sched.add(low)
        sched.add(high)
        assert sched.pick() is high

    def test_fifo_within_priority(self):
        sched = PriorityScheduler()
        a, b = FakeTask("a", 3), FakeTask("b", 3)
        sched.add(a)
        sched.add(b)
        assert sched.pick() is a

    def test_rotate_moves_head_to_tail(self):
        sched = PriorityScheduler()
        a, b = FakeTask("a", 3), FakeTask("b", 3)
        sched.add(a)
        sched.add(b)
        sched.rotate(a)
        assert sched.pick() is b

    def test_rotate_non_head_is_noop(self):
        sched = PriorityScheduler()
        a, b = FakeTask("a", 3), FakeTask("b", 3)
        sched.add(a)
        sched.add(b)
        sched.rotate(b)
        assert sched.pick() is a

    def test_remove(self):
        sched = PriorityScheduler()
        a = FakeTask("a", 1)
        sched.add(a)
        sched.remove(a)
        assert sched.pick() is None
        assert len(sched) == 0

    def test_remove_absent_raises(self):
        sched = PriorityScheduler()
        with pytest.raises(SchedulerError):
            sched.remove(FakeTask("ghost", 1))

    def test_double_add_raises(self):
        sched = PriorityScheduler()
        a = FakeTask("a", 1)
        sched.add(a)
        with pytest.raises(SchedulerError):
            sched.add(a)

    def test_would_preempt_strictly_higher_only(self):
        sched = PriorityScheduler()
        assert sched.would_preempt(FakeTask("h", 1), FakeTask("l", 2))
        assert not sched.would_preempt(FakeTask("e", 2), FakeTask("l", 2))
        assert not sched.would_preempt(FakeTask("w", 3), FakeTask("l", 2))

    def test_peers_ready(self):
        sched = PriorityScheduler()
        running = FakeTask("run", 3)
        assert not sched.peers_ready(running)
        sched.add(FakeTask("peer", 3))
        assert sched.peers_ready(running)

    def test_empty_pick_none(self):
        assert PriorityScheduler().pick() is None

    def test_len_tracks_all_levels(self):
        sched = PriorityScheduler()
        sched.add(FakeTask("a", 1))
        sched.add(FakeTask("b", 2))
        sched.add(FakeTask("c", 2))
        assert len(sched) == 3


class TestEDFScheduler:
    def test_earliest_deadline_wins(self):
        sched = EDFScheduler()
        late = FakeTask("late", 1, release=0, deadline=2000)
        soon = FakeTask("soon", 5, release=0, deadline=1000)
        sched.add(late)
        sched.add(soon)
        assert sched.pick() is soon

    def test_no_deadline_sorts_after_deadlines(self):
        sched = EDFScheduler()
        deadline = FakeTask("d", 9, release=0, deadline=10_000_000)
        no_deadline = FakeTask("n", 0)
        sched.add(no_deadline)
        sched.add(deadline)
        assert sched.pick() is deadline

    def test_no_deadline_ties_break_by_priority(self):
        sched = EDFScheduler()
        a = FakeTask("a", 5)
        b = FakeTask("b", 2)
        sched.add(a)
        sched.add(b)
        assert sched.pick() is b

    def test_remove_lazy_deletion(self):
        sched = EDFScheduler()
        a = FakeTask("a", 1, release=0, deadline=100)
        b = FakeTask("b", 1, release=0, deadline=200)
        sched.add(a)
        sched.add(b)
        sched.remove(a)
        assert sched.pick() is b
        assert len(sched) == 1

    def test_readd_after_remove(self):
        sched = EDFScheduler()
        a = FakeTask("a", 1, release=0, deadline=100)
        sched.add(a)
        sched.remove(a)
        sched.add(a)
        assert sched.pick() is a

    def test_remove_absent_raises(self):
        with pytest.raises(SchedulerError):
            EDFScheduler().remove(FakeTask("x", 1))

    def test_double_add_raises(self):
        sched = EDFScheduler()
        a = FakeTask("a", 1, release=0, deadline=100)
        sched.add(a)
        with pytest.raises(SchedulerError):
            sched.add(a)

    def test_would_preempt_by_deadline(self):
        sched = EDFScheduler()
        running = FakeTask("run", 1, release=0, deadline=5000)
        sooner = FakeTask("soon", 9, release=0, deadline=1000)
        later = FakeTask("late", 0, release=0, deadline=9000)
        assert sched.would_preempt(sooner, running)
        assert not sched.would_preempt(later, running)


class TestFactory:
    def test_priority(self):
        sched = make_scheduler("priority", rr_quantum_ns=100)
        assert isinstance(sched, PriorityScheduler)
        assert sched.rr_quantum_ns == 100

    def test_edf(self):
        assert isinstance(make_scheduler("edf"), EDFScheduler)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_scheduler("lottery")
