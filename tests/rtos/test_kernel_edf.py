"""Kernel tests: EDF scheduling policy end-to-end.

Regression suite for the ready-queue deadline bug where a freshly
released task was sorted by its *previous* job's deadline (found by
benchmark A2).
"""

from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import NullLatencyModel
from repro.rtos.requests import Compute, WaitPeriod
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, SEC, USEC, Simulator


def periodic_body(compute_ns):
    def body(task):
        while True:
            yield WaitPeriod()
            yield Compute(compute_ns)
    return body


def edf_kernel(seed=1):
    sim = Simulator(seed=seed)
    kernel = RTKernel(sim, KernelConfig(
        latency_model=NullLatencyModel(), scheduler_policy="edf",
        irq_entry_ns=0, scheduler_overhead_ns=0, context_switch_ns=0))
    kernel.start_timer(1 * MSEC)
    return sim, kernel


def start(kernel, name, period, compute, priority=0):
    task = kernel.create_task(name, periodic_body(compute), priority,
                              task_type=TaskType.PERIODIC,
                              period_ns=period, collect_latency=True)
    kernel.start_task(task)
    return task


class TestEDFExecution:
    def test_full_utilization_non_harmonic_runs_clean(self):
        # U = 0.5 + 0.3 + 0.2 = 1.0 with non-harmonic periods: EDF is
        # optimal, so zero misses; RM would fail this set.
        sim, kernel = edf_kernel()
        tasks = [
            start(kernel, "EDFA00", 2 * MSEC, 1 * MSEC),
            start(kernel, "EDFB00", 5 * MSEC, 1500 * USEC),
            start(kernel, "EDFC00", 10 * MSEC, 2 * MSEC),
        ]
        sim.run_for(1 * SEC)
        for task in tasks:
            assert task.stats.deadline_misses == 0, task.name
            # At exact U=1 a job can finish precisely at its deadline,
            # which the release interrupt (fired first at the same
            # instant) counts as a boundary overrun; that is a
            # measurement artifact, not a missed deadline -- completions
            # must still track activations.
            assert task.stats.completions \
                >= task.stats.activations - 1, task.name

    def test_fresh_release_uses_new_deadline(self):
        # Regression: T2's stale (old-job) deadline must not let it
        # preempt T1 whose real deadline is sooner.
        sim, kernel = edf_kernel()
        fast = start(kernel, "FAST00", 2 * MSEC, 900 * USEC)
        slow = start(kernel, "SLOW00", 5 * MSEC, 2500 * USEC)
        sim.run_for(1 * SEC)
        assert fast.stats.deadline_misses == 0
        assert slow.stats.deadline_misses == 0

    def test_overload_misses_land_somewhere(self):
        sim, kernel = edf_kernel()
        a = start(kernel, "OVLA00", 2 * MSEC, 1500 * USEC)
        b = start(kernel, "OVLB00", 4 * MSEC, 2 * MSEC)  # U = 1.25
        sim.run_for(200 * MSEC)
        assert (a.stats.deadline_misses + a.stats.overruns
                + b.stats.deadline_misses + b.stats.overruns) > 0

    def test_priority_field_breaks_no_deadline_ties_only(self):
        # Static priority is irrelevant under EDF for deadline-bearing
        # tasks: a "low-priority" short-deadline task still wins.
        sim, kernel = edf_kernel()
        urgent = start(kernel, "URGT00", 2 * MSEC, 1 * MSEC,
                       priority=99)
        relaxed = start(kernel, "RLXD00", 20 * MSEC, 10 * MSEC,
                        priority=0)
        sim.run_for(500 * MSEC)
        assert urgent.stats.deadline_misses == 0
