"""Tests for the RTAI-style watchdog."""

import pytest

from repro.rtos.requests import Compute, WaitPeriod
from repro.rtos.task import TaskState, TaskType
from repro.rtos.watchdog import Watchdog
from repro.sim.engine import MSEC, SEC, USEC


def runaway_body(task):
    yield Compute(10 * SEC)  # never yields within any sane window


def healthy_body(task):
    while True:
        yield WaitPeriod()
        yield Compute(200 * USEC)


class TestWatchdog:
    def test_runaway_suspended(self, sim, kernel):
        task = kernel.create_task("RUNAWY", runaway_body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        watchdog = Watchdog(kernel, limit_ns=10 * MSEC).start()
        sim.run_for(100 * MSEC)
        assert task.state is TaskState.SUSPENDED
        assert len(watchdog.interventions) == 1
        time_ns, name, occupancy = watchdog.interventions[0]
        assert name == "RUNAWY"
        assert occupancy > 10 * MSEC
        assert time_ns < 15 * MSEC  # caught within ~limit + period

    def test_fault_policy_quarantines(self, sim, kernel):
        faults = []
        kernel.on_task_fault = lambda task, error: faults.append(
            task.name)
        task = kernel.create_task("RUNAWY", runaway_body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        Watchdog(kernel, limit_ns=10 * MSEC, policy="fault").start()
        sim.run_for(100 * MSEC)
        assert task.state is TaskState.FAULTED
        assert "watchdog" in str(task.fault)
        assert faults == ["RUNAWY"]

    def test_healthy_tasks_untouched(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        task = kernel.create_task("GOOD00", healthy_body, 1,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=1 * MSEC)
        kernel.start_task(task)
        watchdog = Watchdog(kernel, limit_ns=10 * MSEC).start()
        sim.run_for(1 * SEC)
        assert watchdog.interventions == []
        assert task.stats.completions >= 990

    def test_runaway_cannot_starve_peers_once_caught(self, sim, kernel):
        kernel.start_timer(1 * MSEC)
        bad = kernel.create_task("RUNAWY", runaway_body, 1,
                                 task_type=TaskType.APERIODIC)
        good = kernel.create_task("GOOD00", healthy_body, 5,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=1 * MSEC)
        kernel.start_task(good)
        kernel.start_task(bad)  # higher priority: starves GOOD00
        Watchdog(kernel, limit_ns=5 * MSEC).start()
        sim.run_for(1 * SEC)
        assert bad.state is TaskState.SUSPENDED
        # GOOD00 lost at most the watchdog window, then ran clean.
        assert good.stats.completions >= 980

    def test_immunity(self, sim, kernel):
        task = kernel.create_task("RUNAWY", runaway_body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        watchdog = Watchdog(kernel, limit_ns=10 * MSEC).start()
        watchdog.grant_immunity("runawy")
        sim.run_for(100 * MSEC)
        assert task.state is TaskState.RUNNING
        assert watchdog.interventions == []

    def test_stop_disarms(self, sim, kernel):
        task = kernel.create_task("RUNAWY", runaway_body, 1,
                                  task_type=TaskType.APERIODIC)
        kernel.start_task(task)
        watchdog = Watchdog(kernel, limit_ns=10 * MSEC).start()
        watchdog.stop()
        sim.run_for(100 * MSEC)
        assert task.state is TaskState.RUNNING

    def test_validation(self, kernel):
        with pytest.raises(ValueError):
            Watchdog(kernel, limit_ns=0)
        with pytest.raises(ValueError):
            Watchdog(kernel, limit_ns=1000, policy="reboot")

    def test_start_idempotent(self, sim, kernel):
        watchdog = Watchdog(kernel, limit_ns=10 * MSEC)
        watchdog.start()
        watchdog.start()
        sim.run_for(50 * MSEC)  # one event chain, no crash
