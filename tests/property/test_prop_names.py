"""Property-based tests for RTAI name encoding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.rtos.names import nam2num, num2nam, validate_name

name_strategy = st.text(
    alphabet="0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ_$", min_size=1,
    max_size=6)


class TestNameProperties:
    @given(name_strategy)
    def test_roundtrip(self, name):
        assert num2nam(nam2num(name)) == name.upper()

    @given(name_strategy)
    def test_validate_idempotent(self, name):
        canonical = validate_name(name)
        assert validate_name(canonical) == canonical

    @given(name_strategy, name_strategy)
    def test_injective(self, a, b):
        if a.upper() != b.upper():
            assert nam2num(a) != nam2num(b)
        else:
            assert nam2num(a) == nam2num(b)

    @given(name_strategy)
    def test_case_insensitive(self, name):
        assert nam2num(name.lower() if name.isupper() else name.upper()) \
            == nam2num(name)

    @given(name_strategy)
    def test_encoding_nonnegative(self, name):
        assert nam2num(name) >= 0
