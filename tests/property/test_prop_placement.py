"""Property-based tests for placement + admission on multi-core."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComponentState, UtilizationBoundPolicy
from repro.core.placement import BestFitPlacement, FirstFitPlacement
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml

usages = st.lists(
    st.floats(min_value=0.05, max_value=0.6, allow_nan=False),
    min_size=1, max_size=10)
policies = st.sampled_from(["best-fit", "first-fit"])
cpu_counts = st.integers(min_value=1, max_value=3)

CAP = 0.9


def build(num_cpus, policy_name):
    platform = build_platform(
        seed=1,
        kernel_config=KernelConfig(num_cpus=num_cpus,
                                   latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=CAP))
    placement = (BestFitPlacement(cap=CAP) if policy_name == "best-fit"
                 else FirstFitPlacement(cap=CAP))
    platform.drcr.placement_service = placement
    platform.start_timer(1 * MSEC)
    return platform


class TestPlacementProperties:
    @settings(max_examples=30, deadline=None)
    @given(usages, policies, cpu_counts)
    def test_per_cpu_budget_never_exceeded(self, usage_list,
                                           policy_name, num_cpus):
        platform = build(num_cpus, policy_name)
        for index, usage in enumerate(usage_list):
            xml = make_descriptor_xml(
                "P%05d" % index, cpuusage=round(usage, 3),
                frequency=1000, priority=1 + index, cpu=0)
            deploy(platform, xml)
        for cpu in range(num_cpus):
            assert platform.drcr.registry.declared_utilization(cpu) \
                <= CAP + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(usages, policies, cpu_counts)
    def test_admitted_set_maximal_wrt_total_capacity(self, usage_list,
                                                     policy_name,
                                                     num_cpus):
        # If something stayed unsatisfied, then no CPU can fit it --
        # the placement policy left no obvious capacity on the table.
        platform = build(num_cpus, policy_name)
        for index, usage in enumerate(usage_list):
            xml = make_descriptor_xml(
                "P%05d" % index, cpuusage=round(usage, 3),
                frequency=1000, priority=1 + index, cpu=0)
            deploy(platform, xml)
        waiting = platform.drcr.registry.in_state(
            ComponentState.UNSATISFIED)
        for component in waiting:
            usage = component.contract.cpu_usage
            for cpu in range(num_cpus):
                load = platform.drcr.registry.declared_utilization(cpu)
                assert load + usage > CAP + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(usages)
    def test_single_cpu_placement_equals_no_placement(self, usage_list):
        def admitted(with_placement):
            platform = build(1, "best-fit")
            if not with_placement:
                platform.drcr.placement_service = None
            for index, usage in enumerate(usage_list):
                xml = make_descriptor_xml(
                    "P%05d" % index, cpuusage=round(usage, 3),
                    frequency=1000, priority=1 + index, cpu=0)
                deploy(platform, xml)
            return sorted(
                c.name for c in platform.drcr.registry.in_state(
                    ComponentState.ACTIVE))

        assert admitted(True) == admitted(False)
