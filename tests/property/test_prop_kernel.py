"""Property-based tests on kernel scheduling invariants.

Random periodic task sets are executed on the simulated kernel and the
results checked against accounting invariants and against the
analytical schedulability predictions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import TaskSpec, rta_schedulable
from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import NullLatencyModel
from repro.rtos.requests import Compute, WaitPeriod
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, USEC, Simulator


@st.composite
def task_sets(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    tasks = []
    for index in range(count):
        period_ms = draw(st.sampled_from([1, 2, 4, 5, 10]))
        utilization = draw(st.floats(min_value=0.01, max_value=0.4,
                                     allow_nan=False))
        priority = draw(st.integers(min_value=0, max_value=4))
        tasks.append(("T%05d" % index, period_ms * MSEC,
                      int(utilization * period_ms * MSEC), priority))
    return tasks


def run_task_set(tasks, duration=100 * MSEC):
    sim = Simulator(seed=3)
    kernel = RTKernel(sim, KernelConfig(latency_model=NullLatencyModel()))
    kernel.start_timer(1 * MSEC)
    running = []
    for name, period, wcet, priority in tasks:
        def body(task, wcet=wcet):
            while True:
                yield WaitPeriod()
                yield Compute(wcet)
        task = kernel.create_task(name, body, priority,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=period,
                                  collect_latency=True)
        kernel.start_task(task)
        running.append(task)
    sim.run_for(duration)
    return kernel, running


class TestKernelInvariants:
    @settings(max_examples=25, deadline=None)
    @given(task_sets())
    def test_cpu_time_conservation(self, tasks):
        kernel, running = run_task_set(tasks)
        total_task_time = sum(t.stats.cpu_time_ns for t in running)
        # Kernel busy time = task compute time + dispatch overheads;
        # never less than the task time, never more than elapsed.
        assert kernel.rt_busy_ns(0) >= total_task_time
        assert kernel.rt_busy_ns(0) <= kernel.sim.now

    @settings(max_examples=25, deadline=None)
    @given(task_sets())
    def test_completions_never_exceed_activations(self, tasks):
        _, running = run_task_set(tasks)
        for task in running:
            assert task.stats.completions <= task.stats.activations

    @settings(max_examples=25, deadline=None)
    @given(task_sets())
    def test_rta_positive_prediction_holds(self, tasks):
        # RTA is exact for the zero-overhead model; with small fixed
        # dispatch overheads a comfortably-passing set must still run
        # without misses.  (Only assert the schedulable direction: the
        # overheads can break exactly-critical sets.)
        specs = [TaskSpec(name, period, wcet, priority=priority)
                 for name, period, wcet, priority in tasks]
        # Inflate WCET by the per-job overhead bound before asking RTA.
        inflated = [TaskSpec(s.name, s.period_ns, s.wcet_ns + 10 * USEC,
                             priority=s.priority) for s in specs]
        ok, _ = rta_schedulable(inflated)
        if not ok:
            return
        _, running = run_task_set(tasks)
        for task in running:
            assert task.stats.deadline_misses == 0, task.name

    @settings(max_examples=15, deadline=None)
    @given(task_sets())
    def test_latency_nonnegative_with_null_model(self, tasks):
        _, running = run_task_set(tasks)
        for task in running:
            if task.stats.latency is not None \
                    and len(task.stats.latency):
                assert task.stats.latency.minimum >= 0
