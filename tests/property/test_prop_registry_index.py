"""Property-based consistency of the ComponentRegistry indexes.

After any sequence of register / unregister / state-change operations,
every index-backed query must equal the brute-force scan over
``registry.all()`` it replaced (including ordering).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.component import DRComComponent, LifecycleToken
from repro.core.descriptor import ComponentDescriptor
from repro.core.lifecycle import ComponentState
from repro.core.ports import PortDirection, PortInterface, PortSpec
from repro.core.registry import ComponentRegistry

from conftest import make_descriptor_xml

_TOKEN = LifecycleToken("prop-test")
_SIGNATURES = ["SIGA00", "SIGB00", "SIGC00"]
_ADMITTED = (ComponentState.ACTIVE, ComponentState.SUSPENDED)

# Direct assignment (the tests' force_state shortcut) must keep the
# state index consistent, so the strategy assigns states freely.
states = st.sampled_from(list(ComponentState))
signatures = st.sampled_from(_SIGNATURES)


@st.composite
def operations(draw):
    ops = []
    for _ in range(draw(st.integers(min_value=1, max_value=25))):
        kind = draw(st.sampled_from(["add", "remove", "set_state"]))
        if kind == "add":
            ops.append(("add",
                        draw(st.lists(signatures, max_size=2,
                                      unique=True)),
                        draw(st.lists(signatures, max_size=2,
                                      unique=True)),
                        draw(st.integers(min_value=0, max_value=1))))
        else:
            ops.append((kind, draw(st.integers(min_value=0,
                                               max_value=30)),
                        draw(states)))
    return ops


def build_component(name, outports, inports, cpu):
    xml = make_descriptor_xml(
        name, cpuusage=0.01, cpu=cpu,
        outports=[(port, "RTAI.SHM", "Integer", 4) for port in outports],
        inports=[(port, "RTAI.SHM", "Integer", 4) for port in inports])
    return DRComComponent(ComponentDescriptor.from_xml(xml), None,
                          _TOKEN)


def apply_ops(ops):
    registry = ComponentRegistry()
    counter = 0
    for op in ops:
        if op[0] == "add":
            _, outports, inports, cpu = op
            registry.add(build_component("N%05d" % counter, outports,
                                         inports, cpu))
            counter += 1
        else:
            members = registry.all()
            if not members:
                continue
            target = members[op[1] % len(members)]
            if op[0] == "remove":
                registry.remove(target)
            else:
                target.state = op[2]
    return registry


def probe_inport(signature):
    return PortSpec(signature, PortDirection.IN, PortInterface.RTAI_SHM,
                    "Integer", 4)


class TestIndexConsistency:
    @settings(max_examples=60, deadline=None)
    @given(operations())
    def test_state_index_matches_bruteforce(self, ops):
        registry = apply_ops(ops)
        members = registry.all()
        for state in ComponentState:
            expected = [c for c in members if c.state is state]
            assert registry.in_state(state) == expected
        counts = registry.state_counts()
        for state in ComponentState:
            assert counts[state] == sum(
                1 for c in members if c.state is state)
        assert registry.active() == [
            c for c in members if c.state in _ADMITTED]
        assert registry.unsatisfied() == [
            c for c in members
            if c.state is ComponentState.UNSATISFIED]

    @settings(max_examples=60, deadline=None)
    @given(operations())
    def test_provider_index_matches_bruteforce(self, ops):
        registry = apply_ops(ops)
        members = registry.all()
        for signature in _SIGNATURES:
            inport = probe_inport(signature)
            expected = [
                (component, outport)
                for component in members
                if component.state in _ADMITTED
                for outport in component.descriptor.outports
                if inport.compatible_with(outport)
            ]
            assert registry.providers_of(inport) == expected

    @settings(max_examples=60, deadline=None)
    @given(operations())
    def test_consumer_edges_match_bruteforce(self, ops):
        registry = apply_ops(ops)
        members = registry.all()
        for provider in members:
            provided = {outport.signature()
                        for outport in provider.descriptor.outports}
            expected = [
                component for component in members
                if component is not provider and any(
                    inport.signature() in provided
                    for inport in component.descriptor.inports)
            ]
            assert registry.consumers_of(provider) == expected

    @settings(max_examples=60, deadline=None)
    @given(operations())
    def test_utilization_ledger_matches_bruteforce(self, ops):
        registry = apply_ops(ops)
        members = registry.all()
        for cpu in (0, 1):
            expected = sum(
                component.contract.cpu_usage
                for component in members
                if component.state in _ADMITTED
                and component.contract.cpu == cpu)
            assert abs(registry.declared_utilization(cpu)
                       - expected) < 1e-12

    @settings(max_examples=60, deadline=None)
    @given(operations())
    def test_task_name_index_matches_bruteforce(self, ops):
        registry = apply_ops(ops)
        for component in registry.all():
            assert registry.by_task_name(
                component.descriptor.task_name) is component
