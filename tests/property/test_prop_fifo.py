"""Property-based tests for the RT->user-space FIFO."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC, Simulator

#: A session: per step, put N records then advance time M ms.
sessions = st.lists(
    st.tuples(st.integers(min_value=0, max_value=8),
              st.integers(min_value=0, max_value=5)),
    min_size=1, max_size=25)


def run_session(session, capacity=16, with_handler=True):
    sim = Simulator(seed=2)
    kernel = RTKernel(sim, KernelConfig(
        latency_model=NullLatencyModel()))
    fifo = kernel.fifo_create("PROPFF", capacity=capacity)
    delivered = []
    if with_handler:
        fifo.set_user_handler(delivered.extend)
    sequence = 0
    accepted = []
    for puts, advance_ms in session:
        for _ in range(puts):
            if fifo.put(sequence):
                accepted.append(sequence)
            sequence += 1
        sim.run_for(advance_ms * MSEC)
    sim.run_for(100 * MSEC)  # flush pending wakeups
    return fifo, accepted, delivered, sequence


class TestFifoProperties:
    @settings(max_examples=40, deadline=None)
    @given(sessions)
    def test_delivery_preserves_order_and_content(self, session):
        fifo, accepted, delivered, _ = run_session(session)
        # Everything accepted is eventually delivered, in put order,
        # with nothing invented.
        assert delivered == accepted

    @settings(max_examples=40, deadline=None)
    @given(sessions)
    def test_accounting_balances(self, session):
        fifo, accepted, delivered, total = run_session(session)
        assert fifo.put_count == len(accepted)
        assert fifo.put_count + fifo.dropped_count == total
        assert fifo.read_count == len(delivered)
        assert len(fifo) == 0  # handler drained everything

    @settings(max_examples=40, deadline=None)
    @given(sessions)
    def test_capacity_never_exceeded_without_reader(self, session):
        fifo, accepted, _, _ = run_session(session,
                                           with_handler=False)
        assert len(fifo) <= fifo.capacity
        assert len(accepted) == len(fifo.read())

    @settings(max_examples=40, deadline=None)
    @given(sessions)
    def test_delivery_latencies_nonnegative(self, session):
        fifo, _, _, _ = run_session(session)
        assert all(latency >= 0
                   for latency in fifo.delivery_latencies_ns)
