"""Property-based test: saved properties survive *late* admission.

Regression for the snapshot-restore stash: a snapshot may contain a
consumer whose provider is not in the restore set (it arrives in a
later deployment).  The first restore pass leaves it UNSATISFIED; the
old code silently dropped its saved live properties, so a late-
resolving component came back with descriptor defaults.  With the
:class:`~repro.core.snapshot.PendingPropertyStash` the saved values
must be applied the moment the DRCR admits it -- for any saved
values, any pre-admission delay, and repeated restores alike.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComponentState, UtilizationBoundPolicy
from repro.core.snapshot import export_state, restore_state
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC

from conftest import deploy, make_descriptor_xml

PORT = ("WIRE00", "RTAI.SHM", "Integer", 2)


def fresh_platform():
    platform = build_platform(
        seed=31,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=1.0))
    platform.start_timer(1 * MSEC)
    return platform


def provider_xml():
    return make_descriptor_xml("PROV00", cpuusage=0.2,
                               outports=[PORT])


def consumer_xml():
    return make_descriptor_xml(
        "CONS00", cpuusage=0.1, frequency=250, priority=3,
        inports=[PORT],
        properties=[("gain", "Integer", "1"),
                    ("level", "Integer", "0")])


@given(gain=st.integers(-10_000, 10_000),
       level=st.integers(0, 1_000_000),
       delay_ms=st.integers(0, 25))
@settings(max_examples=20, deadline=None)
def test_late_admission_applies_saved_properties(gain, level,
                                                 delay_ms):
    # Source: a wired pair whose consumer's properties have drifted.
    source = fresh_platform()
    deploy(source, provider_xml())
    deploy(source, consumer_xml())
    container = source.drcr.component("CONS00").container
    container.set_property("gain", gain)
    container.set_property("level", level)
    source.run_for(10 * MSEC)
    state = export_state(source.drcr)
    consumer_entry = next(e for e in state["components"]
                          if e["name"] == "CONS00")
    assert consumer_entry["properties"]["gain"] == gain

    # Target: restore the consumer alone -- its provider is missing,
    # so admission is deferred and the properties must be stashed.
    target = fresh_platform()
    report = restore_state(target.drcr, {
        "version": state["version"],
        "components": [consumer_entry],
    })
    assert report["unsatisfied"] == ["CONS00"]
    assert report["deferred"] == ["CONS00"]
    assert target.drcr.component_state("CONS00") \
        is ComponentState.UNSATISFIED

    # An arbitrary quiet period before the provider shows up.
    target.run_for(delay_ms * MSEC)

    # Late provider: the consumer resolves, and the stash must apply
    # the saved values through the §3.2 command path.
    deploy(target, provider_xml())
    target.run_for(10 * MSEC)
    component = target.drcr.component("CONS00")
    assert component.state is ComponentState.ACTIVE
    assert component.container.get_property("gain") == gain
    assert component.container.get_property("level") == level


@given(values=st.lists(st.integers(-1_000, 1_000), min_size=1,
                       max_size=4))
@settings(max_examples=15, deadline=None)
def test_stash_applies_last_saved_value_once(values):
    # Drifting the property several times before export must restore
    # exactly the final value (the stash holds one dict per name, not
    # a history).
    source = fresh_platform()
    deploy(source, provider_xml())
    deploy(source, consumer_xml())
    container = source.drcr.component("CONS00").container
    for value in values:
        container.set_property("gain", value)
        source.run_for(2 * MSEC)
    # Let the RT task's command poll apply the final write (§3.2: the
    # value lands at the next job, 4 ms period here).
    source.run_for(10 * MSEC)
    state = export_state(source.drcr)
    consumer_entry = next(e for e in state["components"]
                          if e["name"] == "CONS00")

    target = fresh_platform()
    restore_state(target.drcr, {"version": state["version"],
                                "components": [consumer_entry]})
    deploy(target, provider_xml())
    target.run_for(10 * MSEC)
    assert target.drcr.component("CONS00").container \
        .get_property("gain") == values[-1]
