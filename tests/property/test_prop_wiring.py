"""Property-based tests for the package wiring resolver."""

from hypothesis import given
from hypothesis import strategies as st

from repro.osgi.errors import ResolutionError
from repro.osgi.framework import Framework

package_names = st.sampled_from(
    ["com.a", "com.b", "com.c", "org.x", "org.y"])
versions = st.sampled_from(["1.0.0", "1.5.0", "2.0.0", "3.1.4"])


@st.composite
def bundle_specs(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    specs = []
    for index in range(count):
        exports = draw(st.lists(
            st.tuples(package_names, versions), max_size=3,
            unique_by=lambda t: t[0]))
        imports = draw(st.lists(package_names, max_size=3,
                                unique=True))
        specs.append(("bundle%d" % index, exports, imports))
    return specs


def install_all(specs):
    fw = Framework()
    bundles = []
    for name, exports, imports in specs:
        headers = {"Bundle-SymbolicName": name}
        if exports:
            headers["Export-Package"] = ",".join(
                "%s;version=%s" % (pkg, ver) for pkg, ver in exports)
        if imports:
            headers["Import-Package"] = ",".join(imports)
        bundles.append(fw.install_bundle(headers))
    return fw, bundles


class TestWiringProperties:
    @given(bundle_specs())
    def test_every_wire_satisfies_its_import(self, specs):
        fw, bundles = install_all(specs)
        for bundle in bundles:
            try:
                bundle.start()
            except ResolutionError:
                continue
            for wire in fw.resolver.wires_of(bundle):
                assert wire.exported.satisfies(wire.imported)
                assert wire.importer is bundle

    @given(bundle_specs())
    def test_fixpoint_resolution_failure_iff_missing_export(self,
                                                            specs):
        # Exports publish at resolve time, so start order matters for a
        # single pass; after retrying to a fixpoint, a bundle fails iff
        # one of its imports is exported nowhere.
        fw, bundles = install_all(specs)
        pending = list(bundles)
        progress = True
        while progress:
            progress = False
            for bundle in list(pending):
                try:
                    bundle.start()
                except ResolutionError:
                    continue
                pending.remove(bundle)
                progress = True
        # Oracle: a bundle resolves iff all of its imports are exported
        # by some bundle that itself resolves (computed as the same
        # fixpoint over the plain spec data).
        resolvable = set()
        changed = True
        while changed:
            changed = False
            available = {pkg for name, exports, _ in specs
                         if name in resolvable for pkg, _ in exports}
            for name, exports, imports in specs:
                if name in resolvable:
                    continue
                own = {pkg for pkg, _ in exports}
                if all(pkg in available or pkg in own
                       for pkg in imports):
                    resolvable.add(name)
                    changed = True
        failed_names = {bundle.symbolic_name for bundle in pending}
        for name, _, _ in specs:
            assert (name in failed_names) == (name not in resolvable), \
                name

    @given(bundle_specs())
    def test_dependents_is_inverse_of_wires(self, specs):
        fw, bundles = install_all(specs)
        for bundle in bundles:
            try:
                bundle.start()
            except ResolutionError:
                pass
        for bundle in bundles:
            for wire in fw.resolver.wires_of(bundle):
                assert bundle in fw.resolver.dependents_of(
                    wire.exporter)

    @given(bundle_specs())
    def test_selected_export_is_highest_version(self, specs):
        fw, bundles = install_all(specs)
        for bundle in bundles:
            try:
                bundle.start()
            except ResolutionError:
                continue
        for bundle in bundles:
            for wire in fw.resolver.wires_of(bundle):
                candidates = [
                    export for export in
                    fw.resolver.exported_of(wire.imported.package)
                    if export.satisfies(wire.imported)
                    and export.bundle.is_resolved
                ]
                if candidates:
                    best = max(c.version for c in candidates)
                    # The wire may predate later resolutions; it must
                    # at least point at a then-valid export.
                    assert wire.exported.version <= best
