"""Property-based tests: slotted records behave like plain dicts.

The hot-path overhaul put ``__slots__`` on the record types the
platform serializes -- :class:`~repro.sim.trace.TraceRecord` and the
component entries :mod:`repro.core.snapshot` ships between nodes --
and tuple-ized the event heap behind them.  None of those types may
rely on ``__dict__`` anymore, so these properties pin the observable
contract: a slotted trace record is indistinguishable from the
dict-based model it replaced, and a snapshot entry round-trips through
JSON (the cluster wire format) without losing a property or a state.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UtilizationBoundPolicy
from repro.core.snapshot import export_state, restore_state
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC
from repro.sim.trace import TraceRecord, TraceRecorder

from conftest import deploy, make_descriptor_xml

field_names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz_",
                      min_size=1, max_size=8).filter(
                          lambda s: s not in ("time", "category"))
field_values = st.one_of(st.integers(-10**9, 10**9), st.booleans(),
                         st.text(max_size=12), st.none())
records = st.lists(
    st.tuples(st.integers(0, 10**12),
              st.sampled_from(["dispatch", "release", "admit",
                               "deadline_miss"]),
              st.dictionaries(field_names, field_values, max_size=4)),
    max_size=30)


def as_dict(record):
    """The old dict shape of one trace record."""
    return {"time": record.time, "category": record.category,
            **record.fields}


class TestTraceRecordModel:
    @settings(max_examples=60, deadline=None)
    @given(records)
    def test_recorder_matches_dict_reference(self, items):
        recorder = TraceRecorder()
        reference = []  # the pre-__slots__ model: a list of dicts
        for time, category, fields in items:
            recorder.record(time, category, **fields)
            reference.append({"time": time, "category": category,
                              **fields})
        assert [as_dict(r) for r in recorder] == reference
        for category in {r["category"] for r in reference}:
            assert [as_dict(r) for r in recorder.by_category(category)] \
                == [r for r in reference if r["category"] == category]
        assert recorder.categories() \
            == {r["category"] for r in reference}

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10**12),
           st.text(min_size=1, max_size=10),
           st.dictionaries(field_names, field_values, max_size=4))
    def test_record_equality_and_attr_access(self, time, category,
                                             fields):
        record = TraceRecord(time, category, **fields)
        twin = TraceRecord(time, category, **dict(fields))
        assert record == twin
        assert record.fields == fields
        for name, value in fields.items():
            assert getattr(record, name) == value
        changed = TraceRecord(time + 1, category, **fields)
        assert record != changed


# ----------------------------------------------------------------------
# snapshot entries through the JSON wire format
# ----------------------------------------------------------------------
PORT = ("WIREPR", "RTAI.SHM", "Integer", 2)


def fresh_platform():
    platform = build_platform(
        seed=17,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=1.0))
    platform.start_timer(1 * MSEC)
    return platform


class TestSnapshotRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(gain=st.integers(-10_000, 10_000),
           level=st.integers(0, 1_000_000))
    def test_entries_survive_json_and_restore(self, gain, level):
        source = fresh_platform()
        deploy(source, make_descriptor_xml("PROVPR", cpuusage=0.2,
                                           outports=[PORT]))
        deploy(source, make_descriptor_xml(
            "CONSPR", cpuusage=0.1, frequency=250, priority=3,
            inports=[PORT],
            properties=[("gain", "Integer", "1"),
                        ("level", "Integer", "0")]))
        container = source.drcr.component("CONSPR").container
        container.set_property("gain", gain)
        container.set_property("level", level)
        source.run_for(10 * MSEC)

        state = export_state(source.drcr)
        # The export must already be plain data: a JSON round-trip
        # (the cluster wire format) reproduces it exactly.
        wire = json.loads(json.dumps(state))
        assert wire == state

        target = fresh_platform()
        report = restore_state(target.drcr, wire)
        assert sorted(report["restored"]) == ["CONSPR", "PROVPR"]
        target.run_for(10 * MSEC)

        again = export_state(target.drcr)
        by_name = {e["name"]: e for e in again["components"]}
        for entry in state["components"]:
            restored = by_name[entry["name"]]
            assert restored["descriptor_xml"] == entry["descriptor_xml"]
            assert restored["state"] == entry["state"]
        # Operator-set values came back exactly (implementation-driven
        # keys like synthetic.sequence keep counting on the target, so
        # only the declared properties are compared verbatim).
        restored_props = by_name["CONSPR"]["properties"]
        assert restored_props["gain"] == gain
        assert restored_props["level"] == level
