"""Property-based tests on the hybrid command bridge.

Random interleavings of management commands and simulated time must
preserve the section-3.2 guarantees: last-write-wins on properties,
bounded reply turnaround, and an undisturbed RT job cadence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.component import DRComComponent, LifecycleToken
from repro.core.descriptor import ComponentDescriptor
from repro.hybrid.container import HybridContainer
from repro.hybrid.protocol import CommandKind
from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC, Simulator

from conftest import make_descriptor_xml

#: One step of a random management session: either send a command or
#: let simulated time pass.
steps = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.integers(0, 100)),
        st.tuples(st.just("ping"), st.just(0)),
        st.tuples(st.just("run_ms"), st.integers(1, 5)),
    ),
    min_size=1, max_size=30)


def build_container():
    sim = Simulator(seed=4)
    kernel = RTKernel(sim, KernelConfig(
        latency_model=NullLatencyModel()))
    kernel.start_timer(1 * MSEC)
    xml = make_descriptor_xml(
        "PROP00", cpuusage=0.05, frequency=1000, priority=2,
        properties=[("gain", "Integer", "0")])
    descriptor = ComponentDescriptor.from_xml(xml)
    component = DRComComponent(descriptor, None, LifecycleToken("t"))
    container = HybridContainer(component, kernel)
    container.activate([])
    return sim, kernel, container


class TestBridgeProperties:
    @settings(max_examples=30, deadline=None)
    @given(steps)
    def test_last_delivered_set_wins(self, session):
        sim, kernel, container = build_container()
        last_delivered = None
        for action, value in session:
            if action == "set":
                if container.set_property("gain", value):
                    last_delivered = value
            elif action == "ping":
                container.nrt_part.request_ping()
            else:
                sim.run_for(value * MSEC)
        # Give the task time to drain whatever is still queued.
        sim.run_for(20 * MSEC)
        if last_delivered is not None:
            assert container.get_property("gain") == last_delivered
        else:
            assert container.get_property("gain") == 0

    @settings(max_examples=30, deadline=None)
    @given(steps)
    def test_job_cadence_untouched(self, session):
        sim, kernel, container = build_container()
        for action, value in session:
            if action == "set":
                container.set_property("gain", value)
            elif action == "ping":
                container.nrt_part.request_ping()
            else:
                sim.run_for(value * MSEC)
        task = container.task
        # Whatever the session did, the 1 kHz cadence held exactly:
        # completions track activations, zero misses.
        assert task.stats.deadline_misses == 0
        assert task.stats.activations - task.stats.completions <= 1

    @settings(max_examples=30, deadline=None)
    @given(steps)
    def test_every_delivered_command_answered(self, session):
        sim, kernel, container = build_container()
        delivered = 0
        for action, value in session:
            if action == "set":
                if container.set_property("gain", value):
                    delivered += 1
            elif action == "ping":
                if container.nrt_part.request_ping():
                    delivered += 1
            else:
                sim.run_for(value * MSEC)
        sim.run_for(20 * MSEC)
        container.nrt_part._drain()
        replies = [r for r in container.nrt_part.reply_log
                   if r.kind in (CommandKind.SET_PROPERTY,
                                 CommandKind.PING)]
        # Replies may drop if the status mailbox overflows; they can
        # never exceed the delivered commands, and with the default
        # capacity at most (capacity) replies are pending unanswered.
        assert len(replies) <= delivered
        assert delivered - len(replies) \
            <= container.bridge.status_mailbox.capacity \
            + container.bridge.commands_dropped
