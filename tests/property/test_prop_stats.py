"""Property-based tests for the statistics primitives."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import RunningStats, SampleSeries

floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False,
                   allow_infinity=False)
float_lists = st.lists(floats, min_size=1, max_size=200)


class TestRunningStatsProperties:
    @given(float_lists)
    def test_mean_bounded_by_min_max(self, values):
        stats = RunningStats()
        for value in values:
            stats.add(value)
        assert stats.minimum <= stats.mean + 1e-6
        assert stats.mean <= stats.maximum + 1e-6

    @given(float_lists)
    def test_matches_batch_formulas(self, values):
        stats = RunningStats()
        for value in values:
            stats.add(value)
        mean = sum(values) / len(values)
        assert math.isclose(stats.mean, mean, rel_tol=1e-9,
                            abs_tol=1e-6)
        variance = sum((v - mean) ** 2 for v in values) / len(values)
        assert math.isclose(stats.variance, variance, rel_tol=1e-6,
                            abs_tol=1e-3)

    @given(float_lists, float_lists)
    def test_merge_equals_concatenation(self, left_values, right_values):
        left, right, combined = (RunningStats(), RunningStats(),
                                 RunningStats())
        for value in left_values:
            left.add(value)
            combined.add(value)
        for value in right_values:
            right.add(value)
            combined.add(value)
        left.merge(right)
        assert left.count == combined.count
        assert math.isclose(left.mean, combined.mean, rel_tol=1e-9,
                            abs_tol=1e-6)
        assert math.isclose(left.variance, combined.variance,
                            rel_tol=1e-6, abs_tol=1e-2)


class TestSampleSeriesProperties:
    @given(float_lists)
    def test_avedev_nonnegative_and_bounded_by_range(self, values):
        series = SampleSeries(values)
        assert series.avedev >= 0
        assert series.avedev <= (series.maximum - series.minimum) + 1e-6

    @given(float_lists)
    def test_avedev_at_most_stdev(self, values):
        # Mean absolute deviation <= population standard deviation.
        series = SampleSeries(values)
        assert series.avedev <= series.stdev + 1e-6

    @given(float_lists)
    def test_shift_invariance_of_avedev(self, values):
        series = SampleSeries(values)
        shifted = SampleSeries([v + 1000.0 for v in values])
        assert math.isclose(series.avedev, shifted.avedev,
                            rel_tol=1e-6, abs_tol=1e-3)

    @given(float_lists)
    def test_percentiles_monotone(self, values):
        series = SampleSeries(values)
        quantiles = [series.percentile(q) for q in (0, 25, 50, 75, 100)]
        assert all(a <= b + 1e-9 for a, b in zip(quantiles,
                                                 quantiles[1:]))

    @given(float_lists)
    def test_percentile_0_100_are_min_max(self, values):
        series = SampleSeries(values)
        assert series.percentile(0) == series.minimum
        assert series.percentile(100) == series.maximum
