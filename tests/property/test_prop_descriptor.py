"""Property-based tests: descriptor XML round-trips losslessly."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.descriptor import ComponentDescriptor, ComponentProperty
from repro.core.ports import PortDirection, PortSpec
from repro.rtos.task import TaskType

rtai_names = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
                     min_size=1, max_size=6)
component_names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz.-",
                          min_size=1, max_size=24)


@st.composite
def port_specs(draw, direction):
    return PortSpec(
        draw(rtai_names),
        direction,
        draw(st.sampled_from(["RTAI.SHM", "RTAI.Mailbox"])),
        draw(st.sampled_from(["Integer", "Byte", "Float"])),
        draw(st.integers(min_value=1, max_value=10_000)),
    )


@st.composite
def properties(draw):
    type_name, value = draw(st.sampled_from([
        ("Integer", "42"), ("Integer", "-7"), ("Byte", "200"),
        ("Float", "1.25"), ("String", "hello"), ("Boolean", "true"),
        ("Boolean", "false"),
    ]))
    return ComponentProperty(draw(rtai_names), type_name, value)


@st.composite
def descriptors(draw):
    task_type = draw(st.sampled_from(list(TaskType)))
    outs = draw(st.lists(port_specs(PortDirection.OUT), max_size=3))
    ins = draw(st.lists(port_specs(PortDirection.IN), max_size=3))
    ports, seen = [], set()
    for port in outs + ins:
        key = (port.direction, port.name)
        if key not in seen:
            seen.add(key)
            ports.append(port)
    props, prop_names = [], set()
    for prop in draw(st.lists(properties(), max_size=3)):
        if prop.name not in prop_names:
            prop_names.add(prop.name)
            props.append(prop)
    kwargs = {}
    if task_type is TaskType.PERIODIC:
        kwargs["frequency_hz"] = draw(st.floats(
            min_value=0.1, max_value=100_000, allow_nan=False))
    elif task_type is TaskType.SPORADIC:
        kwargs["min_interarrival_ns"] = draw(st.integers(
            min_value=1_000, max_value=10_000_000_000))
    # Every task type may declare an explicit deadline; drtlint's
    # admission analyzers read it, so the round trip must keep it.
    if draw(st.booleans()):
        kwargs["deadline_ns"] = draw(st.integers(
            min_value=1_000, max_value=10_000_000_000))
    return ComponentDescriptor(
        name=draw(component_names),
        implementation="impl.Class",
        task_type=task_type,
        description=draw(st.text(
            alphabet="abc <>&\"' xyz", max_size=20)),
        enabled=draw(st.booleans()),
        cpu_usage=draw(st.floats(min_value=0.0, max_value=1.0,
                                 allow_nan=False)),
        priority=draw(st.integers(min_value=0, max_value=255)),
        cpu=draw(st.integers(min_value=0, max_value=3)),
        ports=ports,
        properties=props,
        **kwargs,
    )


class TestDescriptorRoundTrip:
    @given(descriptors())
    def test_xml_roundtrip_preserves_everything(self, descriptor):
        reparsed = ComponentDescriptor.from_xml(descriptor.to_xml())
        assert reparsed.name == descriptor.name
        assert reparsed.enabled == descriptor.enabled
        assert reparsed.implementation == descriptor.implementation
        assert reparsed.description == descriptor.description
        assert reparsed.contract == descriptor.contract
        assert reparsed.contract.deadline_ns \
            == descriptor.contract.deadline_ns
        assert reparsed.contract.cpu == descriptor.contract.cpu
        assert reparsed.ports == descriptor.ports
        assert [p.size for p in reparsed.ports] \
            == [p.size for p in descriptor.ports]
        assert reparsed.property_dict() == descriptor.property_dict()
        assert {name: prop.type_name
                for name, prop in reparsed.properties.items()} \
            == {name: prop.type_name
                for name, prop in descriptor.properties.items()}

    @given(descriptors())
    def test_to_xml_is_idempotent(self, descriptor):
        # Serialise -> parse -> serialise must be a fixpoint: drtlint
        # diagnostics reference descriptor text, so a drifting
        # serialisation would move every location on each rewrite.
        once = descriptor.to_xml()
        again = ComponentDescriptor.from_xml(once).to_xml()
        assert once == again

    @given(descriptors())
    def test_task_name_always_valid_rtai_name(self, descriptor):
        from repro.rtos.names import validate_name
        assert validate_name(descriptor.task_name) == descriptor.task_name

    @given(descriptors())
    def test_port_partition(self, descriptor):
        assert set(descriptor.inports) | set(descriptor.outports) \
            == set(descriptor.ports)
        assert not (set(descriptor.inports) & set(descriptor.outports))
