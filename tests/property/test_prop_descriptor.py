"""Property-based tests: descriptor XML round-trips losslessly."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.contracts import DistributionSpec, StochasticContract
from repro.core.descriptor import ComponentDescriptor, ComponentProperty
from repro.core.ports import PortDirection, PortSpec
from repro.rtos.task import TaskType

rtai_names = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_",
                     min_size=1, max_size=6)
component_names = st.text(alphabet="abcdefghijklmnopqrstuvwxyz.-",
                          min_size=1, max_size=24)


@st.composite
def port_specs(draw, direction):
    return PortSpec(
        draw(rtai_names),
        direction,
        draw(st.sampled_from(["RTAI.SHM", "RTAI.Mailbox"])),
        draw(st.sampled_from(["Integer", "Byte", "Float"])),
        draw(st.integers(min_value=1, max_value=10_000)),
    )


@st.composite
def properties(draw):
    type_name, value = draw(st.sampled_from([
        ("Integer", "42"), ("Integer", "-7"), ("Byte", "200"),
        ("Float", "1.25"), ("String", "hello"), ("Boolean", "true"),
        ("Boolean", "false"),
    ]))
    return ComponentProperty(draw(rtai_names), type_name, value)


@st.composite
def distribution_specs(draw):
    family = draw(st.sampled_from(DistributionSpec.FAMILIES))
    positive = st.floats(min_value=1.0, max_value=1e9,
                         allow_nan=False, allow_infinity=False)
    if family == "exponential":
        return DistributionSpec(family, mean_ns=draw(positive))
    if family == "uniform":
        lo = draw(positive)
        return DistributionSpec(family, min_ns=lo,
                                max_ns=lo + draw(positive))
    return DistributionSpec(family, mean_ns=draw(positive),
                            std_ns=draw(positive))


@st.composite
def stochastic_contracts(draw):
    interarrival, exectime = draw(st.sampled_from(
        [(True, False), (False, True), (True, True)]))
    return StochasticContract(
        interarrival=draw(distribution_specs()) if interarrival
        else None,
        exectime=draw(distribution_specs()) if exectime else None,
        tolerance=draw(st.floats(min_value=0.001, max_value=0.5,
                                 allow_nan=False)),
        min_samples=draw(st.integers(min_value=8, max_value=4096)),
    )


@st.composite
def descriptors(draw):
    task_type = draw(st.sampled_from(list(TaskType)))
    outs = draw(st.lists(port_specs(PortDirection.OUT), max_size=3))
    ins = draw(st.lists(port_specs(PortDirection.IN), max_size=3))
    ports, seen = [], set()
    for port in outs + ins:
        key = (port.direction, port.name)
        if key not in seen:
            seen.add(key)
            ports.append(port)
    props, prop_names = [], set()
    for prop in draw(st.lists(properties(), max_size=3)):
        if prop.name not in prop_names:
            prop_names.add(prop.name)
            props.append(prop)
    kwargs = {}
    if task_type is TaskType.PERIODIC:
        kwargs["frequency_hz"] = draw(st.floats(
            min_value=0.1, max_value=100_000, allow_nan=False))
    elif task_type is TaskType.SPORADIC:
        kwargs["min_interarrival_ns"] = draw(st.integers(
            min_value=1_000, max_value=10_000_000_000))
    # Every task type may declare an explicit deadline; drtlint's
    # admission analyzers read it, so the round trip must keep it.
    if draw(st.booleans()):
        kwargs["deadline_ns"] = draw(st.integers(
            min_value=1_000, max_value=10_000_000_000))
    if draw(st.booleans()):
        kwargs["stochastic"] = draw(stochastic_contracts())
    return ComponentDescriptor(
        name=draw(component_names),
        implementation="impl.Class",
        task_type=task_type,
        description=draw(st.text(
            alphabet="abc <>&\"' xyz", max_size=20)),
        enabled=draw(st.booleans()),
        cpu_usage=draw(st.floats(min_value=0.0, max_value=1.0,
                                 allow_nan=False)),
        priority=draw(st.integers(min_value=0, max_value=255)),
        cpu=draw(st.integers(min_value=0, max_value=3)),
        ports=ports,
        properties=props,
        **kwargs,
    )


class TestDescriptorRoundTrip:
    @given(descriptors())
    def test_xml_roundtrip_preserves_everything(self, descriptor):
        reparsed = ComponentDescriptor.from_xml(descriptor.to_xml())
        assert reparsed.name == descriptor.name
        assert reparsed.enabled == descriptor.enabled
        assert reparsed.implementation == descriptor.implementation
        assert reparsed.description == descriptor.description
        assert reparsed.contract == descriptor.contract
        assert reparsed.contract.deadline_ns \
            == descriptor.contract.deadline_ns
        assert reparsed.contract.cpu == descriptor.contract.cpu
        assert reparsed.ports == descriptor.ports
        assert [p.size for p in reparsed.ports] \
            == [p.size for p in descriptor.ports]
        assert reparsed.property_dict() == descriptor.property_dict()
        assert {name: prop.type_name
                for name, prop in reparsed.properties.items()} \
            == {name: prop.type_name
                for name, prop in descriptor.properties.items()}

    @given(descriptors())
    def test_to_xml_is_idempotent(self, descriptor):
        # Serialise -> parse -> serialise must be a fixpoint: drtlint
        # diagnostics reference descriptor text, so a drifting
        # serialisation would move every location on each rewrite.
        once = descriptor.to_xml()
        again = ComponentDescriptor.from_xml(once).to_xml()
        assert once == again

    @given(descriptors())
    def test_task_name_always_valid_rtai_name(self, descriptor):
        from repro.rtos.names import validate_name
        assert validate_name(descriptor.task_name) == descriptor.task_name

    @given(descriptors())
    def test_port_partition(self, descriptor):
        assert set(descriptor.inports) | set(descriptor.outports) \
            == set(descriptor.ports)
        assert not (set(descriptor.inports) & set(descriptor.outports))

    @given(descriptors())
    def test_stochastic_clause_roundtrips(self, descriptor):
        reparsed = ComponentDescriptor.from_xml(descriptor.to_xml())
        assert reparsed.contract.stochastic \
            == descriptor.contract.stochastic


class TestSporadicPinning:
    """Pins of the sporadic wire format (regression guards: the exact
    attribute spelling and the deadline/MIA distinction are what other
    tools parse)."""

    def _sporadic(self, **kwargs):
        return ComponentDescriptor(
            name="SPOR00", implementation="impl.Class",
            task_type=TaskType.SPORADIC, cpu_usage=0.1, priority=3,
            min_interarrival_ns=10_000_000, **kwargs)

    def test_to_xml_spells_mininterarrival_ns(self):
        # The schema's canonical spelling has no underscore between
        # "min" and "interarrival"; the tolerant parser also accepts
        # min_interarrival_ns, but serialisation must emit the
        # canonical form or drtlint's DRT107 would flag our own output.
        xml = self._sporadic().to_xml()
        assert 'mininterarrival_ns="10000000"' in xml
        assert "min_interarrival_ns" not in xml

    def test_deadline_distinct_from_mia_roundtrips(self):
        descriptor = self._sporadic(deadline_ns=4_000_000)
        reparsed = ComponentDescriptor.from_xml(descriptor.to_xml())
        assert reparsed.contract.period_ns == 10_000_000
        assert reparsed.contract.deadline_ns == 4_000_000
        assert reparsed.contract.deadline_ns \
            != reparsed.contract.period_ns
        assert reparsed.contract == descriptor.contract

    def test_default_deadline_is_the_mia(self):
        reparsed = ComponentDescriptor.from_xml(
            self._sporadic().to_xml())
        assert reparsed.contract.deadline_ns == 10_000_000
