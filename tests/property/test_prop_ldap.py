"""Property-based tests for the LDAP filter engine."""

from hypothesis import given
from hypothesis import strategies as st

from repro.osgi.ldap import escape, parse_filter

attr_names = st.text(alphabet="abcdefghij", min_size=1, max_size=8)
attr_values = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    min_size=0, max_size=20)
prop_values = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.text(alphabet="abcxyz0123", max_size=10),
    st.booleans(),
)
props_strategy = st.dictionaries(attr_names, prop_values, max_size=6)


class TestFilterProperties:
    @given(attr_names, attr_values)
    def test_escaped_equality_always_matches_itself(self, attr, value):
        text = "(%s=%s)" % (attr, escape(value))
        assert parse_filter(text).matches({attr: value})

    @given(attr_names, props_strategy)
    def test_presence_iff_attribute_present(self, attr, props):
        compiled = parse_filter("(%s=*)" % attr)
        lowered = {str(k).lower() for k in props}
        assert compiled.matches(props) == (attr.lower() in lowered)

    @given(attr_names, st.integers(-10**6, 10**6),
           st.integers(-10**6, 10**6))
    def test_ordering_operators_consistent(self, attr, actual, bound):
        props = {attr: actual}
        gte = parse_filter("(%s>=%d)" % (attr, bound)).matches(props)
        lte = parse_filter("(%s<=%d)" % (attr, bound)).matches(props)
        assert gte == (actual >= bound)
        assert lte == (actual <= bound)
        assert gte or lte  # a total order: at least one holds

    @given(attr_names, prop_values, props_strategy)
    def test_not_is_complement(self, attr, value, props):
        props[attr] = value
        inner = "(%s=*)" % attr
        assert parse_filter("(!%s)" % inner).matches(props) \
            != parse_filter(inner).matches(props)

    @given(props_strategy, attr_names, attr_names)
    def test_and_or_against_python_semantics(self, props, a, b):
        fa, fb = "(%s=*)" % a, "(%s=*)" % b
        ra = parse_filter(fa).matches(props)
        rb = parse_filter(fb).matches(props)
        assert parse_filter("(&%s%s)" % (fa, fb)).matches(props) \
            == (ra and rb)
        assert parse_filter("(|%s%s)" % (fa, fb)).matches(props) \
            == (ra or rb)

    @given(attr_names, attr_values, attr_values)
    def test_prefix_substring_agrees_with_startswith(self, attr, value,
                                                     prefix):
        text = "(%s=%s*)" % (attr, escape(prefix))
        assert parse_filter(text).matches({attr: value}) \
            == value.startswith(prefix)

    @given(attr_names, attr_values, attr_values)
    def test_contains_substring_agrees_with_in(self, attr, value,
                                               needle):
        text = "(%s=*%s*)" % (attr, escape(needle))
        assert parse_filter(text).matches({attr: value}) \
            == (needle in value)

    @given(attr_names, attr_values)
    def test_str_reparse_equivalent(self, attr, value):
        compiled = parse_filter("(%s=%s)" % (attr, escape(value)))
        reparsed = parse_filter(str(compiled))
        for candidate in (value, value + "x", ""):
            assert compiled.matches({attr: candidate}) \
                == reparsed.matches({attr: candidate})
