"""Property-based tests on DRCR invariants.

Random deploy/stop/enable/disable sequences are applied to a platform;
after every step the DRCR's promised invariants must hold:

* every ACTIVE component's inports are bound to ACTIVE/SUSPENDED
  providers (functional constraint, section 2.2);
* the declared-cpuusage budget is respected on every CPU (the internal
  utilization policy);
* a kernel task exists iff its component is instantiated (the global
  view is *accurate*).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ComponentState, UtilizationBoundPolicy
from repro.core.lifecycle import INSTANTIATED_STATES
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC

from conftest import make_descriptor_xml

#: A small universe of components: two providers, two consumers, one
#: standalone, with real utilization weights.
UNIVERSE = {
    "PROVA0": dict(cpuusage=0.30, frequency=1000, priority=1,
                   outports=[("DATAA0", "RTAI.SHM", "Integer", 4)]),
    "PROVB0": dict(cpuusage=0.30, frequency=500, priority=2,
                   outports=[("DATAB0", "RTAI.SHM", "Integer", 4)]),
    "CONSA0": dict(cpuusage=0.20, frequency=250, priority=3,
                   inports=[("DATAA0", "RTAI.SHM", "Integer", 4)]),
    "CONSB0": dict(cpuusage=0.20, frequency=250, priority=4,
                   inports=[("DATAB0", "RTAI.SHM", "Integer", 4)]),
    "SOLO00": dict(cpuusage=0.25, frequency=100, priority=5),
}

actions = st.lists(
    st.tuples(st.sampled_from(["deploy", "stop", "disable", "enable",
                               "run"]),
              st.sampled_from(sorted(UNIVERSE))),
    min_size=1, max_size=12)


def check_invariants(platform):
    drcr = platform.drcr
    registry = drcr.registry
    # 1. Functional constraints of every ACTIVE component hold.
    for component in registry.in_state(ComponentState.ACTIVE):
        providers = set(component.bound_providers())
        for provider_name in providers:
            provider = registry.maybe_get(provider_name)
            assert provider is not None
            assert provider.state in (ComponentState.ACTIVE,
                                      ComponentState.SUSPENDED)
        assert len(component.bindings) \
            == len(component.descriptor.inports)
    # 2. Utilization budget respected per CPU.
    for cpu in range(platform.kernel.config.num_cpus):
        assert registry.declared_utilization(cpu) <= 1.0 + 1e-9
    # 3. Kernel task existence matches instantiation.
    for component in registry.all():
        task_name = component.descriptor.task_name
        assert platform.kernel.exists(task_name) \
            == (component.state in INSTANTIATED_STATES)


class TestDRCRInvariants:
    @settings(max_examples=30, deadline=None)
    @given(actions)
    def test_invariants_hold_under_random_dynamics(self, sequence):
        platform = build_platform(
            seed=2,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel()),
            internal_policy=UtilizationBoundPolicy(cap=1.0))
        platform.start_timer(1 * MSEC)
        bundles = {}
        for action, name in sequence:
            if action == "deploy" and name not in bundles:
                xml = make_descriptor_xml(name, **UNIVERSE[name])
                bundles[name] = platform.install_and_start(
                    {"Bundle-SymbolicName": "bundle.%s" % name,
                     "RT-Component": "OSGI-INF/c.xml"},
                    resources={"OSGI-INF/c.xml": xml})
            elif action == "stop" and name in bundles:
                bundles.pop(name).uninstall()
            elif action == "disable" and name in platform.drcr.registry:
                if platform.drcr.component_state(name) \
                        is not ComponentState.DISABLED:
                    platform.drcr.disable_component(name)
            elif action == "enable" and name in platform.drcr.registry:
                if platform.drcr.component_state(name) \
                        is ComponentState.DISABLED:
                    platform.drcr.enable_component(name)
            elif action == "run":
                platform.run_for(5 * MSEC)
            check_invariants(platform)
        # Final settle: nothing left half-configured.
        platform.run_for(10 * MSEC)
        check_invariants(platform)

    @settings(max_examples=15, deadline=None)
    @given(actions)
    def test_event_log_transitions_are_legal(self, sequence):
        from repro.core import ComponentEventType
        platform = build_platform(
            seed=2,
            kernel_config=KernelConfig(
                latency_model=NullLatencyModel()))
        platform.start_timer(1 * MSEC)
        bundles = {}
        for action, name in sequence:
            if action == "deploy" and name not in bundles:
                xml = make_descriptor_xml(name, **UNIVERSE[name])
                bundles[name] = platform.install_and_start(
                    {"Bundle-SymbolicName": "bundle.%s" % name,
                     "RT-Component": "OSGI-INF/c.xml"},
                    resources={"OSGI-INF/c.xml": xml})
            elif action == "stop" and name in bundles:
                bundles.pop(name).uninstall()
        # ACTIVATED must always be preceded by SATISFIED for the same
        # component with no DEACTIVATED in between.
        for name in UNIVERSE:
            history = [e.event_type for e in
                       platform.drcr.events.for_component(name)]
            for index, event_type in enumerate(history):
                if event_type is ComponentEventType.ACTIVATED:
                    assert history[index - 1] \
                        is ComponentEventType.SATISFIED
