"""Property-based tests for application descriptors."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.application import ApplicationDescriptor
from repro.core.descriptor import ComponentDescriptor

from conftest import make_descriptor_xml

app_names = st.text(alphabet="abcdefghij-", min_size=1, max_size=16)
member_counts = st.integers(min_value=1, max_value=6)
usages = st.floats(min_value=0.01, max_value=0.3, allow_nan=False)


@st.composite
def applications(draw):
    count = draw(member_counts)
    chained = draw(st.booleans())
    blocks = []
    for index in range(count):
        kwargs = {"cpuusage": round(draw(usages), 3),
                  "frequency": draw(st.sampled_from([100, 250, 500,
                                                     1000])),
                  "priority": index}
        if chained:
            kwargs["outports"] = [("L%05d" % index, "RTAI.SHM",
                                   "Integer", 2)]
            if index > 0:
                kwargs["inports"] = [("L%05d" % (index - 1),
                                      "RTAI.SHM", "Integer", 2)]
        xml = make_descriptor_xml("M%05d" % index, **kwargs)
        blocks.append(xml.split("\n", 1)[1])
    name = draw(app_names)
    return ApplicationDescriptor.from_xml(
        '<?xml version="1.0"?>\n'
        '<drt:application name="%s" complete="%s">\n%s\n'
        "</drt:application>"
        % (name, "true" if chained else "false", "\n".join(blocks)))


class TestApplicationProperties:
    @settings(max_examples=30, deadline=None)
    @given(applications())
    def test_xml_roundtrip(self, app):
        reparsed = ApplicationDescriptor.from_xml(app.to_xml())
        assert reparsed.name == app.name
        assert reparsed.complete == app.complete
        assert reparsed.component_names() == app.component_names()
        assert [d.contract for d in reparsed.components] \
            == [d.contract for d in app.components]
        assert [d.ports for d in reparsed.components] \
            == [d.ports for d in app.components]

    @settings(max_examples=30, deadline=None)
    @given(applications())
    def test_declared_utilization_is_member_sum(self, app):
        total = sum(d.contract.cpu_usage for d in app.components)
        assert abs(app.declared_utilization() - total) < 1e-9

    @settings(max_examples=30, deadline=None)
    @given(applications())
    def test_members_parse_standalone(self, app):
        for descriptor in app.components:
            alone = ComponentDescriptor.from_xml(descriptor.to_xml())
            assert alone.contract == descriptor.contract
