"""Property-based tests on the sporadic minimum-inter-arrival
guarantee: no release pattern can exceed the contracted demand."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import NullLatencyModel
from repro.rtos.requests import Compute
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, Simulator

#: Random release patterns: a list of inter-request gaps in ms.
gap_patterns = st.lists(st.integers(min_value=0, max_value=30),
                        min_size=1, max_size=60)

MIA_MS = 10


def run_pattern(gaps):
    sim = Simulator(seed=9)
    kernel = RTKernel(sim, KernelConfig(
        latency_model=NullLatencyModel()))

    def body(task):
        yield Compute(100_000)

    task = kernel.create_task("SPOR00", body, 1,
                              task_type=TaskType.SPORADIC,
                              period_ns=MIA_MS * MSEC)
    kernel.start_task(task)
    for gap_ms in gaps:
        sim.run_for(gap_ms * MSEC)
        kernel.release_task(task)
    sim.run_for(50 * MSEC)  # settle deferred releases
    return sim, task


class TestSporadicInvariants:
    @settings(max_examples=40, deadline=None)
    @given(gap_patterns)
    def test_activations_bounded_by_mia(self, gaps):
        sim, task = run_pattern(gaps)
        elapsed = sim.now
        # The sporadic contract: at most one activation per MIA window
        # (plus the initial start).
        bound = elapsed // (MIA_MS * MSEC) + 1
        assert task.stats.activations <= bound

    @settings(max_examples=40, deadline=None)
    @given(gap_patterns)
    def test_consecutive_releases_separated_by_mia(self, gaps):
        sim, task = run_pattern(gaps)
        releases = [r.time for r in sim.trace.by_category("task_release")]
        for earlier, later in zip(releases, releases[1:]):
            assert later - earlier >= MIA_MS * MSEC

    @settings(max_examples=40, deadline=None)
    @given(gap_patterns)
    def test_request_accounting_bounds(self, gaps):
        _, task = run_pattern(gaps)
        requests = len(gaps)
        served = task.stats.activations - 1  # minus start_task's run
        # No request is served more than once...
        assert served + task.stats.overruns <= requests
        # ...and every request left a trace somewhere (a throttled
        # request that later fires its deferral counts twice, hence >=).
        assert (served + task.stats.overruns
                + task.stats.throttled_releases) >= requests
