"""Every ``python -m repro ...`` command quoted in the docs must run.

Documentation drifts when a flag is renamed or a module moves; this
test extracts every CLI invocation from README.md, EXPERIMENTS.md,
DESIGN.md and docs/*.md -- both fenced code blocks and inline code
spans -- and executes it.  A doc quoting a command that exits non-zero
fails the suite, so stale examples cannot ship.

Commands run from a scratch directory (symlinked ``examples/`` so
relative paths resolve) with ``PYTHONPATH`` pointing at ``src``; any
output files land in the scratch directory, never in the repository.
"""

import os
import re
import shlex
import subprocess
import sys

import pytest

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                    os.pardir))

DOC_FILES = ["README.md", "EXPERIMENTS.md", "DESIGN.md"] + sorted(
    os.path.join("docs", name)
    for name in os.listdir(os.path.join(REPO, "docs"))
    if name.endswith(".md"))

#: Inline mentions that name a subcommand rather than quote a runnable
#: invocation (``lint`` requires at least one path operand).
SKIP = {"python -m repro lint"}

_FENCE = re.compile(r"```.*?```", re.S)
_INLINE = re.compile(r"`((?:PYTHONPATH=src )?python -m repro[^`]*)`",
                     re.S)


def _normalize(command):
    command = " ".join(command.split())
    command = command.removeprefix("$ ")
    command = command.removeprefix("PYTHONPATH=src ")
    command = command.split(" #")[0].strip()
    return command


def _from_fences(text):
    for block in _FENCE.findall(text):
        for line in block.splitlines():
            line = _normalize(line)
            if line.startswith("python -m repro"):
                yield line


def _from_inline(text):
    stripped = _FENCE.sub("", text)
    for span in _INLINE.findall(stripped):
        yield _normalize(span)


def doc_commands():
    commands = []
    seen = set()
    for relpath in DOC_FILES:
        with open(os.path.join(REPO, relpath), encoding="utf-8") as f:
            text = f.read()
        for command in list(_from_fences(text)) \
                + list(_from_inline(text)):
            if command in SKIP or command in seen:
                continue
            if any(marker in command for marker in ("<", ">", "...")):
                continue  # placeholder, not a literal invocation
            seen.add(command)
            commands.append((relpath, command))
    return commands


COMMANDS = doc_commands()


def test_docs_actually_quote_commands():
    assert len(COMMANDS) >= 8, COMMANDS


@pytest.fixture(scope="module")
def scratch(tmp_path_factory):
    path = tmp_path_factory.mktemp("docs-smoke")
    os.symlink(os.path.join(REPO, "examples"), path / "examples")
    return path


@pytest.mark.parametrize(
    "relpath,command", COMMANDS,
    ids=["%s:%s" % (relpath, command) for relpath, command in COMMANDS])
def test_doc_command_runs(relpath, command, scratch):
    argv = shlex.split(command)
    assert argv[:3] == ["python", "-m", "repro"]
    argv[0] = sys.executable
    env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
    result = subprocess.run(argv, cwd=scratch, env=env,
                            capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, (
        "%s quotes %r which exited %d\nstdout:\n%s\nstderr:\n%s"
        % (relpath, command, result.returncode,
           result.stdout[-2000:], result.stderr[-2000:]))
