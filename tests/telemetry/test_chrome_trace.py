"""Chrome trace-event export: golden file, schema validator, live run.

The golden file freezes the exporter's output format for a hand-made
trace (stable against kernel evolution).  Regenerate it after an
*intentional* format change with::

    PYTHONPATH=src python tests/telemetry/test_chrome_trace.py
"""

import json
import pathlib

import pytest

from repro.core.events import ComponentEvent, ComponentEventType
from repro.sim.trace import TraceRecorder
from repro.telemetry.chrome import (
    CATEGORY_GROUPS,
    DRCR_TID,
    chrome_trace_dict,
    chrome_trace_events,
    export_chrome_trace,
    validate_chrome_trace,
)
from repro.telemetry.metrics import Telemetry

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_trace.json"


def build_fixture():
    """A hand-made trace exercising every exporter feature: slices
    (incl. an implicit close by re-dispatch and a leftover at the end),
    instants with non-JSON args, and DRCR component events."""
    trace = TraceRecorder()
    trace.record(0, "timer_start", period=1_000_000)
    trace.record(1_000_000, "task_release", task="CALC00", job=0)
    trace.record(1_000_500, "dispatch", task="CALC00", cpu=0)
    trace.record(1_030_000, "preempt",
                 task="CALC00", by="DISP00", cpu=0)
    # re-dispatch on the same CPU closes CALC00's slice implicitly
    trace.record(1_030_500, "dispatch", task="DISP00", cpu=0)
    trace.record(1_090_000, "off_cpu", task="DISP00", cpu=0)
    trace.record(1_090_500, "dispatch", task="CALC00", cpu=0)
    trace.record(1_120_000, "off_cpu", task="CALC00", cpu=0)
    # record without a cpu field: routed to the task's last CPU
    trace.record(1_200_000, "deadline_miss", task="CALC00",
                 lateness=(80_000, "ns"))    # non-JSON arg -> repr()
    # a slice left open at the end of the trace
    trace.record(2_000_000, "dispatch", task="CALC00", cpu=1)
    trace.record(2_500_000, "task_fault", task="CALC00", cpu=1)

    events = [
        ComponentEvent(500_000, ComponentEventType.REGISTERED, "CALC00"),
        ComponentEvent(600_000, ComponentEventType.ADMISSION_REJECTED,
                       "DISP00", reason="utilization cap"),
    ]

    telemetry = Telemetry()
    telemetry.registry("rtos").counter("dispatches_total").inc(3)
    telemetry.registry("rtos").histogram("dispatch_latency_ns",
                                         bounds=(0, 1000)).observe(500)
    return trace, events, telemetry


def test_golden_file():
    trace, events, telemetry = build_fixture()
    document = chrome_trace_dict(trace, events, telemetry)
    golden = json.loads(GOLDEN_PATH.read_text())
    # compare via JSON round-trip so tuples/lists etc. normalise
    assert json.loads(json.dumps(document)) == golden


def test_golden_file_is_valid():
    assert validate_chrome_trace(json.loads(GOLDEN_PATH.read_text())) > 0


def test_slices_measure_task_occupancy():
    trace, events, _ = build_fixture()
    slices = [e for e in chrome_trace_events(trace, events)
              if e["ph"] == "X"]
    by_start = sorted(slices, key=lambda e: e["ts"])
    names = [e["name"] for e in by_start]
    assert names == ["CALC00", "DISP00", "CALC00", "CALC00"]
    # preempted CALC00 slice: dispatch 1_000_500 -> re-dispatch 1_030_500
    assert by_start[0]["ts"] == pytest.approx(1000.5)
    assert by_start[0]["dur"] == pytest.approx(30.0)
    # leftover slice closes at the last trace timestamp
    assert by_start[-1]["ts"] == pytest.approx(2000.0)
    assert by_start[-1]["dur"] == pytest.approx(500.0)


def test_instants_carry_fields_and_categories():
    trace, events, _ = build_fixture()
    instants = [e for e in chrome_trace_events(trace, events)
                if e["ph"] == "i"]
    miss = next(e for e in instants if e["name"] == "deadline_miss")
    assert miss["cat"] == CATEGORY_GROUPS["deadline_miss"]
    assert miss["tid"] == 0          # routed to CALC00's last CPU
    assert isinstance(miss["args"]["lateness"], str)   # repr() fallback
    rejected = next(e for e in instants
                    if e["name"] == "admission_rejected")
    assert rejected["tid"] == DRCR_TID
    assert rejected["args"]["reason"] == "utilization cap"


def test_export_writes_valid_json(tmp_path):
    trace, events, telemetry = build_fixture()
    path = tmp_path / "trace.json"
    document = export_chrome_trace(trace, path, component_events=events,
                                   telemetry=telemetry)
    on_disk = json.loads(path.read_text())
    assert validate_chrome_trace(on_disk) == len(document["traceEvents"])
    assert on_disk["otherData"]["metrics"]["rtos"][
        "dispatches_total"]["value"] == 3


def test_live_platform_export_validates(tmp_path):
    # end-to-end: a real kernel run must produce a schema-valid trace
    from repro.platform import build_platform
    from repro.rtos.requests import Compute, WaitPeriod
    from repro.rtos.task import TaskType

    def body(task):
        while True:
            yield WaitPeriod()
            yield Compute(100_000)

    platform = build_platform(seed=42)
    platform.start_timer(1_000_000)
    task = platform.kernel.create_task(
        "T1", body, 2, task_type=TaskType.PERIODIC,
        period_ns=1_000_000)
    platform.kernel.start_task(task)
    platform.run_for(20_000_000)
    document = platform.export_trace(tmp_path / "live.json")
    assert validate_chrome_trace(
        json.loads((tmp_path / "live.json").read_text())) \
        == len(document["traceEvents"])
    assert any(e["ph"] == "X" for e in document["traceEvents"])


@pytest.mark.parametrize("mutate, message", [
    (lambda d: d["traceEvents"].append({"ph": "i"}), "name"),
    (lambda d: d["traceEvents"].append(
        {"name": "x", "ph": "Q", "pid": 0, "tid": 0, "ts": 1}), "phase"),
    (lambda d: d["traceEvents"].append(
        {"name": "x", "ph": "i", "pid": 0, "tid": "a", "ts": 1}), "tid"),
    (lambda d: d["traceEvents"].append(
        {"name": "x", "ph": "i", "pid": 0, "tid": 0, "ts": -1}), "ts"),
    (lambda d: d["traceEvents"].append(
        {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 1}), "dur"),
    (lambda d: d["traceEvents"].append(
        {"name": "x", "ph": "i", "pid": 0, "tid": 0, "ts": 1,
         "args": []}), "args"),
    (lambda d: d.pop("traceEvents"), "traceEvents"),
])
def test_validator_rejects_malformed_events(mutate, message):
    trace, events, telemetry = build_fixture()
    document = json.loads(json.dumps(
        chrome_trace_dict(trace, events, telemetry)))
    mutate(document)
    with pytest.raises(ValueError, match=message):
        validate_chrome_trace(document)


def test_validator_rejects_non_dict():
    with pytest.raises(ValueError):
        validate_chrome_trace([])


if __name__ == "__main__":          # golden-file regeneration hook
    trace, events, telemetry = build_fixture()
    document = chrome_trace_dict(trace, events, telemetry)
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(
        json.dumps(json.loads(json.dumps(document)), indent=2,
                   sort_keys=True) + "\n")
    print("wrote %s (%d events)" % (GOLDEN_PATH,
                                    len(document["traceEvents"])))
