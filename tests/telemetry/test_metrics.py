"""Unit tests for the metric instruments and registry semantics."""

import json
import math

import pytest

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BOUNDS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    Telemetry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("hits")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_zero_increment_is_allowed(self):
        c = Counter("hits")
        c.inc(0)
        assert c.value == 0

    def test_negative_increment_rejected(self):
        c = Counter("hits")
        with pytest.raises(MetricsError):
            c.inc(-1)
        assert c.value == 0

    def test_as_dict(self):
        c = Counter("hits")
        c.inc(3)
        assert c.as_dict() == {"type": "counter", "value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("depth")
        g.set(10)
        g.inc()
        g.inc(4)
        g.dec(3)
        assert g.value == 12
        g.inc(-12)
        assert g.value == 0

    def test_as_dict(self):
        g = Gauge("depth")
        g.set(-2)
        assert g.as_dict() == {"type": "gauge", "value": -2}


class TestHistogram:
    def test_bucketing_is_le_upper_bound(self):
        h = Histogram("lat", bounds=(0, 10, 20))
        # counts: (-inf, 0], (0, 10], (10, 20], (20, inf)
        for v in (-5, 0):        # both land in the first bucket
            h.observe(v)
        for v in (1, 10):        # (0, 10]: upper edge inclusive
            h.observe(v)
        h.observe(11)
        h.observe(21)            # overflow
        assert h.counts == [2, 2, 1, 1]

    def test_buckets_view_ends_with_inf(self):
        h = Histogram("lat", bounds=(5,))
        h.observe(3)
        h.observe(7)
        assert h.buckets() == [(5, 1), (math.inf, 1)]

    def test_exact_stats_alongside_buckets(self):
        h = Histogram("lat", bounds=(0, 100))
        for v in (-10, 0, 10, 200):
            h.observe(v)
        assert h.count == 4
        assert h.stats.minimum == -10
        assert h.stats.maximum == 200
        assert h.stats.mean == pytest.approx(50.0)

    def test_default_bounds_handle_negative_latency(self):
        # Table 1 latencies can be negative (early-firing timer).
        h = Histogram("lat")
        h.observe(-23_782)
        assert sum(h.counts) == 1
        assert h.counts[0] == 0          # not in the (-inf, -50us] bucket

    def test_empty_bounds_rejected(self):
        with pytest.raises(MetricsError):
            Histogram("lat", bounds=())

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(MetricsError):
            Histogram("lat", bounds=(0, 10, 10))
        with pytest.raises(MetricsError):
            Histogram("lat", bounds=(10, 0))

    def test_as_dict_empty_histogram(self):
        h = Histogram("lat", bounds=(0,))
        d = h.as_dict()
        assert d["count"] == 0
        assert d["mean"] is None and d["min"] is None and d["max"] is None
        assert d["buckets"] == {"le_0": 0, "inf": 0}

    def test_as_dict_is_json_serializable(self):
        h = Histogram("lat")
        h.observe(-1_000)
        h.observe(2_000_000)
        json.dumps(h.as_dict())  # must not raise (no inf keys/values)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry("hybrid")
        a = r.counter("commands_sent_total")
        b = r.counter("commands_sent_total")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_kind_conflict_raises(self):
        r = MetricsRegistry("x")
        r.counter("m")
        with pytest.raises(MetricsError):
            r.gauge("m")
        with pytest.raises(MetricsError):
            r.histogram("m")

    def test_histogram_bounds_conflict_raises(self):
        r = MetricsRegistry("x")
        r.histogram("h", bounds=(0, 10))
        assert r.histogram("h", bounds=(0, 10)) is r.get("h")
        with pytest.raises(MetricsError):
            r.histogram("h", bounds=(0, 20))

    def test_names_preserve_creation_order(self):
        r = MetricsRegistry("x")
        r.counter("b")
        r.gauge("a")
        assert r.names() == ["b", "a"]
        assert len(r) == 2

    def test_get_missing_returns_none(self):
        assert MetricsRegistry("x").get("nope") is None


class TestTelemetry:
    def test_registry_per_subsystem(self):
        t = Telemetry()
        assert t.registry("rtos") is t.registry("rtos")
        assert t.registry("rtos") is not t.registry("sim")
        assert t.subsystems() == ["rtos", "sim"]

    def test_aggregate_flat_names(self):
        t = Telemetry()
        t.registry("rtos").counter("dispatches_total").inc(7)
        t.registry("sim").gauge("pending_events").set(3)
        flat = t.aggregate()
        assert flat["rtos.dispatches_total"].value == 7
        assert flat["sim.pending_events"].value == 3

    def test_as_dict_round_trips_through_json(self):
        t = Telemetry()
        t.registry("rtos").histogram("lat").observe(500)
        t.registry("rtos").counter("dispatches_total").inc()
        doc = json.loads(json.dumps(t.as_dict()))
        assert doc["rtos"]["dispatches_total"]["value"] == 1
        assert doc["rtos"]["lat"]["count"] == 1


class TestDisabledTelemetry:
    def test_disabled_returns_null_registry(self):
        t = Telemetry(enabled=False)
        assert not t.enabled
        assert t.registry("rtos") is NULL_REGISTRY

    def test_null_instruments_are_shared_no_ops(self):
        r = Telemetry(enabled=False).registry("anything")
        c, g, h = r.counter("c"), r.gauge("g"), r.histogram("h")
        assert c is NULL_COUNTER and g is NULL_GAUGE and h is NULL_HISTOGRAM
        c.inc(100)
        g.set(5)
        g.dec()
        h.observe(123)
        assert c.value == 0 and g.value == 0 and h.count == 0

    def test_disabled_exports_are_empty(self):
        t = Telemetry(enabled=False)
        t.registry("rtos").counter("c").inc()
        assert t.as_dict() == {}
        assert t.aggregate() == {}
        assert t.subsystems() == []

    def test_default_bounds_constant_is_strictly_increasing(self):
        assert list(DEFAULT_LATENCY_BOUNDS_NS) == \
            sorted(set(DEFAULT_LATENCY_BOUNDS_NS))
