"""Unit tests for named random streams."""

from repro.sim.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_varies_with_name(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_varies_with_master(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_fits_64_bits(self):
        assert 0 <= derive_seed(123, "stream") < 2 ** 64


class TestRandomStreams:
    def test_same_stream_object_reused(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_are_independent(self):
        # Drawing from stream A must not change what B produces.
        solo = RandomStreams(5)
        b_alone = [solo.random("b") for _ in range(5)]

        mixed = RandomStreams(5)
        for _ in range(100):
            mixed.random("a")
        b_mixed = [mixed.random("b") for _ in range(5)]
        assert b_alone == b_mixed

    def test_reproducible_across_instances(self):
        a, b = RandomStreams(42), RandomStreams(42)
        assert [a.gauss("g", 0, 1) for _ in range(10)] == \
            [b.gauss("g", 0, 1) for _ in range(10)]

    def test_uniform_range(self):
        streams = RandomStreams(1)
        for _ in range(100):
            value = streams.uniform("u", -2.0, 3.0)
            assert -2.0 <= value <= 3.0

    def test_randint_range(self):
        streams = RandomStreams(1)
        values = {streams.randint("i", 1, 4) for _ in range(200)}
        assert values == {1, 2, 3, 4}

    def test_expovariate_positive(self):
        streams = RandomStreams(1)
        assert all(streams.expovariate("e", 2.0) >= 0
                   for _ in range(50))

    def test_choice(self):
        streams = RandomStreams(1)
        options = ["a", "b", "c"]
        assert all(streams.choice("c", options) in options
                   for _ in range(20))

    def test_fork_creates_disjoint_namespace(self):
        parent = RandomStreams(7)
        child = parent.fork("worker-1")
        assert parent.random("x") != child.random("x")

    def test_fork_deterministic(self):
        a = RandomStreams(7).fork("w").random("x")
        b = RandomStreams(7).fork("w").random("x")
        assert a == b

    def test_master_seed_exposed(self):
        assert RandomStreams(99).master_seed == 99
