"""Unit tests for the event queue."""

import pytest

from repro.sim.errors import EventAlreadyCancelledError
from repro.sim.events import (
    PRIORITY_INTERRUPT,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    EventQueue,
)


def _noop():
    pass


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        q.push(30, _noop, label="c")
        q.push(10, _noop, label="a")
        q.push(20, _noop, label="b")
        assert [q.pop().label for _ in range(3)] == ["a", "b", "c"]

    def test_same_time_orders_by_priority(self):
        q = EventQueue()
        q.push(10, _noop, priority=PRIORITY_LATE, label="late")
        q.push(10, _noop, priority=PRIORITY_INTERRUPT, label="irq")
        q.push(10, _noop, priority=PRIORITY_NORMAL, label="normal")
        assert [q.pop().label for _ in range(3)] == ["irq", "normal",
                                                     "late"]

    def test_same_time_same_priority_is_fifo(self):
        q = EventQueue()
        for i in range(5):
            q.push(10, _noop, label=str(i))
        assert [q.pop().label for _ in range(5)] == list("01234")

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_peek_time_reports_earliest_live(self):
        q = EventQueue()
        early = q.push(5, _noop)
        q.push(10, _noop)
        assert q.peek_time() == 5
        early.cancel()
        assert q.peek_time() == 10

    def test_peek_time_empty_returns_none(self):
        assert EventQueue().peek_time() is None


class TestEventCancellation:
    def test_cancelled_event_is_skipped(self):
        q = EventQueue()
        keep = q.push(10, _noop, label="keep")
        drop = q.push(5, _noop, label="drop")
        drop.cancel()
        assert q.pop() is keep

    def test_len_counts_live_events_only(self):
        q = EventQueue()
        events = [q.push(i, _noop) for i in range(4)]
        assert len(q) == 4
        events[0].cancel()
        events[2].cancel()
        assert len(q) == 2

    def test_double_cancel_raises(self):
        q = EventQueue()
        event = q.push(1, _noop)
        event.cancel()
        with pytest.raises(EventAlreadyCancelledError):
            event.cancel()

    def test_cancel_if_pending_is_idempotent(self):
        q = EventQueue()
        event = q.push(1, _noop)
        assert event.cancel_if_pending() is True
        assert event.cancel_if_pending() is False
        assert len(q) == 0

    def test_cancel_fired_event_raises(self):
        q = EventQueue()
        event = q.push(1, _noop)
        popped = q.pop()
        popped._fired = True
        with pytest.raises(EventAlreadyCancelledError):
            event.cancel()

    def test_state_properties(self):
        q = EventQueue()
        event = q.push(1, _noop)
        assert event.pending and not event.cancelled and not event.fired
        event.cancel()
        assert event.cancelled and not event.pending

    def test_clear_empties_queue(self):
        q = EventQueue()
        for i in range(3):
            q.push(i, _noop)
        q.clear()
        assert len(q) == 0
        assert q.pop() is None

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        event = q.push(1, _noop)
        assert q
        event.cancel()
        assert not q
