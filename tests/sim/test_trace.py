"""Unit tests for the trace recorder."""

import pytest

from repro.sim.trace import TraceRecord, TraceRecorder


class TestTraceRecord:
    def test_field_access_via_attributes(self):
        record = TraceRecord(10, "dispatch", task="CALC00", cpu=0)
        assert record.task == "CALC00"
        assert record.cpu == 0

    def test_missing_field_raises_attribute_error(self):
        record = TraceRecord(10, "dispatch")
        with pytest.raises(AttributeError):
            record.nope

    def test_equality(self):
        a = TraceRecord(1, "x", k=1)
        b = TraceRecord(1, "x", k=1)
        c = TraceRecord(1, "x", k=2)
        assert a == b
        assert a != c

    def test_equality_with_other_types(self):
        assert TraceRecord(1, "x").__eq__(42) is NotImplemented


class TestTraceRecorder:
    def test_record_and_iterate(self):
        recorder = TraceRecorder()
        recorder.record(1, "a", v=1)
        recorder.record(2, "b", v=2)
        assert len(recorder) == 2
        assert [r.category for r in recorder] == ["a", "b"]

    def test_by_category(self):
        recorder = TraceRecorder()
        recorder.record(1, "a")
        recorder.record(2, "b")
        recorder.record(3, "a")
        assert [r.time for r in recorder.by_category("a")] == [1, 3]

    def test_categories(self):
        recorder = TraceRecorder()
        recorder.record(1, "a")
        recorder.record(2, "b")
        assert recorder.categories() == {"a", "b"}

    def test_last_overall_and_by_category(self):
        recorder = TraceRecorder()
        recorder.record(1, "a")
        recorder.record(2, "b")
        assert recorder.last().category == "b"
        assert recorder.last("a").time == 1
        assert recorder.last("zzz") is None

    def test_last_empty_returns_none(self):
        assert TraceRecorder().last() is None

    def test_disable_enable(self):
        recorder = TraceRecorder()
        recorder.record(1, "kept")
        recorder.disable()
        recorder.record(2, "dropped")
        recorder.enable()
        recorder.record(3, "kept")
        assert [r.time for r in recorder] == [1, 3]
        assert recorder.enabled

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.record(1, "a")
        recorder.clear()
        assert len(recorder) == 0
