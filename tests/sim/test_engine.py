"""Unit tests for the simulator event loop."""

import pytest

from repro.sim.engine import MSEC, SEC, USEC, Simulator
from repro.sim.errors import SchedulingInPastError, SimulationLimitError


class TestScheduling:
    def test_time_starts_at_zero(self, sim):
        assert sim.now == 0

    def test_schedule_relative_delay(self, sim):
        fired = []
        sim.schedule(100, fired.append, 1)
        sim.run()
        assert fired == [1]
        assert sim.now == 100

    def test_schedule_at_absolute_time(self, sim):
        times = []
        sim.schedule_at(50, lambda: times.append(sim.now))
        sim.schedule_at(25, lambda: times.append(sim.now))
        sim.run()
        assert times == [25, 50]

    def test_scheduling_in_past_raises(self, sim):
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SchedulingInPastError):
            sim.schedule_at(5, lambda: None)

    def test_callback_args_passed(self, sim):
        results = []
        sim.schedule(1, lambda a, b: results.append((a, b)), 3, 4)
        sim.run()
        assert results == [(3, 4)]

    def test_call_soon_runs_after_same_instant_events(self, sim):
        order = []

        def first():
            sim.call_soon(lambda: order.append("soon"))
            order.append("first")

        sim.schedule_at(10, first)
        sim.schedule_at(10, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "soon"]

    def test_interrupt_priority_fires_first(self, sim):
        order = []
        sim.schedule_at(10, lambda: order.append("normal"))
        sim.schedule_interrupt(10, lambda: order.append("irq"))
        sim.run()
        assert order == ["irq", "normal"]


class TestRunWindows:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule_at(100, fired.append, "a")
        sim.schedule_at(300, fired.append, "b")
        sim.run(until=200)
        assert fired == ["a"]
        assert sim.now == 200

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run(until=500)
        assert sim.now == 500

    def test_run_windows_tile_seamlessly(self, sim):
        fired = []
        for t in (100, 200, 300):
            sim.schedule_at(t, fired.append, t)
        sim.run_for(150)
        assert fired == [100]
        sim.run_for(150)
        assert fired == [100, 200, 300]
        assert sim.now == 300

    def test_event_at_window_boundary_fires(self, sim):
        fired = []
        sim.schedule_at(100, fired.append, "x")
        sim.run(until=100)
        assert fired == ["x"]

    def test_stop_from_callback(self, sim):
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.schedule_at(10, stopper)
        sim.schedule_at(20, fired.append, "late")
        sim.run()
        assert fired == ["stop"]
        sim.run()
        assert fired == ["stop", "late"]

    def test_step_fires_single_event(self, sim):
        fired = []
        sim.schedule_at(10, fired.append, 1)
        sim.schedule_at(20, fired.append, 2)
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_processed_and_pending_counters(self, sim):
        sim.schedule_at(10, lambda: None)
        sim.schedule_at(20, lambda: None)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0
        assert sim.processed_events == 2


class TestSafetyAndReset:
    def test_max_events_limit(self):
        sim = Simulator(max_events=50)

        def reschedule():
            sim.schedule(1, reschedule)

        sim.schedule(1, reschedule)
        with pytest.raises(SimulationLimitError):
            sim.run()

    def test_reset_clears_events_and_clock(self, sim):
        sim.schedule_at(10, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0
        assert sim.pending_events == 0

    def test_reset_keeps_rng_streams(self, sim):
        first = sim.rng.random("x")
        sim.reset()
        second = sim.rng.random("x")
        assert first != second  # stream continued, not reseeded

    def test_reset_clears_pending_events_gauge(self, sim):
        # Regression: reset() used to leave the sim.pending_events
        # gauge at the pre-reset count.
        gauge = sim.telemetry.registry("sim").get("pending_events")
        sim.schedule_at(10, lambda: None)
        sim.schedule_at(20, lambda: None)
        sim.run(until=5)  # window ends with both events still queued
        assert gauge.value == 2
        sim.reset()
        assert gauge.value == 0

    def test_reset_inside_run_stops_the_loop(self, sim):
        # Regression: reset() used to leave _running set, so a reset
        # issued from inside a callback did not terminate the window.
        fired = []
        sim.schedule_at(10, sim.reset)
        sim.schedule_at(20, fired.append, "after-reset")
        sim.run()
        assert fired == []
        assert sim.now == 0
        # The simulator is immediately reusable.
        sim.schedule_at(5, fired.append, "fresh")
        sim.run()
        assert fired == ["fresh"]


class TestDeterminism:
    def test_identical_seeds_identical_draws(self):
        a, b = Simulator(seed=9), Simulator(seed=9)
        draws_a = [a.rng.gauss("jitter", 0, 1) for _ in range(20)]
        draws_b = [b.rng.gauss("jitter", 0, 1) for _ in range(20)]
        assert draws_a == draws_b

    def test_different_seeds_differ(self):
        a, b = Simulator(seed=1), Simulator(seed=2)
        assert [a.rng.random("x") for _ in range(5)] != \
            [b.rng.random("x") for _ in range(5)]

    def test_time_constants(self):
        assert USEC == 1_000
        assert MSEC == 1_000_000
        assert SEC == 1_000_000_000
