"""Unit tests for streaming statistics (the Table-1 summary math)."""

import math

import pytest

from repro.sim.stats import RunningStats, SampleSeries, summarize


class TestRunningStats:
    def test_single_value(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.count == 1
        assert stats.mean == 5.0
        assert stats.minimum == 5.0
        assert stats.maximum == 5.0
        assert stats.variance == 0.0

    def test_mean_min_max(self):
        stats = RunningStats()
        for value in (2, 4, 6, 8):
            stats.add(value)
        assert stats.mean == pytest.approx(5.0)
        assert stats.minimum == 2
        assert stats.maximum == 8

    def test_variance_matches_definition(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        stats = RunningStats()
        for value in values:
            stats.add(value)
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / len(values)
        assert stats.variance == pytest.approx(expected)
        assert stats.stdev == pytest.approx(math.sqrt(expected))

    def test_merge_equals_combined_stream(self):
        left, right, combined = RunningStats(), RunningStats(), \
            RunningStats()
        for value in (1, 5, 9):
            left.add(value)
            combined.add(value)
        for value in (2, 4):
            right.add(value)
            combined.add(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.mean == pytest.approx(combined.mean)
        assert left.variance == pytest.approx(combined.variance)
        assert left.minimum == combined.minimum
        assert left.maximum == combined.maximum

    def test_merge_into_empty(self):
        left, right = RunningStats(), RunningStats()
        right.add(3)
        left.merge(right)
        assert left.count == 1 and left.mean == 3

    def test_merge_empty_is_noop(self):
        left, right = RunningStats(), RunningStats()
        left.add(7)
        left.merge(right)
        assert left.count == 1 and left.mean == 7


class TestSampleSeries:
    def test_empty_summary_is_nan(self):
        series = SampleSeries()
        assert math.isnan(series.average)
        assert math.isnan(series.avedev)
        assert math.isnan(series.minimum)
        assert math.isnan(series.maximum)

    def test_avedev_is_mean_absolute_deviation(self):
        # Excel AVEDEV([1,2,3,4]) = 1.0
        series = SampleSeries([1, 2, 3, 4])
        assert series.avedev == pytest.approx(1.0)

    def test_avedev_matches_paper_style_sample(self):
        values = [-1000, -2000, 500, 1500, -3000]
        series = SampleSeries(values)
        mean = sum(values) / len(values)
        expected = sum(abs(v - mean) for v in values) / len(values)
        assert series.avedev == pytest.approx(expected)

    def test_summary_keys_match_table1_columns(self):
        summary = SampleSeries([1, 2, 3]).summary()
        assert set(summary) == {"average", "avedev", "min", "max",
                                "count"}

    def test_extend_and_len(self):
        series = SampleSeries()
        series.extend([1, 2])
        series.add(3)
        assert len(series) == 3
        assert series.values == [1, 2, 3]

    def test_values_returns_copy(self):
        series = SampleSeries([1])
        series.values.append(99)
        assert len(series) == 1

    def test_percentile_endpoints(self):
        series = SampleSeries([10, 20, 30, 40])
        assert series.percentile(0) == 10
        assert series.percentile(100) == 40
        assert series.percentile(50) == pytest.approx(25.0)

    def test_percentile_single_sample(self):
        assert SampleSeries([42]).percentile(73) == 42

    def test_percentile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            SampleSeries([1]).percentile(101)

    def test_percentile_empty_is_nan(self):
        assert math.isnan(SampleSeries().percentile(50))

    def test_stdev_population(self):
        series = SampleSeries([2, 4])
        assert series.stdev == pytest.approx(1.0)

    def test_summarize_shorthand(self):
        summary = summarize([5, 5, 5])
        assert summary["average"] == 5
        assert summary["avedev"] == 0
        assert summary["count"] == 3
