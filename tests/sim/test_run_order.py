"""Regression tests: firing order through the sorted-run drain.

``Simulator.run`` no longer pops the heap one event at a time -- it
lifts the backlog out, sorts it once, and consumes it through a cursor
while mid-run pushes go to a fresh side heap (see the engine module
docstring).  The FIFO contract must survive that batching: events at
the same ``(time, priority)`` fire in schedule order, whether they
were in the pre-run backlog, pushed mid-run, or a mix of both, and the
drain must fire exactly the order the legacy per-event ``step()`` API
would.
"""

from repro.sim.engine import Simulator
from repro.sim.events import (
    PRIORITY_INTERRUPT,
    PRIORITY_LATE,
)


class TestBacklogFifo:
    def test_same_time_same_priority_fires_in_schedule_order(self):
        sim = Simulator(seed=1)
        fired = []
        for index in range(50):
            sim.schedule_at(10, fired.append, index)
        sim.run()
        assert fired == list(range(50))

    def test_priority_breaks_ties_before_fifo(self):
        sim = Simulator(seed=1)
        fired = []
        sim.schedule_at(10, fired.append, "late",
                        priority=PRIORITY_LATE)
        sim.schedule_at(10, fired.append, "normal-0")
        sim.schedule_at(10, fired.append, "irq",
                        priority=PRIORITY_INTERRUPT)
        sim.schedule_at(10, fired.append, "normal-1")
        sim.run()
        assert fired == ["irq", "normal-0", "normal-1", "late"]

    def test_interleaved_times_sort_stably(self):
        # Schedule out of time order; same-time events keep their
        # relative schedule order after the one-shot backlog sort.
        sim = Simulator(seed=1)
        fired = []
        for index, when in enumerate([30, 10, 30, 10, 20, 10]):
            sim.schedule_at(when, fired.append, (when, index))
        sim.run()
        assert fired == [(10, 1), (10, 3), (10, 5), (20, 4),
                         (30, 0), (30, 2)]


class TestMidRunFifo:
    def test_mid_run_push_at_current_time_fires_after_backlog_peers(self):
        # A callback schedules more work for the *same* timestamp the
        # drain is currently consuming.  The mid-run event has a later
        # sequence number than every backlog event at that timestamp,
        # so FIFO says it fires after them -- the cursor/side-heap tie
        # compare must agree.
        sim = Simulator(seed=1)
        fired = []

        def spawner():
            fired.append("spawner")
            sim.schedule_at(10, fired.append, "mid-run")

        sim.schedule_at(10, spawner)
        for index in range(3):
            sim.schedule_at(10, fired.append, "backlog-%d" % index)
        sim.run()
        assert fired == ["spawner", "backlog-0", "backlog-1",
                         "backlog-2", "mid-run"]

    def test_mid_run_interrupt_preempts_backlog_at_same_time(self):
        # ...unless the mid-run push carries a stronger priority.
        sim = Simulator(seed=1)
        fired = []

        def spawner():
            fired.append("spawner")
            sim.schedule_interrupt(sim.now, fired.append, "irq")

        sim.schedule_at(10, spawner)
        sim.schedule_at(10, fired.append, "backlog")
        sim.run()
        assert fired == ["spawner", "irq", "backlog"]

    def test_run_matches_step_order_exactly(self):
        # Differential check: the batched drain and the legacy
        # per-event step() must fire the identical sequence for a
        # workload mixing backlog ties, mid-run pushes and the three
        # priority bands.
        def build(record):
            sim = Simulator(seed=1)

            def chain(tag, hops):
                record.append((sim.now, tag))
                if hops:
                    sim.schedule(7, chain, tag, hops - 1)
                    sim.schedule(7, record.append, (sim.now, tag + "+"))

            for index in range(4):
                sim.schedule_at(5, chain, "c%d" % index, 3)
                sim.schedule_at(5, record.append, (5, "p%d" % index),
                                priority=PRIORITY_LATE)
                sim.schedule_at(12, record.append, (12, "q%d" % index),
                                priority=PRIORITY_INTERRUPT)
            return sim

        via_run, via_step = [], []
        build(via_run).run()
        stepper = build(via_step)
        while stepper.step():
            pass
        assert via_run == via_step
        assert via_run  # the workload actually fired something
