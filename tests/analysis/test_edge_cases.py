"""Edge cases of :mod:`repro.analysis` that drtlint's admission
analyzers (DRT3xx) rely on: empty task sets, a single task at exactly
U = 1.0, and the RTA non-convergence guard.  Bounds are asserted as
exact values, not just booleans."""

import math

from repro.analysis import (
    TaskSpec,
    hyperbolic_bound_test,
    liu_layland_bound,
    liu_layland_test,
    response_time,
    rta_schedulable,
    total_utilization,
)

MS = 1_000_000


class TestEmptyTaskSet:
    def test_total_utilization_is_exactly_zero(self):
        assert total_utilization([]) == 0.0

    def test_liu_layland_bound_of_zero_tasks_is_zero(self):
        assert liu_layland_bound(0) == 0.0
        assert liu_layland_bound(-3) == 0.0

    def test_empty_set_passes_every_test(self):
        # U = 0 <= bound(0) = 0: vacuously schedulable.
        assert liu_layland_test([]) is True
        # Hyperbolic product over nothing is exactly 1.0 <= 2.
        assert hyperbolic_bound_test([]) is True
        ok, responses = rta_schedulable([])
        assert ok is True
        assert responses == {}


class TestSingleTaskAtFullUtilization:
    def _spec(self):
        return TaskSpec("FULL00", period_ns=10 * MS, wcet_ns=10 * MS,
                        priority=0)

    def test_bound_values_are_exact(self):
        assert liu_layland_bound(1) == 1.0
        assert liu_layland_bound(2) == 2 * (math.sqrt(2.0) - 1.0)
        assert abs(liu_layland_bound(1000) - math.log(2.0)) < 1e-3

    def test_single_task_at_u_1_is_schedulable(self):
        spec = self._spec()
        assert total_utilization([spec]) == 1.0
        assert liu_layland_test([spec]) is True      # U == bound(1)
        assert hyperbolic_bound_test([spec]) is True  # product == 2.0
        ok, responses = rta_schedulable([spec])
        assert ok is True
        # Alone on the CPU the response is exactly the WCET == period.
        assert responses == {"FULL00": 10 * MS}

    def test_epsilon_past_full_utilization_fails(self):
        over = TaskSpec("OVER00", period_ns=10 * MS,
                        wcet_ns=10 * MS + 1, priority=0)
        assert liu_layland_test([over]) is False
        ok, responses = rta_schedulable([over])
        assert ok is False
        # Guarded: the iteration stops at the deadline, it never spins.
        assert responses == {"OVER00": None}


class TestRTAConvergence:
    def test_textbook_response_time_is_exact(self):
        # Classic three-task example: R3 = 255 for (T,C) =
        # (100,25), (150,40), (350,100) under RM priorities.
        t1 = TaskSpec("T1", 100, 25, priority=0)
        t2 = TaskSpec("T2", 150, 40, priority=1)
        t3 = TaskSpec("T3", 350, 100, priority=2)
        assert response_time(t1, []) == 25
        assert response_time(t2, [t1]) == 65
        assert response_time(t3, [t1, t2]) == 255
        ok, responses = rta_schedulable([t1, t2, t3])
        assert ok is True
        assert responses == {"T1": 25, "T2": 65, "T3": 255}

    def test_non_convergence_returns_none_not_a_hang(self):
        # hp demand alone exceeds the CPU: the fixpoint iteration
        # diverges and must bail out at the limit.
        hp = TaskSpec("HOG000", period_ns=1000, wcet_ns=900,
                      priority=0)
        low = TaskSpec("LOW000", period_ns=100_000, wcet_ns=50_000,
                       priority=1)
        assert response_time(low, [hp]) is None
        ok, responses = rta_schedulable([hp, low])
        assert ok is False
        assert responses == {"HOG000": 900, "LOW000": None}

    def test_explicit_limit_is_respected(self):
        # Even a convergent iteration reports None when the caller's
        # limit cuts it off first (drtlint uses the deadline).
        t1 = TaskSpec("T1", 100, 25, priority=0)
        t3 = TaskSpec("T3", 350, 100, priority=2)
        assert response_time(t3, [t1], limit=100) is None
        # With only T1 interfering: R = 100 + ceil(150/100)*25 = 150.
        assert response_time(t3, [t1], limit=1_000) == 150

    def test_equal_priority_tasks_mutually_interfere(self):
        # The kernel round-robins within a level, so RTA treats equal
        # priorities as interfering both ways (conservative).
        a = TaskSpec("EQA000", 100, 30, priority=5)
        b = TaskSpec("EQB000", 100, 30, priority=5)
        ok, responses = rta_schedulable([a, b])
        assert ok is True
        assert responses == {"EQA000": 60, "EQB000": 60}
