"""Tests for the schedulability analysis package."""

import pytest

from repro.analysis import (
    TaskSpec,
    edf_processor_demand_test,
    edf_utilization_test,
    hyperperiod,
    hyperbolic_bound_test,
    lcm_all,
    liu_layland_bound,
    liu_layland_test,
    rate_monotonic_priorities,
    response_time,
    rta_schedulable,
    total_utilization,
)

MS = 1_000_000


def spec(name, period_ms, wcet_ms, deadline_ms=None, priority=0):
    return TaskSpec(name, period_ms * MS, int(wcet_ms * MS),
                    deadline_ns=None if deadline_ms is None
                    else deadline_ms * MS,
                    priority=priority)


class TestTaskSpec:
    def test_utilization(self):
        assert spec("a", 10, 2).utilization == pytest.approx(0.2)

    def test_implicit_deadline(self):
        assert spec("a", 10, 2).deadline_ns == 10 * MS

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskSpec("a", 0, 1)
        with pytest.raises(ValueError):
            TaskSpec("a", 10, -1)
        with pytest.raises(ValueError):
            TaskSpec("a", 10, 1, deadline_ns=0)

    def test_from_contract(self):
        from repro.core.contracts import RealTimeContract
        from repro.rtos.task import TaskType
        contract = RealTimeContract("CAM", TaskType.PERIODIC,
                                    priority=2, cpu_usage=0.1,
                                    frequency_hz=100)
        task_spec = TaskSpec.from_contract(contract)
        assert task_spec.period_ns == 10 * MS
        assert task_spec.wcet_ns == 1 * MS
        assert task_spec.priority == 2

    def test_equality_hash(self):
        assert spec("a", 10, 2) == spec("a", 10, 2)
        assert hash(spec("a", 10, 2)) == hash(spec("a", 10, 2))


class TestUtilizationTests:
    def test_total_utilization(self):
        specs = [spec("a", 10, 2), spec("b", 20, 5)]
        assert total_utilization(specs) == pytest.approx(0.45)

    def test_liu_layland_bound_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        assert liu_layland_bound(100) == pytest.approx(0.6964, abs=1e-3)
        assert liu_layland_bound(0) == 0.0

    def test_liu_layland_test(self):
        ok = [spec("a", 10, 4), spec("b", 20, 8)]  # U=0.8 < 0.828
        assert liu_layland_test(ok)
        bad = [spec("a", 10, 5), spec("b", 20, 8)]  # U=0.9
        assert not liu_layland_test(bad)

    def test_hyperbolic_tighter_than_liu_layland(self):
        # U=0.85 with balanced tasks: prod(1.425^2)=2.03 fails, but
        # skewed utilizations pass hyperbolic while failing LL.
        specs = [spec("a", 10, 7), spec("b", 100, 8)]  # 0.7 + 0.08
        assert hyperbolic_bound_test(specs)
        specs_ll = liu_layland_test(specs)
        assert hyperbolic_bound_test(specs) >= specs_ll


class TestResponseTimeAnalysis:
    def test_classic_example(self):
        # Buttazzo-style set: T=(4,5,20), C=(1,2,5) RM-ordered.
        t1 = spec("t1", 4, 1, priority=0)
        t2 = spec("t2", 5, 2, priority=1)
        t3 = spec("t3", 20, 5, priority=2)
        assert response_time(t1, []) == 1 * MS
        assert response_time(t2, [t1]) == 3 * MS
        # R3 = 5 + ceil(R/4)*1 + ceil(R/5)*2 -> fixed point at 15ms:
        # 5 + 4*1 + 3*2 = 15, and ceil(15/4)=4, ceil(15/5)=3.
        assert response_time(t3, [t1, t2]) == 15 * MS

    def test_unschedulable_returns_none(self):
        hog = spec("hog", 10, 9, priority=0)
        victim = spec("victim", 10, 2, priority=1)
        assert response_time(victim, [hog]) is None

    def test_rta_schedulable_whole_set(self):
        ok, responses = rta_schedulable([
            spec("t1", 4, 1, priority=0),
            spec("t2", 5, 2, priority=1),
            spec("t3", 20, 5, priority=2),
        ])
        assert ok
        assert responses["t3"] == 15 * MS

    def test_rta_harmonic_full_utilization(self):
        ok, _ = rta_schedulable([
            spec("fast", 1, 0.5, priority=0),
            spec("slow", 2, 1, priority=1),
        ])
        assert ok  # U = 1.0, harmonic: exactly feasible

    def test_rta_detects_deadline_overrun(self):
        ok, responses = rta_schedulable([
            spec("fast", 4, 3, priority=0),
            spec("slow", 8, 3, priority=1),
        ])  # slow: R = 3 + 2*3 = 9 > 8
        assert not ok
        assert responses["slow"] is None or responses["slow"] > 8 * MS

    def test_equal_priority_mutual_interference(self):
        # Two equal-priority tasks each see the other: conservative.
        ok, _ = rta_schedulable([
            spec("a", 10, 6, priority=1),
            spec("b", 10, 6, priority=1),
        ])
        assert not ok

    def test_rate_monotonic_priorities(self):
        priorities = rate_monotonic_priorities([
            spec("slow", 100, 1), spec("fast", 1, 0.1),
            spec("mid", 10, 1)])
        assert priorities["fast"] < priorities["mid"] \
            < priorities["slow"]


class TestEDF:
    def test_utilization_test(self):
        assert edf_utilization_test([spec("a", 10, 5),
                                     spec("b", 10, 5)])
        assert not edf_utilization_test([spec("a", 10, 6),
                                         spec("b", 10, 5)])

    def test_demand_test_implicit_deadlines(self):
        ok, violation = edf_processor_demand_test([
            spec("a", 10, 5), spec("b", 20, 10)])
        assert ok and violation is None

    def test_demand_test_constrained_deadline_fails(self):
        # Two tasks with tight deadlines: demand exceeds supply.
        ok, violation = edf_processor_demand_test([
            spec("a", 10, 5, deadline_ms=6),
            spec("b", 10, 5, deadline_ms=6),
        ])
        assert not ok
        assert violation == 6 * MS

    def test_demand_test_constrained_deadline_passes(self):
        ok, _ = edf_processor_demand_test([
            spec("a", 10, 2, deadline_ms=5),
            spec("b", 20, 4, deadline_ms=15),
        ])
        assert ok

    def test_overutilized_fails_fast(self):
        ok, violation = edf_processor_demand_test([
            spec("a", 10, 11)])
        assert not ok and violation == 0

    def test_empty_set_schedulable(self):
        assert edf_processor_demand_test([]) == (True, None)

    def test_checkpoint_explosion_raises(self):
        # Tight deadlines + U near 1 push the La testing bound far
        # past the periods: many checkpoints, capped by max_points.
        with pytest.raises(ValueError):
            edf_processor_demand_test(
                [TaskSpec("a", 10, 5, deadline_ns=1),
                 TaskSpec("b", 11, 5, deadline_ns=1)],
                max_points=10)


class TestHyperperiod:
    def test_lcm_all(self):
        assert lcm_all([4, 6]) == 12
        assert lcm_all([2, 3, 5]) == 30
        assert lcm_all([]) == 1

    def test_lcm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lcm_all([4, 0])

    def test_hyperperiod(self):
        assert hyperperiod([10 * MS, 25 * MS]) == 50 * MS
