"""Tests for blocking-aware response-time analysis, validated against
the simulated kernel's priority-inheritance semaphores."""

from repro.analysis import TaskSpec, response_time, rta_schedulable
from repro.rtos.kernel import KernelConfig, RTKernel
from repro.rtos.latency import NullLatencyModel
from repro.rtos.requests import Compute, SemSignal, SemWait, WaitPeriod
from repro.rtos.task import TaskType
from repro.sim.engine import MSEC, SEC, USEC, Simulator

MS = 1_000_000


class TestBlockingTerm:
    def test_blocking_adds_to_response(self):
        spec = TaskSpec("t", 10 * MS, 2 * MS)
        assert response_time(spec, []) == 2 * MS
        assert response_time(spec, [], blocking_ns=1 * MS) == 3 * MS

    def test_blocking_amplifies_interference(self):
        hp = TaskSpec("hp", 4 * MS, 1 * MS, priority=0)
        spec = TaskSpec("t", 20 * MS, 3 * MS, priority=1)
        # Without blocking: R = 3 + ceil(R/4)*1 -> 4.
        assert response_time(spec, [hp]) == 4 * MS
        # With 2ms blocking: R = 5 + ceil(R/4)*1 -> fixed point 7
        # (ceil(7/4)=2 -> 5+2=7).
        assert response_time(spec, [hp], blocking_ns=2 * MS) == 7 * MS

    def test_blocking_can_break_schedulability(self):
        specs = [
            TaskSpec("hi", 4 * MS, 2 * MS, priority=0),
            TaskSpec("lo", 8 * MS, 3 * MS, priority=1),
        ]
        ok, _ = rta_schedulable(specs)
        assert ok
        ok, results = rta_schedulable(
            specs, blocking={"hi": int(2.5 * MS)})
        assert not ok

    def test_blocking_only_affects_named_tasks(self):
        specs = [
            TaskSpec("a", 10 * MS, 1 * MS, priority=0),
            TaskSpec("b", 20 * MS, 1 * MS, priority=1),
        ]
        _, with_blocking = rta_schedulable(specs, blocking={"a": MS})
        _, without = rta_schedulable(specs)
        assert with_blocking["a"] == without["a"] + MS
        assert with_blocking["b"] == without["b"]


class TestBlockingBoundAgainstKernel:
    """The PI-bounded inversion observed on the simulated kernel must
    respect the analytic bound B = longest lower-priority critical
    section."""

    def test_observed_blocking_within_bound(self):
        sim = Simulator(seed=6)
        kernel = RTKernel(sim, KernelConfig(
            latency_model=NullLatencyModel(), irq_entry_ns=0,
            scheduler_overhead_ns=0, context_switch_ns=0))
        kernel.start_timer(1 * MSEC)
        res = kernel.resource_semaphore("RES000")
        critical_ns = 2 * MSEC
        high_latencies = []

        def low_body(task):
            while True:
                yield WaitPeriod()
                yield SemWait(res)
                yield Compute(critical_ns)
                yield SemSignal(res)

        def high_body(task):
            while True:
                latency = yield WaitPeriod()
                start = kernel.now
                yield SemWait(res)
                high_latencies.append(kernel.now - start)
                yield Compute(200 * USEC)
                yield SemSignal(res)

        low = kernel.create_task("LOWT00", low_body, 10,
                                 task_type=TaskType.PERIODIC,
                                 period_ns=10 * MSEC)
        high = kernel.create_task("HIGHT0", high_body, 1,
                                  task_type=TaskType.PERIODIC,
                                  period_ns=5 * MSEC)
        # Phase-shift the low task so its critical section straddles
        # the high task's releases (aligned grids would never contend).
        kernel.start_task(low, start_at=9 * MSEC)
        kernel.start_task(high)
        sim.run_for(1 * SEC)
        # The high task's resource-acquisition delay never exceeds one
        # full lower-priority critical section.
        assert max(high_latencies) <= critical_ns
        assert max(high_latencies) > 0  # contention actually happened

    def test_rta_with_blocking_predicts_kernel_outcome(self):
        # B(high) = 2ms critical section; with C(high)=0.2ms,
        # T(high)=5ms: R = 0.2 + 2 = 2.2 <= 5 -> schedulable, and the
        # kernel agrees (no misses).
        specs = [
            TaskSpec("HIGHT0", 5 * MS, 200_000, priority=1),
            TaskSpec("LOWT00", 10 * MS, 2 * MS, priority=10),
        ]
        ok, results = rta_schedulable(
            specs, blocking={"HIGHT0": 2 * MS})
        assert ok
        assert results["HIGHT0"] == 200_000 + 2 * MS
