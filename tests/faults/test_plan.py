"""FaultPlan/FaultSpec: validation, round-trips, the built-in plan."""

import pytest

from repro.faults.plan import (COUNT_KINDS, WINDOW_KINDS, FaultKind,
                               FaultPlan, FaultPlanError, FaultSpec,
                               example_plan, load_plan)
from repro.sim.engine import MSEC


class TestFaultSpec:
    def test_dict_round_trip_every_kind(self):
        for kind in FaultKind:
            # The cluster kinds target nodes (a pair for partition),
            # not components.
            target = "nodeA|nodeB" \
                if kind is FaultKind.PARTITION else "TGT000"
            spec = FaultSpec(
                kind, target=target, at_ns=5 * MSEC,
                duration_ns=2 * MSEC if kind in WINDOW_KINDS else None,
                count=3 if kind in COUNT_KINDS else 1,
                factor=4.0, probability=0.5)
            clone = FaultSpec.from_dict(spec.to_dict())
            assert clone.kind is spec.kind
            assert clone.target == spec.target
            assert clone.at_ns == spec.at_ns
            assert clone.duration_ns == spec.duration_ns
            assert clone.count == spec.count
            assert clone.probability == spec.probability

    def test_string_kind_accepted(self):
        spec = FaultSpec("crash", target="A")
        assert spec.kind is FaultKind.CRASH

    def test_ms_sugar(self):
        spec = FaultSpec.from_dict(
            {"kind": "overrun", "at_ms": 100, "duration_ms": 20,
             "factor": 5.0})
        assert spec.at_ns == 100 * MSEC
        assert spec.duration_ns == 20 * MSEC
        assert spec.end_ns == 120 * MSEC

    def test_window_kinds_need_duration(self):
        for kind in WINDOW_KINDS:
            with pytest.raises(FaultPlanError):
                FaultSpec(kind, factor=2.0)

    def test_overrun_factor_must_exceed_one(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(FaultKind.OVERRUN, duration_ns=MSEC, factor=1.0)

    def test_probability_bounds(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(FaultPlanError):
                FaultSpec(FaultKind.CRASH, probability=bad)

    def test_count_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(FaultKind.DESCRIPTOR_CORRUPT, count=0)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(FaultKind.CRASH, at_ns=-1)

    def test_bad_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec.from_dict({"kind": "meteor_strike"})

    def test_matches_wildcard_and_exact(self):
        assert FaultSpec(FaultKind.CRASH, target="*").matches("ANY000")
        spec = FaultSpec(FaultKind.CRASH, target="CALC00")
        assert spec.matches("CALC00")
        assert not spec.matches("DISP00")


class TestFaultPlan:
    def test_round_trip_with_recovery_config(self):
        plan = example_plan()
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.name == plan.name
        assert clone.seed == plan.seed
        assert clone.watchdog == plan.watchdog
        assert clone.quarantine == plan.quarantine
        assert [s.to_dict() for s in clone.faults] \
            == [s.to_dict() for s in plan.faults]

    def test_plan_needs_name(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"faults": []})

    def test_watchdog_config_needs_limit(self):
        with pytest.raises(FaultPlanError):
            FaultPlan("p", watchdog={"policy": "fault"})

    def test_quarantine_config_needs_cooldown(self):
        with pytest.raises(FaultPlanError):
            FaultPlan("p", quarantine={"max_failures": 2})

    def test_json_file_round_trip(self, tmp_path):
        import json
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(example_plan().to_dict()),
                        encoding="utf-8")
        plan = FaultPlan.from_json_file(str(path))
        assert plan.name == "examples"
        assert len(plan.faults) == 4

    def test_load_plan_builtin_and_passthrough(self, tmp_path):
        builtin = load_plan("examples")
        assert builtin.name == "examples"
        assert load_plan(builtin) is builtin
        import json
        path = tmp_path / "p.json"
        path.write_text(json.dumps({"name": "file-plan"}),
                        encoding="utf-8")
        assert load_plan(str(path)).name == "file-plan"

    def test_example_plan_is_deterministic_data(self):
        assert example_plan().to_dict() == example_plan().to_dict()
