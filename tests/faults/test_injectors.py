"""Every injector against a live platform, plus schedule determinism."""

from repro.core import ComponentState
from repro.core.policies import UtilizationBoundPolicy
from repro.faults import FaultEngine, FaultKind, FaultPlan, FaultSpec
from repro.hybrid.protocol import CommandKind
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml


def fresh_platform(seed=7):
    platform = build_platform(
        seed=seed,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=1.0))
    platform.start_timer(1 * MSEC)
    return platform


def metric(platform, name):
    instrument = platform.telemetry.aggregate().get(name)
    return instrument.value if instrument is not None else 0


class TestDeterminism:
    PLAN = {
        "name": "det", "seed": 99,
        "faults": [
            {"kind": "crash", "target": "*", "at_ms": 100,
             "probability": 0.5},
            {"kind": "overrun", "target": "DETA00", "at_ms": 300,
             "duration_ms": 10, "factor": 50.0, "probability": 0.4},
        ],
    }

    def run_once(self):
        platform = fresh_platform()
        engine = FaultEngine(platform,
                             FaultPlan.from_dict(self.PLAN)).arm()
        for name in ("DETA00", "DETB00", "DETC00"):
            deploy(platform, make_descriptor_xml(
                name, cpuusage=0.02, frequency=100, priority=2))
        platform.run_for(1 * SEC)
        return engine.injections, engine.skips

    def test_same_plan_same_fault_schedule(self):
        first = self.run_once()
        second = self.run_once()
        assert first == second

    def test_plan_seed_controls_probability_gates(self):
        baseline = self.run_once()
        plan = dict(self.PLAN, seed=100)
        platform = fresh_platform()
        engine = FaultEngine(platform, FaultPlan.from_dict(plan)).arm()
        for name in ("DETA00", "DETB00", "DETC00"):
            deploy(platform, make_descriptor_xml(
                name, cpuusage=0.02, frequency=100, priority=2))
        platform.run_for(1 * SEC)
        # Different seed, same platform randomness: gates may flip.
        # What must hold is that the schedule is a pure function of the
        # plan -- so at minimum the injected+skipped totals add up the
        # same way they did for the baseline.
        assert len(engine.injections) + len(engine.skips) \
            == len(baseline[0]) + len(baseline[1])


class TestCrash:
    def test_crash_faults_the_component(self, platform):
        plan = FaultPlan("t", faults=[
            FaultSpec(FaultKind.CRASH, "CRSH00", at_ns=50 * MSEC)])
        engine = FaultEngine(platform, plan).arm()
        deploy(platform, make_descriptor_xml(
            "CRSH00", cpuusage=0.02, frequency=100, priority=2))
        platform.run_for(200 * MSEC)
        component = platform.drcr.component("CRSH00")
        assert component.state is ComponentState.DISABLED
        assert "FaultInjectionError" in component.status_reason
        assert not platform.kernel.exists("CRSH00")
        assert [(k, t) for _, k, t, _ in engine.injections] \
            == [("crash", "CRSH00")]
        assert metric(platform, "faults.injected_crash_total") == 1

    def test_crash_with_no_target_is_a_skip(self, platform):
        plan = FaultPlan("t", faults=[
            FaultSpec(FaultKind.CRASH, "NOPE00", at_ns=10 * MSEC)])
        engine = FaultEngine(platform, plan).arm()
        platform.run_for(50 * MSEC)
        assert engine.injections == []
        assert engine.skips[0][1] == "crash"
        assert metric(platform, "faults.skipped_total") == 1


class TestActivationCrash:
    def test_failed_activation_is_retried_next_reconfigure(
            self, platform):
        plan = FaultPlan("t", faults=[
            FaultSpec(FaultKind.CRASH_ON_ACTIVATE, "ACRS00", count=1)])
        engine = FaultEngine(platform, plan).arm()
        deploy(platform, make_descriptor_xml(
            "ACRS00", cpuusage=0.02, frequency=100, priority=2))
        component = platform.drcr.component("ACRS00")
        assert component.state is ComponentState.UNSATISFIED
        assert "activation failed" in component.status_reason
        # Any later reconfiguration retries; the injector is spent.
        deploy(platform, make_descriptor_xml(
            "OTHR00", cpuusage=0.02, frequency=100, priority=2))
        assert component.state is ComponentState.ACTIVE
        assert len(engine.injections) == 1

    def test_failed_deactivation_forces_teardown(self, platform):
        plan = FaultPlan("t", faults=[
            FaultSpec(FaultKind.CRASH_ON_DEACTIVATE, "DCRS00",
                      count=1)])
        FaultEngine(platform, plan).arm()
        bundle = deploy(platform, make_descriptor_xml(
            "DCRS00", cpuusage=0.02, frequency=100, priority=2))
        platform.run_for(50 * MSEC)
        assert platform.kernel.exists("DCRS00")
        bundle.stop()
        # deactivate raised, but the force-teardown reclaimed the task.
        assert not platform.kernel.exists("DCRS00")
        assert platform.drcr.registry.maybe_get("DCRS00") is None
        assert metric(platform, "drcr.deactivation_errors_total") == 1


class TestOverrun:
    def test_overrun_inflates_then_restores(self, platform):
        plan = FaultPlan("t", faults=[
            FaultSpec(FaultKind.OVERRUN, "OVRN00", at_ns=100 * MSEC,
                      duration_ns=50 * MSEC, factor=300.0)])
        FaultEngine(platform, plan).arm()
        deploy(platform, make_descriptor_xml(
            "OVRN00", cpuusage=0.01, frequency=100, priority=0))
        platform.run_for(1 * SEC)
        # 100 us WCET x300 = 30 ms per job against a 10 ms period:
        # jobs in the window overran and missed.
        assert metric(platform, "faults.overrun_jobs_total") >= 1
        task = platform.kernel.lookup("OVRN00")
        assert task.stats.deadline_misses >= 1
        # The wrapper removed itself at window end.
        implementation = \
            platform.drcr.component("OVRN00").container.implementation
        assert "compute_ns" not in implementation.__dict__


class TestMailboxFaults:
    def test_drop_window_shrinks_capacity_then_restores(self, platform):
        plan = FaultPlan("t", faults=[
            FaultSpec(FaultKind.MAILBOX_DROP, "DROP00",
                      at_ns=10 * MSEC, duration_ns=20 * MSEC)])
        FaultEngine(platform, plan).arm()
        deploy(platform, make_descriptor_xml(
            "DROP00", cpuusage=0.02, frequency=100, priority=2))
        platform.run_for(15 * MSEC)
        bridge = platform.drcr.component("DROP00").container.bridge
        assert bridge.command_mailbox.capacity == 0
        assert bridge.send_command(CommandKind.PING) is None
        dropped = bridge.commands_dropped
        platform.run_for(25 * MSEC)
        assert bridge.command_mailbox.capacity > 0
        assert bridge.send_command(CommandKind.PING) is not None
        assert bridge.commands_dropped == dropped

    def test_flood_fills_the_command_mailbox(self, platform):
        plan = FaultPlan("t", faults=[
            FaultSpec(FaultKind.MAILBOX_FLOOD, "FLUD00",
                      at_ns=10 * MSEC)])
        engine = FaultEngine(platform, plan).arm()
        deploy(platform, make_descriptor_xml(
            "FLUD00", cpuusage=0.02, frequency=100, priority=2))
        platform.run_for(50 * MSEC)
        (_, kind, target, detail), = engine.injections
        assert (kind, target) == ("mailbox_flood", "FLUD00")
        bridge = platform.drcr.component("FLUD00").container.bridge
        assert detail["flooded"] == bridge.command_mailbox.capacity


class TestDescriptorCorrupt:
    def test_corruption_is_contained_and_bounded(self, platform):
        plan = FaultPlan("t", faults=[
            FaultSpec(FaultKind.DESCRIPTOR_CORRUPT, "*", count=1)])
        engine = FaultEngine(platform, plan).arm()
        deploy(platform, make_descriptor_xml(
            "CORR00", cpuusage=0.02, frequency=100, priority=2))
        assert platform.drcr.registry.maybe_get("CORR00") is None
        assert metric(platform, "drcr.descriptor_errors_total") == 1
        # count=1: the next deployment parses untouched.
        deploy(platform, make_descriptor_xml(
            "OKAY00", cpuusage=0.02, frequency=100, priority=2))
        assert platform.drcr.component_state("OKAY00") \
            is ComponentState.ACTIVE
        assert len(engine.injections) == 1


class TestResolverTimeout:
    def test_fails_safe_on_admit_and_open_on_revalidate(self, platform):
        plan = FaultPlan("t", faults=[
            FaultSpec(FaultKind.RESOLVER_TIMEOUT, "*",
                      at_ns=10 * MSEC, duration_ns=20 * MSEC)])
        FaultEngine(platform, plan).arm()
        deploy(platform, make_descriptor_xml(
            "SAFE01", cpuusage=0.02, frequency=100, priority=2))
        platform.run_for(15 * MSEC)
        # Revalidation fails open: the admitted component survives the
        # raising resolver.
        assert platform.drcr.component_state("SAFE01") \
            is ComponentState.ACTIVE
        # Admission fails safe: a newcomer is vetoed while the raising
        # resolver is registered.
        deploy(platform, make_descriptor_xml(
            "LATE00", cpuusage=0.02, frequency=100, priority=3))
        late = platform.drcr.component("LATE00")
        assert late.state is ComponentState.UNSATISFIED
        assert "failed" in late.status_reason
        assert metric(platform,
                      "drcr.resolving_service_errors_total") >= 2
        # Window over: the service unregisters and admission recovers.
        platform.run_for(25 * MSEC)
        assert late.state is ComponentState.ACTIVE
