"""Recovery machinery: backoff retries, quarantine, degradation."""

import random

import pytest

from repro.core import ComponentState
from repro.core.policies import UtilizationBoundPolicy
from repro.core.resolving import RESOLVING_SERVICE_INTERFACE
from repro.faults.recovery import (BackoffPolicy,
                                   GracefulDegradationService,
                                   QuarantinePolicy,
                                   shed_lowest_priority)
from repro.hybrid import RTImplementation, make_container_factory
from repro.hybrid.bridge import CommandBridge
from repro.hybrid.implementation import ImplementationRegistry
from repro.hybrid.protocol import CommandKind
from repro.platform import build_platform
from repro.rtos.kernel import KernelConfig
from repro.rtos.latency import NullLatencyModel
from repro.sim.engine import MSEC, SEC

from conftest import deploy, make_descriptor_xml


def metric(platform, name):
    instrument = platform.telemetry.aggregate().get(name)
    return instrument.value if instrument is not None else 0


class TestBackoffPolicy:
    def test_exponential_growth_with_cap(self):
        policy = BackoffPolicy(initial_ns=1 * MSEC, factor=2.0,
                               max_delay_ns=4 * MSEC, jitter=0.0)
        assert [policy.delay_ns(n) for n in (1, 2, 3, 4, 5)] \
            == [1 * MSEC, 2 * MSEC, 4 * MSEC, 4 * MSEC, 4 * MSEC]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = BackoffPolicy(initial_ns=10 * MSEC, jitter=0.1)
        first = [policy.delay_ns(1, random.Random(5)) for _ in range(5)]
        second = [policy.delay_ns(1, random.Random(5)) for _ in range(5)]
        assert first == second
        for delay in first:
            assert 9 * MSEC <= delay <= 11 * MSEC

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            BackoffPolicy().delay_ns(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(initial_ns=0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)


class TestQuarantinePolicyUnit:
    def test_failure_accounting(self):
        policy = QuarantinePolicy(cooldown_ns=MSEC, max_failures=2)
        assert policy.record_failure("A") == 1
        assert not policy.is_permanent("A")
        assert policy.record_failure("A") == 2
        assert policy.is_permanent("A")
        assert not policy.is_permanent("B")
        policy.forgive("A")
        assert not policy.is_permanent("A")

    def test_validation(self):
        with pytest.raises(ValueError):
            QuarantinePolicy(cooldown_ns=0)
        with pytest.raises(ValueError):
            QuarantinePolicy(max_failures=0)


class TestReliableSend:
    def test_gives_up_after_the_attempt_cap(self, kernel):
        bridge = CommandBridge(kernel, "TEST")
        bridge.command_mailbox.resize(0)
        state = bridge.send_command_reliable(
            CommandKind.PING,
            backoff=BackoffPolicy(initial_ns=1 * MSEC, factor=2.0,
                                  max_attempts=4, jitter=0.0))
        kernel.sim.run_for(1 * SEC)
        assert state.gave_up and not state.delivered
        assert state.attempts == 4
        flat = kernel.sim.telemetry.aggregate()
        assert flat["hybrid.command_retry_giveups_total"].value == 1
        assert flat["hybrid.command_retries_total"].value == 3
        assert kernel.sim.trace.by_category("command_retry_giveup")

    def test_recovers_when_capacity_returns(self, kernel):
        bridge = CommandBridge(kernel, "TEST")
        bridge.command_mailbox.resize(0)
        # Capacity returns at 5 ms; retries run at ~1, 3, 7 ms.
        kernel.sim.schedule(5 * MSEC, bridge.command_mailbox.resize, 16)
        state = bridge.send_command_reliable(
            CommandKind.PING,
            backoff=BackoffPolicy(initial_ns=1 * MSEC, factor=2.0,
                                  max_attempts=6, jitter=0.0))
        kernel.sim.run_for(1 * SEC)
        assert state.delivered and not state.gave_up
        assert state.attempts > 1
        assert state.command is not None
        flat = kernel.sim.telemetry.aggregate()
        assert flat["hybrid.commands_recovered_total"].value == 1


class FaultsAtJobThree(RTImplementation):
    def execute(self, ctx):
        if ctx.job_index >= 2:
            raise RuntimeError("synthetic implementation bug")


def quarantine_platform():
    registry = ImplementationRegistry()
    registry.register("faulty.Impl", FaultsAtJobThree)
    platform = build_platform(
        seed=11,
        kernel_config=KernelConfig(latency_model=NullLatencyModel()),
        internal_policy=UtilizationBoundPolicy(cap=1.0),
        container_factory=make_container_factory(registry))
    platform.start_timer(1 * MSEC)
    return platform


class TestQuarantineLifecycle:
    def test_readmission_then_permanent_quarantine(self):
        platform = quarantine_platform()
        policy = QuarantinePolicy(cooldown_ns=50 * MSEC, max_failures=2)
        platform.drcr.set_recovery_policy(policy)
        deploy(platform, make_descriptor_xml(
            "BOOM00", cpuusage=0.02, frequency=1000, priority=2,
            bincode="faulty.Impl"))
        platform.run_for(300 * MSEC)
        # Fault 1 (~job 4): quarantined, re-admitted after 50 ms.
        # Fault 2 (the fresh incarnation faults again): permanent.
        component = platform.drcr.component("BOOM00")
        assert component.state is ComponentState.DISABLED
        assert "permanently" in component.status_reason
        assert policy.failures["BOOM00"] == 2
        assert metric(platform, "drcr.quarantines_total") == 1
        assert metric(platform,
                      "drcr.quarantine_readmissions_total") == 1
        assert metric(platform, "drcr.quarantine_permanent_total") == 1
        history = [e.event_type.value for e in
                   platform.drcr.events.for_component("BOOM00")]
        assert history.count("activated") == 2
        # Quarantine trace rows carry the escalation.
        records = platform.kernel.sim.trace.by_category("quarantine")
        assert [r.fields["permanent"] for r in records] == [False, True]

    def test_quarantined_component_stays_down_during_cooldown(self):
        platform = quarantine_platform()
        platform.drcr.set_recovery_policy(
            QuarantinePolicy(cooldown_ns=200 * MSEC, max_failures=5))
        deploy(platform, make_descriptor_xml(
            "BOOM01", cpuusage=0.02, frequency=1000, priority=2,
            bincode="faulty.Impl"))
        platform.run_for(100 * MSEC)
        assert platform.drcr.component_state("BOOM01") \
            is ComponentState.DISABLED
        assert not platform.kernel.exists("BOOM01")


class TestGracefulDegradation:
    def deploy_three(self, platform):
        for name, priority in (("GDA000", 1), ("GDB000", 2),
                               ("GDC000", 3)):
            deploy(platform, make_descriptor_xml(
                name, cpuusage=0.3, frequency=100, priority=priority))

    def test_lowering_the_cap_sheds_lowest_priority_first(
            self, platform):
        service = GracefulDegradationService(cap=1.0)
        platform.drcr.framework.registry.register(
            RESOLVING_SERVICE_INTERFACE, service)
        self.deploy_three(platform)
        for name in ("GDA000", "GDB000", "GDC000"):
            assert platform.drcr.component_state(name) \
                is ComponentState.ACTIVE
        service.cap = 0.7
        platform.drcr.reconfigure()
        assert platform.drcr.component_state("GDC000") \
            is ComponentState.UNSATISFIED
        # The shed reason is in the event log; the final status reason
        # is the admit veto that keeps it from bouncing straight back.
        reasons = [e.reason for e in
                   platform.drcr.events.for_component("GDC000")]
        assert any("shed" in reason for reason in reasons)
        assert "degradation cap" \
            in platform.drcr.component("GDC000").status_reason
        assert platform.drcr.component_state("GDA000") \
            is ComponentState.ACTIVE
        assert platform.drcr.component_state("GDB000") \
            is ComponentState.ACTIVE
        assert service.shed == ["GDC000"]
        # The shed component must not bounce back while over budget.
        platform.drcr.reconfigure()
        assert platform.drcr.component_state("GDC000") \
            is ComponentState.UNSATISFIED
        # Raising the cap re-admits it.
        service.cap = 1.0
        platform.drcr.reconfigure()
        assert platform.drcr.component_state("GDC000") \
            is ComponentState.ACTIVE

    def test_shed_lowest_priority_helper(self, platform):
        self.deploy_three(platform)
        assert shed_lowest_priority(platform.drcr) == "GDC000"
        assert platform.drcr.component_state("GDC000") \
            is ComponentState.DISABLED
        assert shed_lowest_priority(platform.drcr) == "GDB000"

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            GracefulDegradationService(cap=0.0)
