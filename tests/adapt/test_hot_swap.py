"""Hot add/remove of providers through the OSGi registry, and the
controller's suppression telemetry (ISSUE satellite: register a
RuleProvider mid-run, next epoch picks it up; unregister, no further
firings)."""

from repro.adapt.controller import AdaptationController
from repro.adapt.context import StaticContextProvider
from repro.adapt.rules import (
    CONTEXT_PROVIDER_INTERFACE,
    JsonRuleProvider,
    parse_rule_document,
)
from repro.sim.engine import MSEC, SEC

EPOCH = 10 * MSEC

ALWAYS = {"rules": [{
    "name": "always",
    "when": {"param": "releases", "op": ">=", "value": 0},
    "then": [{"action": "reconfigure"}],
}]}


def _adapt_counter(platform, name):
    return platform.telemetry.registry("adapt").counter(name).value


def test_rule_provider_hot_add_and_remove(platform):
    controller = AdaptationController(platform, epoch_ns=EPOCH).start()
    platform.run_for(5 * EPOCH)
    assert _adapt_counter(platform, "epochs_total") >= 4
    assert _adapt_counter(platform, "rules_fired_total") == 0

    # hot add: the next epoch's registry query finds the provider
    provider = JsonRuleProvider(ALWAYS, name="hot")
    registration = provider.register(platform.framework)
    platform.run_for(3 * EPOCH)
    fired_while_registered = _adapt_counter(platform,
                                            "rules_fired_total")
    assert fired_while_registered >= 2
    adapt = platform.telemetry.registry("adapt")
    assert adapt.gauge("rules_loaded").value == 1

    # hot remove: no further firings once unregistered
    registration.unregister()
    platform.run_for(5 * EPOCH)
    assert _adapt_counter(platform, "rules_fired_total") \
        == fired_while_registered
    assert adapt.gauge("rules_loaded").value == 0
    controller.stop()


def test_context_provider_hot_add(platform):
    rules = parse_rule_document({"rules": [{
        "name": "needs-cluster-context",
        "when": {"param": "alive_nodes", "op": "<", "value": 2},
        "then": [{"action": "reconfigure"}],
        "cooldown_ns": 0,
    }]})
    controller = AdaptationController(platform, epoch_ns=EPOCH,
                                      rules=rules).start()
    # no provider publishes alive_nodes on a single platform: the
    # predicate is false-by-absence, the rule never fires
    platform.run_for(3 * EPOCH)
    assert _adapt_counter(platform, "rules_fired_total") == 0
    registration = platform.framework.registry.register(
        CONTEXT_PROVIDER_INTERFACE,
        StaticContextProvider({"alive_nodes": 1.0}))
    platform.run_for(2 * EPOCH)
    assert _adapt_counter(platform, "rules_fired_total") >= 1
    registration.unregister()
    controller.stop()


def test_suppression_counters_reach_telemetry(platform):
    rules = parse_rule_document({"rules": [
        {"name": "cooled",
         "when": {"param": "releases", "op": ">=", "value": 0},
         "then": [{"action": "reconfigure"}],
         "cooldown_ns": 1 * SEC},
        {"name": "slow",
         "when": {"param": "releases", "op": ">=", "value": 0,
                  "for_epochs": 1000},
         "then": [{"action": "reconfigure"}]},
    ]})
    controller = AdaptationController(platform, epoch_ns=EPOCH,
                                      rules=rules).start()
    platform.run_for(6 * EPOCH)
    # "cooled" fired once then sat in cooldown; "slow" never armed
    assert _adapt_counter(platform, "rules_fired_total") == 1
    assert _adapt_counter(platform,
                          "rules_suppressed_cooldown_total") >= 4
    assert _adapt_counter(platform,
                          "rules_suppressed_hysteresis_total") >= 5
    total = _adapt_counter(platform, "rules_suppressed_total")
    by_reason = sum(
        _adapt_counter(platform, "rules_suppressed_%s_total" % reason)
        for reason in ("hysteresis", "cooldown", "exhausted",
                       "conflict"))
    assert total == by_reason
    controller.stop()


def test_action_errors_are_contained(platform):
    rules = parse_rule_document({"rules": [{
        "name": "doomed",
        "when": {"param": "releases", "op": ">=", "value": 0},
        "then": [{"action": "suspend", "component": "NOSUCH"}],
        "cooldown_ns": 0,
    }]})
    controller = AdaptationController(platform, epoch_ns=EPOCH,
                                      rules=rules).start()
    platform.run_for(3 * EPOCH)
    # the action failed every epoch, yet the loop kept running
    assert _adapt_counter(platform, "action_errors_total") >= 2
    assert _adapt_counter(platform, "epochs_total") >= 2
    assert controller.history
    assert all(entry["outcome"].startswith("error:")
               for entry in controller.history)
    controller.stop()
