"""Context providers: windowing, percentiles, node scoping."""

from repro.adapt.context import (
    CONTEXT_PARAMS,
    KernelContextProvider,
    StaticContextProvider,
    TelemetryContextProvider,
    param_range,
    percentile_from_buckets,
    scoped,
)
from repro.core.policies import AlwaysAcceptPolicy
from repro.platform import build_platform
from repro.sim.engine import MSEC, SEC
from repro.sim.rng import RandomStreams
from repro.workloads import deploy_component_set, generate_component_set


def test_catalog_shape():
    for name, entry in CONTEXT_PARAMS.items():
        assert entry["description"]
        lo, hi = entry["range"]
        assert lo is None or isinstance(lo, float)
        assert hi is None or isinstance(hi, float) or hi is None
        assert isinstance(entry["node_scoped"], bool)
    assert "deadline_miss_rate" in CONTEXT_PARAMS
    assert CONTEXT_PARAMS["deadline_miss_rate"]["range"] == (0.0, 1.0)


def test_scoped_and_param_range():
    assert scoped("deadline_miss_rate") == "deadline_miss_rate"
    assert scoped("deadline_miss_rate", "n0") == "deadline_miss_rate@n0"
    assert param_range("deadline_miss_rate@n0") == (0.0, 1.0)
    assert param_range("not_in_catalog") == (None, None)


def test_percentile_from_buckets():
    bounds = (10, 100, 1000)
    # 90 samples <=10, 9 in (10,100], 1 in (100,1000]
    counts = [90, 9, 1, 0]
    assert percentile_from_buckets(bounds, counts, 0.50) == 10.0
    assert percentile_from_buckets(bounds, counts, 0.95) == 100.0
    assert percentile_from_buckets(bounds, counts, 0.99) == 100.0
    assert percentile_from_buckets(bounds, counts, 1.00) == 1000.0
    # overflow samples report the last finite bound
    assert percentile_from_buckets(bounds, [0, 0, 0, 5], 0.99) == 1000.0
    assert percentile_from_buckets(bounds, [0, 0, 0, 0], 0.99) is None


def _spin_up(seconds=0.5):
    platform = build_platform(seed=11,
                              internal_policy=AlwaysAcceptPolicy())
    platform.start_timer(1 * MSEC)
    rng = RandomStreams(11)
    fleet = generate_component_set(rng, "ctx", 3,
                                   total_utilization=0.5)
    deploy_component_set(platform.drcr, fleet)
    platform.run_for(int(seconds * SEC))
    return platform


def test_telemetry_provider_windows_deltas():
    platform = _spin_up()
    provider = TelemetryContextProvider(platform.telemetry)
    first = provider.collect(platform.now)
    assert first["releases"] > 0
    assert 0.0 <= first["deadline_miss_rate"] <= 1.0
    assert first["active_components"] == 3.0
    # no further simulated time: the second window must be empty
    second = provider.collect(platform.now)
    assert second["releases"] == 0.0
    assert second["deadline_misses"] == 0.0
    platform.run_for(200 * MSEC)
    third = provider.collect(platform.now)
    assert third["releases"] > 0
    # the delta window is much smaller than the cumulative total
    assert third["releases"] < first["releases"]
    platform.shutdown()


def test_telemetry_provider_latency_percentiles():
    platform = _spin_up()
    provider = TelemetryContextProvider(platform.telemetry)
    context = provider.collect(platform.now)
    p50 = context.get("dispatch_latency_p50")
    p99 = context.get("dispatch_latency_p99")
    assert p50 is not None and p99 is not None
    assert p50 <= p99
    assert context["dispatch_latency_mean"] >= 0.0


def test_kernel_provider_node_scoping():
    platform = _spin_up()
    flat = KernelContextProvider(platform.kernel)
    named = KernelContextProvider(platform.kernel, node="n0")
    flat_ctx = flat.collect(platform.now)
    named_ctx = named.collect(platform.now)
    assert "deadline_miss_rate" in flat_ctx
    assert "deadline_miss_rate@n0" in named_ctx
    assert "deadline_miss_rate" not in named_ctx
    assert 0.0 <= flat_ctx["rt_utilization"]
    platform.shutdown()


def test_static_provider_is_a_copy():
    provider = StaticContextProvider({"releases": 1.0})
    snapshot = provider.collect(0)
    snapshot["releases"] = 99.0
    assert provider.collect(0)["releases"] == 1.0
