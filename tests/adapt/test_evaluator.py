"""Evaluator damping: hysteresis, cooldown, latch, conflicts."""

from repro.adapt.evaluator import RuleEvaluator
from repro.adapt.rules import parse_rule_document


def _rules(*rule_dicts):
    return parse_rule_document({"rules": list(rule_dicts)})


def _names(firings):
    return [firing.rule.name for firing in firings]


HIGH = {"deadline_miss_rate": 0.5}
LOW = {"deadline_miss_rate": 0.0}


def test_arming_hysteresis_needs_consecutive_epochs():
    rules = _rules({
        "name": "slow-trigger",
        "when": {"param": "deadline_miss_rate", "op": ">",
                 "value": 0.1, "for_epochs": 3},
        "then": {"action": "reconfigure"},
    })
    evaluator = RuleEvaluator()
    fired_1, sup_1 = evaluator.evaluate(rules, dict(HIGH), 0)
    fired_2, sup_2 = evaluator.evaluate(rules, dict(HIGH), 1)
    assert not fired_1 and not fired_2
    assert sup_1["hysteresis"] == 1 and sup_2["hysteresis"] == 1
    # a false epoch resets the streak
    evaluator.evaluate(rules, dict(LOW), 2)
    fired_3, _ = evaluator.evaluate(rules, dict(HIGH), 3)
    fired_4, _ = evaluator.evaluate(rules, dict(HIGH), 4)
    assert not fired_3 and not fired_4
    fired_5, _ = evaluator.evaluate(rules, dict(HIGH), 5)
    assert _names(fired_5) == ["slow-trigger"]


def test_cooldown_suppresses_by_sim_time():
    rules = _rules({
        "name": "cooled",
        "when": {"param": "deadline_miss_rate", "op": ">",
                 "value": 0.1},
        "then": {"action": "reconfigure"},
        "cooldown_ns": 100,
    })
    evaluator = RuleEvaluator()
    fired, _ = evaluator.evaluate(rules, dict(HIGH), 1_000)
    assert _names(fired) == ["cooled"]
    fired, suppressed = evaluator.evaluate(rules, dict(HIGH), 1_050)
    assert not fired
    assert suppressed["cooldown"] == 1
    fired, _ = evaluator.evaluate(rules, dict(HIGH), 1_100)
    assert _names(fired) == ["cooled"]


def test_clear_predicate_latches_until_released():
    rules = _rules({
        "name": "banded",
        "when": {"param": "deadline_miss_rate", "op": ">",
                 "value": 0.1},
        "clear": {"op": "<=", "value": 0.01},
        "then": {"action": "reconfigure"},
    })
    evaluator = RuleEvaluator()
    fired, _ = evaluator.evaluate(rules, dict(HIGH), 0)
    assert _names(fired) == ["banded"]
    # condition still high: latched, counted as hysteresis suppression
    fired, suppressed = evaluator.evaluate(rules, dict(HIGH), 1)
    assert not fired and suppressed["hysteresis"] == 1
    # the clear condition releases the latch ...
    evaluator.evaluate(rules, dict(LOW), 2)
    # ... so the next breach fires again
    fired, _ = evaluator.evaluate(rules, dict(HIGH), 3)
    assert _names(fired) == ["banded"]


def test_max_firings_exhausts():
    rules = _rules({
        "name": "one-shot",
        "when": {"param": "deadline_miss_rate", "op": ">",
                 "value": 0.1},
        "then": {"action": "reconfigure"},
        "max_firings": 1,
    })
    evaluator = RuleEvaluator()
    fired, _ = evaluator.evaluate(rules, dict(HIGH), 0)
    assert len(fired) == 1
    fired, suppressed = evaluator.evaluate(rules, dict(HIGH), 1)
    assert not fired
    assert suppressed["exhausted"] == 1


def test_conflict_resolution_prefers_lower_priority_number():
    rules = _rules(
        {"name": "lenient", "priority": 20,
         "when": {"param": "deadline_miss_rate", "op": ">",
                  "value": 0.1},
         "then": {"action": "suspend", "component": "CAM"}},
        {"name": "strict", "priority": 5,
         "when": {"param": "deadline_miss_rate", "op": ">",
                  "value": 0.1},
         "then": {"action": "resume", "component": "CAM"}},
    )
    evaluator = RuleEvaluator()
    fired, suppressed = evaluator.evaluate(rules, dict(HIGH), 0)
    assert _names(fired) == ["strict"]
    assert suppressed["conflict"] == 1


def test_max_actions_per_epoch_budget():
    rule_dicts = [
        {"name": "r%d" % index, "priority": index,
         "when": {"param": "deadline_miss_rate", "op": ">",
                  "value": 0.1},
         "then": {"action": "suspend", "component": "C%d" % index}}
        for index in range(4)
    ]
    evaluator = RuleEvaluator(max_actions_per_epoch=2)
    fired, suppressed = evaluator.evaluate(
        _rules(*rule_dicts), dict(HIGH), 0)
    assert _names(fired) == ["r0", "r1"]
    assert suppressed["conflict"] == 2


def test_missing_parameter_is_false_not_error():
    rules = _rules({
        "name": "about-a-ghost",
        "when": {"param": "deadline_miss_rate", "node": "gone",
                 "op": ">", "value": 0.1},
        "then": {"action": "reconfigure"},
    })
    evaluator = RuleEvaluator()
    fired, suppressed = evaluator.evaluate(rules, dict(HIGH), 0)
    assert not fired
    assert not any(suppressed.values())


def test_trend_predicate_over_history():
    rules = _rules({
        "name": "worsening",
        "when": {"param": "deadline_miss_rate", "trend": "rising",
                 "epochs": 3},
        "then": {"action": "reconfigure"},
    })
    evaluator = RuleEvaluator()
    for epoch, rate in enumerate((0.1, 0.2)):
        fired, _ = evaluator.evaluate(
            rules, {"deadline_miss_rate": rate}, epoch)
        assert not fired  # not enough history yet
    fired, _ = evaluator.evaluate(
        rules, {"deadline_miss_rate": 0.3}, 2)
    assert _names(fired) == ["worsening"]
    # a plateau breaks strict monotonicity
    fired, _ = evaluator.evaluate(
        rules, {"deadline_miss_rate": 0.3}, 3)
    assert not fired


def test_state_survives_provider_reload():
    rules = _rules({
        "name": "sticky",
        "when": {"param": "deadline_miss_rate", "op": ">",
                 "value": 0.1},
        "then": {"action": "reconfigure"},
        "cooldown_ns": 1_000,
    })
    evaluator = RuleEvaluator()
    evaluator.evaluate(rules, dict(HIGH), 0)
    # the same rule re-parsed (hot reload) keeps its cooldown clock
    reloaded = _rules(rules[0].as_dict())
    fired, suppressed = evaluator.evaluate(reloaded, dict(HIGH), 500)
    assert not fired
    assert suppressed["cooldown"] == 1
