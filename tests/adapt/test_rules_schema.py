"""Schema validation round-trips and rule providers."""

import json

import pytest

from repro.adapt.rules import (
    JsonRuleProvider,
    RuleSchemaError,
    StaticRuleProvider,
    load_rule_file,
    parse_rule_document,
    parse_rule_document_tolerant,
)
from repro.workloads import RULE_SET_KINDS, generate_rule_set


def _doc(**overrides):
    rule = {
        "name": "guard",
        "priority": 5,
        "when": {"param": "deadline_miss_rate", "op": ">",
                 "value": 0.05, "for_epochs": 2},
        "clear": {"op": "<=", "value": 0.01},
        "then": [{"action": "shed_lowest_priority", "count": 1}],
        "cooldown_ns": 100_000_000,
    }
    rule.update(overrides)
    rule = {key: value for key, value in rule.items()
            if value is not None}
    return {"schema_version": 1, "rules": [rule]}


def test_round_trip_through_as_dict():
    rules = parse_rule_document(_doc())
    assert len(rules) == 1
    rule = rules[0]
    again = parse_rule_document({"rules": [rule.as_dict()]})[0]
    assert again.as_dict() == rule.as_dict()
    assert again.priority == 5
    assert again.cooldown_ns == 100_000_000
    assert again.when.for_epochs == 2
    # clear inherits the when-predicate's parameter
    assert again.clear.param == "deadline_miss_rate"


@pytest.mark.parametrize("kind", RULE_SET_KINDS)
def test_generated_rule_sets_validate(kind):
    rules = parse_rule_document(generate_rule_set(kind))
    assert rules
    assert all(rule.actions for rule in rules)


def test_every_problem_is_reported_at_once():
    document = _doc(when={"param": "bogus", "op": "~", "value": "x"},
                    then=[{"action": "frobnicate"}],
                    cooldown_ns=-1)
    with pytest.raises(RuleSchemaError) as excinfo:
        parse_rule_document(document)
    text = str(excinfo.value)
    assert "unknown context parameter" in text
    assert "unknown action" in text
    assert "cooldown_ns" in text


def test_tolerant_parse_keeps_valid_siblings():
    document = {"rules": [
        {"name": "bad", "when": {"param": "nope", "op": ">",
                                 "value": 1},
         "then": [{"action": "reconfigure"}]},
        _doc()["rules"][0],
    ]}
    rules, problems = parse_rule_document_tolerant(document)
    assert [rule.name for rule in rules] == ["guard"]
    assert problems


def test_duplicate_names_rejected():
    document = {"rules": [_doc()["rules"][0], _doc()["rules"][0]]}
    with pytest.raises(RuleSchemaError, match="duplicate rule name"):
        parse_rule_document(document)


def test_node_scope_only_on_node_scoped_params():
    with pytest.raises(RuleSchemaError, match="not node-scoped"):
        parse_rule_document(_doc(
            when={"param": "alive_nodes", "op": "<", "value": 2,
                  "node": "n0"},
            clear=None))
    rules = parse_rule_document(_doc(
        when={"param": "deadline_miss_rate", "op": ">", "value": 0.1,
              "node": "n0"},
        clear=None))
    assert rules[0].when.node == "n0"


def test_trend_predicate_shape():
    rules = parse_rule_document(_doc(
        when={"param": "dispatch_latency_p95", "trend": "rising",
              "epochs": 4},
        clear=None))
    when = rules[0].when
    assert when.kind == "trend"
    assert when.epochs == 4
    with pytest.raises(RuleSchemaError, match="excludes"):
        parse_rule_document(_doc(
            when={"param": "dispatch_latency_p95", "trend": "rising",
                  "op": ">", "value": 1},
            clear=None))


def test_json_rule_provider_from_dict_text_and_file(tmp_path):
    document = generate_rule_set("latency-guard")
    from_dict = JsonRuleProvider(document)
    from_text = JsonRuleProvider(json.dumps(document))
    path = tmp_path / "rules.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    from_file = JsonRuleProvider(str(path))
    names = [rule.name for rule in from_dict.rules()]
    assert [r.name for r in from_text.rules()] == names
    assert [r.name for r in from_file.rules()] == names
    assert load_rule_file(str(path))[0].name == names[0]


def test_json_rule_provider_rejects_bad_source(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(RuleSchemaError, match="invalid JSON"):
        JsonRuleProvider(str(path))
    with pytest.raises(RuleSchemaError):
        JsonRuleProvider({"rules": "nope"})


def test_static_provider_returns_copies():
    rules = parse_rule_document(_doc())
    provider = StaticRuleProvider(rules, name="inline")
    listed = provider.rules()
    listed.clear()
    assert provider.rules() == rules
