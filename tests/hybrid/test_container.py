"""Tests for the hybrid split container: activation, command path,
custom implementations, the non-blocking discipline."""

import pytest

from repro.core.component import DRComComponent, LifecycleToken
from repro.core.descriptor import ComponentDescriptor
from repro.core.ports import PortBinding
from repro.hybrid.container import HybridContainer
from repro.hybrid.implementation import (
    ImplementationRegistry,
    RTImplementation,
    SyntheticImplementation,
)
from repro.hybrid.protocol import CommandKind
from repro.rtos.task import TaskState
from repro.sim.engine import MSEC

from conftest import make_descriptor_xml


@pytest.fixture
def token():
    return LifecycleToken("test")


def make_component(token, name="COMP00", **kwargs):
    xml = make_descriptor_xml(name, **kwargs)
    descriptor = ComponentDescriptor.from_xml(xml)
    return DRComComponent(descriptor, None, token)


def activate(kernel, component, bindings=(), registry=None):
    container = HybridContainer(component, kernel,
                                implementation_registry=registry)
    container.activate(list(bindings))
    return container


class TestActivation:
    def test_creates_hybrid_task(self, sim, kernel, token):
        kernel.start_timer(1 * MSEC)
        component = make_component(token, "COMP00", cpuusage=0.05)
        container = activate(kernel, component)
        assert kernel.exists("COMP00")
        assert container.task.hybrid is True
        sim.run_for(10 * MSEC)
        assert container.task.stats.completions >= 9

    def test_outport_objects_created(self, sim, kernel, token):
        component = make_component(
            token, "PROV00", cpuusage=0.05,
            outports=[("DATA00", "RTAI.SHM", "Integer", 4),
                      ("EVNT00", "RTAI.Mailbox", "Byte", 8)])
        kernel.start_timer(1 * MSEC)
        activate(kernel, component)
        assert kernel.lookup("DATA00").size == 4
        assert kernel.lookup("EVNT00").capacity == 8

    def test_synthetic_impl_writes_outports(self, sim, kernel, token):
        component = make_component(
            token, "PROV00", cpuusage=0.05,
            outports=[("DATA00", "RTAI.SHM", "Integer", 4)])
        kernel.start_timer(1 * MSEC)
        activate(kernel, component)
        sim.run_for(5 * MSEC)
        segment = kernel.lookup("DATA00")
        assert segment.read_at(0) > 0
        assert segment.last_writer == "PROV00"

    def test_inport_binding_attaches_provider_object(self, sim, kernel,
                                                     token):
        provider = make_component(
            token, "PROV00", cpuusage=0.05,
            outports=[("DATA00", "RTAI.SHM", "Integer", 4)])
        consumer = make_component(
            token, "CONS00", cpuusage=0.02, frequency=500, priority=3,
            inports=[("DATA00", "RTAI.SHM", "Integer", 4)])
        kernel.start_timer(1 * MSEC)
        activate(kernel, provider)
        binding = PortBinding(
            "CONS00", consumer.descriptor.inports[0],
            "PROV00", provider.descriptor.outports[0],
            kernel_object="DATA00")
        container = activate(kernel, consumer, [binding])
        sim.run_for(5 * MSEC)
        assert container.ctx.read_inport("DATA00")[0] > 0

    def test_deactivate_tears_everything_down(self, sim, kernel, token):
        component = make_component(
            token, "PROV00", cpuusage=0.05,
            outports=[("DATA00", "RTAI.SHM", "Integer", 4)])
        kernel.start_timer(1 * MSEC)
        container = activate(kernel, component)
        sim.run_for(5 * MSEC)
        container.deactivate()
        assert not kernel.exists("PROV00")
        assert not kernel.exists("DATA00")
        container.deactivate()  # idempotent

    def test_init_uninit_hooks_called(self, sim, kernel, token):
        calls = []

        class Hooked(RTImplementation):
            def init(self, ctx):
                calls.append("init")

            def uninit(self, ctx):
                calls.append("uninit")

        registry = ImplementationRegistry()
        registry.register("test.COMP00.Impl", Hooked)
        kernel.start_timer(1 * MSEC)
        component = make_component(token, "COMP00", cpuusage=0.05)
        container = activate(kernel, component, registry=registry)
        assert calls == ["init"]
        container.deactivate()
        assert calls == ["init", "uninit"]

    def test_aperiodic_component_release(self, sim, kernel, token):
        component = make_component(token, "EVT000",
                                   task_type="aperiodic", cpuusage=0.01)
        container = activate(kernel, component)
        sim.run_for(1 * MSEC)
        assert container.task.stats.activations == 1
        container.release()
        sim.run_for(1 * MSEC)
        assert container.task.stats.activations == 2

    def test_release_on_periodic_rejected(self, sim, kernel, token):
        kernel.start_timer(1 * MSEC)
        component = make_component(token, "COMP00", cpuusage=0.05)
        container = activate(kernel, component)
        with pytest.raises(TypeError):
            container.release()


class TestCommandPath:
    def _running_container(self, sim, kernel, token, properties=()):
        kernel.start_timer(1 * MSEC)
        component = make_component(token, "COMP00", cpuusage=0.05,
                                   properties=properties)
        container = activate(kernel, component)
        sim.run_for(3 * MSEC)
        return container

    def test_set_property_round_trip(self, sim, kernel, token):
        container = self._running_container(
            sim, kernel, token, properties=[("gain", "Integer", "1")])
        assert container.get_property("gain") == 1
        container.set_property("gain", 7)
        assert container.get_property("gain") == 1  # not yet applied
        sim.run_for(2 * MSEC)  # next job polls the mailbox
        assert container.get_property("gain") == 7

    def test_ping_reply_arrives_after_next_job(self, sim, kernel,
                                               token):
        container = self._running_container(sim, kernel, token)
        container.nrt_part.request_ping()
        assert container.nrt_part.last_reply(CommandKind.PING) is None
        sim.run_for(2 * MSEC)
        reply = container.nrt_part.last_reply(CommandKind.PING)
        assert reply is not None
        assert reply.value["job_index"] >= 1

    def test_graceful_suspend_at_job_boundary(self, sim, kernel, token):
        container = self._running_container(sim, kernel, token)
        container.nrt_part.suspend(graceful=True)
        assert container.task.state is not TaskState.SUSPENDED
        sim.run_for(2 * MSEC)
        assert container.task.state is TaskState.SUSPENDED
        container.nrt_part.resume()
        sim.run_for(2 * MSEC)
        assert container.task.state is not TaskState.SUSPENDED

    def test_immediate_suspend(self, sim, kernel, token):
        container = self._running_container(sim, kernel, token)
        container.suspend()
        assert container.task.suspended
        container.resume()
        assert not container.task.suspended

    def test_get_status_shape(self, sim, kernel, token):
        container = self._running_container(sim, kernel, token)
        status = container.get_status()
        assert status["component"] == "COMP00"
        assert status["state"] == "waiting"
        assert status["job_index"] >= 1
        assert "bridge" in status and "stats" in status

    def test_custom_command_hook(self, sim, kernel, token):
        class WithCommand(RTImplementation):
            def on_command(self, ctx, command):
                if command.kind is CommandKind.PING:
                    return "custom-pong"
                return None

        registry = ImplementationRegistry()
        registry.register("test.COMP00.Impl", WithCommand)
        kernel.start_timer(1 * MSEC)
        component = make_component(token, "COMP00", cpuusage=0.05)
        container = activate(kernel, component, registry=registry)
        sim.run_for(2 * MSEC)
        container.nrt_part.request_ping()
        sim.run_for(2 * MSEC)
        reply = container.nrt_part.last_reply(CommandKind.PING)
        assert reply.value == "custom-pong"

    def test_rt_side_never_blocks_on_absent_management(self, sim,
                                                       kernel, token):
        # No commands are ever sent: the task must keep its cadence.
        container = self._running_container(sim, kernel, token)
        sim.run_for(100 * MSEC)
        assert container.task.stats.deadline_misses == 0
        assert container.task.stats.completions >= 100


class TestImplementationRegistry:
    def test_unknown_bincode_falls_back_to_synthetic(self):
        registry = ImplementationRegistry()
        impl = registry.create("unknown.Bincode")
        assert isinstance(impl, SyntheticImplementation)

    def test_strict_registry_raises(self):
        from repro.core.errors import DRComError
        registry = ImplementationRegistry(strict=True)
        with pytest.raises(DRComError):
            registry.create("unknown.Bincode")

    def test_registered_factory_used(self):
        class Custom(RTImplementation):
            pass

        registry = ImplementationRegistry()
        registry.register("x.Custom", Custom)
        assert "x.Custom" in registry
        assert isinstance(registry.create("x.Custom"), Custom)

    def test_unregister(self):
        registry = ImplementationRegistry()
        registry.register("x.Custom", SyntheticImplementation)
        registry.unregister("x.Custom")
        assert "x.Custom" not in registry
