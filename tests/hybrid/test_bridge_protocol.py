"""Tests for the command bridge and the asynchronous protocol
(paper section 3.2)."""

from repro.hybrid.bridge import CommandBridge
from repro.hybrid.protocol import Command, CommandKind, Reply


class TestProtocol:
    def test_command_sequence_numbers_increase(self):
        first = Command(CommandKind.PING)
        second = Command(CommandKind.PING)
        assert second.seq > first.seq

    def test_reply_copies_command_identity(self):
        command = Command(CommandKind.GET_PROPERTY, "gain")
        reply = Reply(command, 5, job_index=3, time_ns=1000)
        assert reply.seq == command.seq
        assert reply.kind is CommandKind.GET_PROPERTY
        assert reply.name == "gain"
        assert reply.value == 5
        assert reply.job_index == 3


class TestCommandBridge:
    def test_mailboxes_allocated_with_unique_names(self, kernel):
        a = CommandBridge(kernel, "COMPA")
        b = CommandBridge(kernel, "COMPB")
        names = {a.command_mailbox.name, a.status_mailbox.name,
                 b.command_mailbox.name, b.status_mailbox.name}
        assert len(names) == 4

    def test_send_command_queues(self, kernel):
        bridge = CommandBridge(kernel, "COMP")
        command = bridge.set_property("gain", 5)
        assert command is not None
        assert len(bridge.command_mailbox) == 1
        assert bridge.commands_sent == 1

    def test_full_mailbox_drops_and_counts(self, kernel):
        bridge = CommandBridge(kernel, "COMP", capacity=2)
        assert bridge.ping() is not None
        assert bridge.ping() is not None
        assert bridge.ping() is None  # full: dropped, never blocks
        assert bridge.commands_dropped == 1

    def test_drain_replies(self, kernel):
        bridge = CommandBridge(kernel, "COMP")
        command = Command(CommandKind.PING)
        bridge.status_mailbox.send_external(
            Reply(command, "pong", 1, 10))
        replies = bridge.drain_replies()
        assert len(replies) == 1
        assert replies[0].value == "pong"
        assert bridge.drain_replies() == []
        assert bridge.replies_received == 1

    def test_stats(self, kernel):
        bridge = CommandBridge(kernel, "COMP")
        bridge.ping()
        stats = bridge.stats()
        assert stats["commands_sent"] == 1
        assert stats["commands_pending"] == 1
        assert stats["replies_pending"] == 0

    def test_close_frees_mailboxes(self, kernel):
        bridge = CommandBridge(kernel, "COMP")
        cmd_name = bridge.command_mailbox.name
        bridge.close()
        assert not kernel.exists(cmd_name)
        bridge.close()  # idempotent
