"""Tests for the simulated inter-node message transport."""

import pytest

from repro.cluster.transport import LinkSpec, MessageTransport
from repro.sim.engine import MSEC, USEC, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=99)


def collector(received):
    return received.append


class TestLinkSpec:
    def test_defaults(self):
        link = LinkSpec()
        assert link.latency_ns == 500 * USEC
        assert link.jitter_ns == 0
        assert link.drop_probability == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkSpec(latency_ns=-1)
        with pytest.raises(ValueError):
            LinkSpec(latency_ns=100, jitter_ns=200)
        with pytest.raises(ValueError):
            LinkSpec(drop_probability=1.0)


class TestDelivery:
    def test_delivered_one_link_latency_later(self, sim):
        transport = MessageTransport(
            sim, default_link=LinkSpec(latency_ns=2 * MSEC))
        received = []
        transport.register("b", lambda m: received.append(
            (sim.now, m.kind, m.payload)))
        transport.send("a", "b", "ping", {"n": 1})
        sim.run_for(10 * MSEC)
        assert received == [(2 * MSEC, "ping", {"n": 1})]

    def test_per_link_override_beats_default(self, sim):
        transport = MessageTransport(
            sim, default_link=LinkSpec(latency_ns=1 * MSEC))
        transport.connect("a", "b", LinkSpec(latency_ns=5 * MSEC))
        times = []
        transport.register("b", lambda m: times.append(sim.now))
        transport.send("a", "b", "ping")
        sim.run_for(10 * MSEC)
        assert times == [5 * MSEC]

    def test_jitter_bounded_and_deterministic(self):
        def run(seed):
            sim = Simulator(seed=seed)
            transport = MessageTransport(sim, default_link=LinkSpec(
                latency_ns=1 * MSEC, jitter_ns=500 * USEC))
            times = []
            transport.register("b", lambda m: times.append(sim.now))
            for _ in range(20):
                transport.send("a", "b", "ping")
            sim.run_for(10 * MSEC)
            return times

        times = run(5)
        assert all(500 * USEC <= t <= 1500 * USEC for t in times)
        assert len(set(times)) > 1  # jitter actually varies
        assert times == run(5)      # ...deterministically

    def test_unregistered_destination_drops(self, sim):
        transport = MessageTransport(sim)
        transport.send("a", "ghost", "ping")
        sim.run_for(10 * MSEC)
        metrics = sim.telemetry.registry("cluster")
        assert metrics.get("messages_dropped_total").value == 1
        assert metrics.get("messages_delivered_total").value == 0

    def test_drop_probability_loses_messages(self, sim):
        transport = MessageTransport(sim, default_link=LinkSpec(
            drop_probability=0.5))
        received = []
        transport.register("b", collector(received))
        for _ in range(100):
            transport.send("a", "b", "ping")
        sim.run_for(10 * MSEC)
        metrics = sim.telemetry.registry("cluster")
        assert 0 < len(received) < 100
        assert metrics.get("messages_dropped_total").value \
            == 100 - len(received)

    def test_latency_histograms_aggregate_and_per_link(self, sim):
        transport = MessageTransport(
            sim, default_link=LinkSpec(latency_ns=2 * MSEC))
        transport.register("b", lambda m: None)
        transport.send("a", "b", "ping")
        sim.run_for(10 * MSEC)
        metrics = sim.telemetry.registry("cluster")
        assert metrics.get("link_latency_ns").count == 1
        assert metrics.get("link_latency_ns.a_to_b").count == 1


class TestPartition:
    def test_blocks_both_directions(self, sim):
        transport = MessageTransport(sim)
        received = []
        transport.register("a", collector(received))
        transport.register("b", collector(received))
        transport.partition("a", "b")
        transport.send("a", "b", "ping")
        transport.send("b", "a", "ping")
        sim.run_for(10 * MSEC)
        assert received == []
        metrics = sim.telemetry.registry("cluster")
        assert metrics.get("messages_partitioned_total").value == 2

    def test_kills_in_flight_messages(self, sim):
        transport = MessageTransport(
            sim, default_link=LinkSpec(latency_ns=2 * MSEC))
        received = []
        transport.register("b", collector(received))
        transport.send("a", "b", "ping")
        sim.schedule(1 * MSEC, transport.partition, "a", "b")
        sim.run_for(10 * MSEC)
        assert received == []

    def test_heal_restores_traffic(self, sim):
        transport = MessageTransport(sim)
        received = []
        transport.register("b", collector(received))
        transport.partition("a", "b")
        transport.send("a", "b", "lost")
        transport.heal("a", "b")
        transport.send("a", "b", "found")
        sim.run_for(10 * MSEC)
        assert [m.kind for m in received] == ["found"]

    def test_third_parties_unaffected(self, sim):
        transport = MessageTransport(sim)
        received = []
        transport.register("c", collector(received))
        transport.partition("a", "b")
        transport.send("a", "c", "ping")
        sim.run_for(10 * MSEC)
        assert len(received) == 1
