"""Tests for the cluster management plane: deploy, migrate, manage,
fail over."""

import pytest

from repro.cluster import Cluster, ClusterError, LinkSpec
from repro.core import ComponentState
from repro.sim.engine import MSEC

from conftest import make_descriptor_xml

PORT = ("WIRE00", "RTAI.SHM", "Integer", 2)


@pytest.fixture
def cluster():
    c = Cluster(("node0", "node1", "node2"), seed=23,
                heartbeat_interval_ns=10 * MSEC)
    yield c
    c.shutdown()


def tuned_xml(name="TUNED0", cpuusage=0.1):
    return make_descriptor_xml(
        name, cpuusage=cpuusage,
        properties=[("gain", "Integer", "1")])


class TestDeploy:
    def test_placement_spreads_the_fleet(self, cluster):
        for i in range(6):
            cluster.deploy(make_descriptor_xml(
                "COMP%02d" % i, cpuusage=0.1, priority=2 + i))
        cluster.run_for(50 * MSEC)
        homes = set(cluster.deployments.values())
        assert homes == {"node0", "node1", "node2"}
        for name, home in cluster.deployments.items():
            node = cluster.node(home)
            assert node.drcr.component_state(name) \
                is ComponentState.ACTIVE

    def test_explicit_node_and_duplicate_rejected(self, cluster):
        cluster.deploy(tuned_xml(), node="node2")
        cluster.run_for(20 * MSEC)
        assert cluster.node("node2").drcr.component_state("TUNED0") \
            is ComponentState.ACTIVE
        with pytest.raises(ClusterError):
            cluster.deploy(tuned_xml())

    def test_unknown_node_rejected(self, cluster):
        with pytest.raises(ClusterError):
            cluster.deploy(tuned_xml(), node="nodeX")

    def test_wired_application_co_locates(self, cluster):
        prov = make_descriptor_xml("PROV00", cpuusage=0.2,
                                   outports=[PORT])
        cons = make_descriptor_xml("CONS00", cpuusage=0.1,
                                   frequency=250, priority=3,
                                   inports=[PORT])
        target = cluster.deploy_application("pipe", [prov, cons])
        cluster.run_for(50 * MSEC)
        node = cluster.node(target)
        assert node.drcr.component_state("PROV00") \
            is ComponentState.ACTIVE
        assert node.drcr.component_state("CONS00") \
            is ComponentState.ACTIVE
        assert node.drcr.applications() == {
            "pipe": ["PROV00", "CONS00"]}

    def test_undeploy(self, cluster):
        cluster.deploy(tuned_xml(), node="node0")
        cluster.run_for(20 * MSEC)
        cluster.undeploy("TUNED0")
        cluster.run_for(20 * MSEC)
        assert "TUNED0" not in cluster.node("node0").drcr.registry
        assert "TUNED0" not in cluster.deployments


class TestRemoteManagement:
    def test_set_property_routes_through_section_2_4(self, cluster):
        cluster.deploy(tuned_xml(), node="node1")
        cluster.run_for(20 * MSEC)
        request = cluster.manage("TUNED0", "set_property", "gain", 9)
        cluster.run_for(20 * MSEC)
        reply = cluster.mgmt_replies[request]
        assert reply["ok"], reply
        component = cluster.node("node1").drcr.component("TUNED0")
        assert component.container.get_property("gain") == 9

    def test_get_status_round_trip(self, cluster):
        cluster.deploy(tuned_xml(), node="node0")
        cluster.run_for(20 * MSEC)
        request = cluster.manage("TUNED0", "get_status")
        cluster.run_for(20 * MSEC)
        reply = cluster.mgmt_replies[request]
        assert reply["ok"]
        assert reply["result"]["state"] == "active"

    def test_suspend_resume_remote(self, cluster):
        cluster.deploy(tuned_xml(), node="node0")
        cluster.run_for(20 * MSEC)
        cluster.manage("TUNED0", "suspend")
        cluster.run_for(20 * MSEC)
        drcr = cluster.node("node0").drcr
        assert drcr.component_state("TUNED0") \
            is ComponentState.SUSPENDED
        cluster.manage("TUNED0", "resume")
        cluster.run_for(20 * MSEC)
        assert drcr.component_state("TUNED0") \
            is ComponentState.ACTIVE

    def test_bad_op_reports_error(self, cluster):
        cluster.deploy(tuned_xml(), node="node0")
        cluster.run_for(20 * MSEC)
        request = cluster.manage("TUNED0", "get_property", "missing")
        cluster.run_for(20 * MSEC)
        assert request in cluster.mgmt_replies


class TestMigration:
    def test_state_travels_with_the_component(self, cluster):
        cluster.deploy(tuned_xml(), node="node0")
        cluster.run_for(20 * MSEC)
        cluster.manage("TUNED0", "set_property", "gain", 42)
        cluster.run_for(20 * MSEC)
        migration_id = cluster.migrate("TUNED0", dst="node2")
        cluster.run_for(50 * MSEC)
        status = cluster.migration(migration_id)
        assert status["done"] and status["outcome"] == "restored"
        assert cluster.deployments["TUNED0"] == "node2"
        assert "TUNED0" not in cluster.node("node0").drcr.registry
        component = cluster.node("node2").drcr.component("TUNED0")
        assert component.state is ComponentState.ACTIVE
        assert component.container.get_property("gain") == 42

    def test_migration_latency_recorded(self, cluster):
        cluster.deploy(tuned_xml(), node="node0")
        cluster.run_for(20 * MSEC)
        cluster.migrate("TUNED0", dst="node1")
        cluster.run_for(50 * MSEC)
        metrics = cluster.sim.telemetry.registry("cluster")
        assert metrics.get("migrations_total").value == 1
        assert metrics.get("migration_latency_ns").count == 1

    def test_admission_re_decided_on_target(self):
        # Target nodes are full: migration lands UNSATISFIED, not
        # force-admitted -- the snapshot never bypasses admission.
        cluster = Cluster(("node0", "node1"), seed=29)
        try:
            cluster.deploy(make_descriptor_xml(
                "BIG000", cpuusage=0.9), node="node1")
            cluster.deploy(make_descriptor_xml(
                "MOVER0", cpuusage=0.5, priority=3), node="node0")
            cluster.run_for(30 * MSEC)
            cluster.migrate("MOVER0", dst="node1")
            cluster.run_for(50 * MSEC)
            assert cluster.node("node1").drcr \
                .component_state("MOVER0") \
                is ComponentState.UNSATISFIED
        finally:
            cluster.shutdown()

    def test_lossy_link_retries_until_delivered(self):
        cluster = Cluster(("node0", "node1"), seed=31,
                          link=LinkSpec(drop_probability=0.4),
                          migration_timeout_ns=5 * MSEC)
        try:
            cluster.deploy(tuned_xml(), node="node0")
            cluster.run_for(30 * MSEC)
            migration_id = cluster.migrate("TUNED0", dst="node1")
            cluster.run_for(400 * MSEC)
            status = cluster.migration(migration_id)
            # Exactly-once outcome despite the lossy wire: either the
            # wire eventually carried it, or the coordinator's
            # fallback placed it from the ledger.
            holders = [node.name for node in cluster.nodes.values()
                       if "TUNED0" in node.drcr.registry]
            assert len(holders) == 1
            assert status["done"]
        finally:
            cluster.shutdown()

    def test_unknown_component_rejected(self, cluster):
        with pytest.raises(ClusterError):
            cluster.migrate("GHOST0")


class TestFailover:
    def test_components_rehomed_in_one_batch_round(self, cluster):
        for i in range(4):
            cluster.deploy(make_descriptor_xml(
                "COMP%02d" % i, cpuusage=0.1, priority=2 + i),
                node="node0")
        cluster.run_for(50 * MSEC)
        reconf_before = {
            name: node.drcr.reconfigurations
            for name, node in cluster.nodes.items()
            if hasattr(node.drcr, "reconfigurations")}
        cluster.crash_node("node0")
        cluster.run_for(150 * MSEC)
        assert cluster.membership.is_dead("node0")
        assert len(cluster.failovers) == 1
        moved = cluster.failovers[0]["moved"]
        assert sorted(moved) == ["COMP00", "COMP01", "COMP02",
                                 "COMP03"]
        for name, home in moved.items():
            assert home in ("node1", "node2")
            assert cluster.node(home).drcr.component_state(name) \
                is ComponentState.ACTIVE
        assert reconf_before is not None  # shape guard only

    def test_wired_application_fails_over_together(self, cluster):
        prov = make_descriptor_xml("PROV00", cpuusage=0.2,
                                   outports=[PORT])
        cons = make_descriptor_xml("CONS00", cpuusage=0.1,
                                   frequency=250, priority=3,
                                   inports=[PORT])
        home = cluster.deploy_application("pipe", [prov, cons])
        cluster.run_for(50 * MSEC)
        cluster.crash_node(home)
        cluster.run_for(150 * MSEC)
        moved = cluster.failovers[0]["moved"]
        # Co-location preserved: the wired pair lands on ONE node and
        # both members re-resolve to ACTIVE.
        assert len(set(moved.values())) == 1
        target = cluster.node(moved["PROV00"])
        assert target.drcr.component_state("PROV00") \
            is ComponentState.ACTIVE
        assert target.drcr.component_state("CONS00") \
            is ComponentState.ACTIVE
        assert target.drcr.applications()["pipe"] == [
            "PROV00", "CONS00"]

    def test_live_properties_survive_failover(self, cluster):
        cluster.deploy(tuned_xml(), node="node1")
        cluster.run_for(30 * MSEC)
        cluster.manage("TUNED0", "set_property", "gain", 13)
        # Let the write land AND a heartbeat replicate it.
        cluster.run_for(40 * MSEC)
        cluster.crash_node("node1")
        cluster.run_for(150 * MSEC)
        home = cluster.deployments["TUNED0"]
        assert home != "node1"
        component = cluster.node(home).drcr.component("TUNED0")
        assert component.state is ComponentState.ACTIVE
        assert component.container.get_property("gain") == 13
