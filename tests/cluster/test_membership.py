"""Tests for SWIM membership and failure detection."""

import pytest

from repro.cluster import Cluster, LinkSpec
from repro.cluster.node import ClusterNode
from repro.sim.engine import MSEC

from conftest import make_descriptor_xml


@pytest.fixture
def cluster():
    c = Cluster(("node0", "node1", "node2"), seed=17,
                heartbeat_interval_ns=10 * MSEC, miss_limit=3)
    yield c
    c.shutdown()


class TestHealthy:
    def test_no_false_positives(self, cluster):
        cluster.run_for(500 * MSEC)
        assert cluster.membership.declared_dead == set()
        assert sorted(cluster.membership.members()) == [
            "node0", "node1", "node2"]

    def test_heartbeats_flow(self, cluster):
        cluster.run_for(100 * MSEC)
        metrics = cluster.sim.telemetry.registry("cluster")
        assert metrics.get("heartbeats_sent_total").value > 0
        assert metrics.get("heartbeats_received_total").value > 0
        assert metrics.get("alive_nodes").value == 3

    def test_replicas_follow_deployments(self, cluster):
        cluster.deploy(make_descriptor_xml("COMP00", cpuusage=0.1),
                       node="node1")
        cluster.run_for(50 * MSEC)
        assert cluster.deployments["COMP00"] == "node1"
        assert cluster.catalog["COMP00"]["name"] == "COMP00"


class TestDetection:
    def test_crashed_node_declared_dead(self, cluster):
        cluster.run_for(50 * MSEC)
        cluster.crash_node("node1")
        cluster.run_for(100 * MSEC)
        assert cluster.membership.is_dead("node1")
        metrics = cluster.sim.telemetry.registry("cluster")
        assert metrics.get("nodes_declared_dead_total").value == 1
        assert metrics.get("alive_nodes").value == 2

    def test_detection_latency_bounded(self, cluster):
        cluster.run_for(50 * MSEC)
        crash_at = cluster.sim.now
        cluster.crash_node("node2")
        deadline = cluster.membership.deadline_ns
        interval = cluster.membership.heartbeat_interval_ns
        # Declared within the staleness deadline plus two beat/latency
        # grace intervals, never sooner than the deadline itself.
        while not cluster.membership.is_dead("node2") \
                and cluster.sim.now < crash_at + deadline \
                + 3 * interval:
            cluster.run_for(interval)
        assert cluster.membership.is_dead("node2")
        detect_ns = cluster.sim.now - crash_at
        assert detect_ns >= deadline
        assert detect_ns <= deadline + 3 * interval

    def test_last_survivor_is_not_declared_dead(self, cluster):
        cluster.run_for(50 * MSEC)
        cluster.crash_node("node0")
        cluster.crash_node("node1")
        cluster.run_for(300 * MSEC)
        # With no peer left to hear it, node2 must not be declared
        # dead by mere silence.
        assert not cluster.membership.is_dead("node2")


class TestPartitionAndFencing:
    def test_isolated_node_declared_dead_then_fenced_on_heal(
            self, cluster):
        cluster.deploy(make_descriptor_xml("COMP00", cpuusage=0.1),
                       node="node2")
        cluster.run_for(50 * MSEC)
        # Fully isolate node2 from both peers.
        cluster.transport.partition("node2", "node0")
        cluster.transport.partition("node2", "node1")
        cluster.run_for(100 * MSEC)
        assert cluster.membership.is_dead("node2")
        # Its component was failed over to a majority-side node.
        home = cluster.deployments["COMP00"]
        assert home in ("node0", "node1")
        # Heal: the returnee is heard again, and must be fenced --
        # told to drop everything it still runs.
        cluster.transport.heal("node2", "node0")
        cluster.transport.heal("node2", "node1")
        cluster.run_for(100 * MSEC)
        metrics = cluster.sim.telemetry.registry("cluster")
        assert metrics.get("nodes_fenced_total").value == 1
        assert len(cluster.node("node2").drcr.registry) == 0
        # Exactly one copy remains, on the majority side.
        holders = [n.name for n in cluster.nodes.values()
                   if n.alive and "COMP00" in n.drcr.registry]
        assert holders == [home]

    def test_readmit_restores_membership(self, cluster):
        cluster.run_for(50 * MSEC)
        cluster.transport.partition("node2", "node0")
        cluster.transport.partition("node2", "node1")
        cluster.run_for(100 * MSEC)
        assert cluster.membership.is_dead("node2")
        cluster.transport.heal("node2", "node0")
        cluster.transport.heal("node2", "node1")
        cluster.run_for(50 * MSEC)
        cluster.membership.readmit("node2")
        cluster.run_for(100 * MSEC)
        assert not cluster.membership.is_dead("node2")
        assert "node2" in cluster.membership.members()

    def test_fence_retries_until_acked_over_lossy_link(self):
        """Regression: fencing used to be one fire-and-forget message
        over the lossy transport -- a false positive that missed it
        kept running stale components forever.  It must now retry
        under the backoff policy until the undeploy-all ack lands."""
        cluster = Cluster(("node0", "node1", "node2"), seed=1,
                          heartbeat_interval_ns=10 * MSEC,
                          miss_limit=3)
        try:
            cluster.deploy(make_descriptor_xml(
                "COMP00", cpuusage=0.1), node="node2")
            cluster.run_for(50 * MSEC)
            cluster.transport.partition("node2", "node0")
            cluster.transport.partition("node2", "node1")
            cluster.run_for(100 * MSEC)
            assert cluster.membership.is_dead("node2")
            # The returnee comes back behind a very lossy fence path.
            cluster.transport.set_link(
                "control", "node2", LinkSpec(drop_probability=0.8))
            cluster.transport.heal("node2", "node0")
            cluster.transport.heal("node2", "node1")
            cluster.run_for(600 * MSEC)
            metrics = cluster.sim.telemetry.registry("cluster")
            # With this seed the first sends are eaten by the drop
            # gate: only the retry chain gets the fence through.
            assert metrics.get("fence_attempts_total").value >= 2
            assert cluster.membership.fence_acked("node2")
            assert len(cluster.node("node2").drcr.registry) == 0
            assert metrics.get("nodes_fenced_total").value == 1
        finally:
            cluster.shutdown()


class TestRestartEpoch:
    def test_stop_start_leaves_one_beat_chain(self, cluster):
        """Regression: stop() then start() before the pending tick
        fired used to leave two live beat chains (the no-op guard only
        checked ``_started``, not which chain scheduled the tick).
        The epoch token kills the stale chain."""
        cluster.run_for(50 * MSEC)
        cluster.membership.stop()
        cluster.membership.start()  # pending tick still queued
        metrics = cluster.sim.telemetry.registry("cluster")
        before = metrics.get("gossip_rounds_total").value
        cluster.run_for(100 * MSEC)
        rounds = metrics.get("gossip_rounds_total").value - before
        # One protocol round per interval -- the double-chain bug
        # would count ~2x.
        assert rounds == 10

    def test_stopped_service_goes_quiet(self, cluster):
        cluster.run_for(50 * MSEC)
        cluster.membership.stop()
        metrics = cluster.sim.telemetry.registry("cluster")
        before = metrics.get("gossip_rounds_total").value
        cluster.run_for(100 * MSEC)
        assert metrics.get("gossip_rounds_total").value == before


class TestLateJoin:
    def test_direct_insert_is_not_declared_dead(self, cluster):
        """Regression: a node added to ``cluster.nodes`` after start()
        had no ``last_seen`` entry, so the next check read
        silence-since-t0 and declared it dead on arrival."""
        cluster.run_for(50 * MSEC)
        node = ClusterNode("node3", cluster.sim, cluster.transport)
        node.start_timer(MSEC)
        node.membership = cluster.membership
        cluster.nodes["node3"] = node
        cluster.run_for(100 * MSEC)
        assert not cluster.membership.is_dead("node3")
        assert "node3" in cluster.membership.members()

    def test_add_node_joins_and_hosts_components(self):
        cluster = Cluster(("node0", "node1"), seed=5)
        try:
            cluster.run_for(30 * MSEC)
            cluster.add_node("node2")
            cluster.run_for(60 * MSEC)
            assert not cluster.membership.is_dead("node2")
            target = cluster.deploy(make_descriptor_xml(
                "LATE00", cpuusage=0.1), node="node2")
            assert target == "node2"
            cluster.run_for(30 * MSEC)
            from repro.core import ComponentState
            assert cluster.node("node2").drcr.component_state(
                "LATE00") is ComponentState.ACTIVE
        finally:
            cluster.shutdown()

    def test_add_node_rejects_taken_names(self, cluster):
        from repro.cluster import ClusterError
        with pytest.raises(ClusterError):
            cluster.add_node("node1")
        with pytest.raises(ClusterError):
            cluster.add_node("control")
