"""Tests for the SWIM gossip protocol: suspicion, refutation,
indirect probing, and message complexity."""


from repro.cluster import Cluster, LinkSpec
from repro.sim.engine import MSEC


def _cluster_metric(cluster, name):
    return cluster.sim.telemetry.registry("cluster").get(name).value


class TestLossyLinks:
    def test_probe_loss_does_not_kill_healthy_nodes(self):
        """A uniformly lossy fleet must not produce false positives:
        lost direct probes escalate to indirect pings, and a node a
        quarter of whose packets vanish is still heard often enough."""
        cluster = Cluster(
            ("node0", "node1", "node2", "node3"), seed=9,
            heartbeat_interval_ns=10 * MSEC, miss_limit=3,
            link=LinkSpec(latency_ns=500_000, drop_probability=0.25))
        try:
            cluster.run_for(800 * MSEC)
            assert cluster.membership.declared_dead == set()
            assert _cluster_metric(cluster, "nodes_fenced_total") == 0
            # The loss rate forced the indirect path to carry weight.
            assert _cluster_metric(
                cluster, "indirect_probes_total") > 0
            assert _cluster_metric(
                cluster, "messages_dropped_total") > 0
        finally:
            cluster.shutdown()

    def test_suspicion_is_refuted_not_fatal(self):
        """With this seed a node is suspected at least once during the
        lossy run; gossip carries the suspicion to the subject, which
        refutes with a bumped incarnation instead of dying."""
        cluster = Cluster(
            ("node0", "node1", "node2"), seed=9,
            heartbeat_interval_ns=10 * MSEC, miss_limit=3,
            link=LinkSpec(latency_ns=500_000, drop_probability=0.25))
        try:
            cluster.run_for(800 * MSEC)
            assert _cluster_metric(cluster, "suspicions_total") >= 1
            assert _cluster_metric(cluster, "refutations_total") >= 1
            assert cluster.membership.declared_dead == set()
            assert not any(cluster.membership.is_suspect(name)
                           for name in cluster.nodes)
        finally:
            cluster.shutdown()


class TestPartitionHealing:
    def _make(self):
        # miss_limit=5: a 50 ms staleness deadline leaves room to heal
        # a 35 ms partition while the suspicion is still pending.
        return Cluster(("node0", "node1", "node2"), seed=0,
                       heartbeat_interval_ns=10 * MSEC, miss_limit=5)

    def test_heal_mid_suspicion_refutation_beats_fencing(self):
        """A partition long enough to raise suspicion but shorter than
        the staleness deadline must end in refutation: the healed node
        hears it is suspected, bumps its incarnation, and is never
        declared dead or fenced."""
        cluster = self._make()
        try:
            cluster.run_for(50 * MSEC)
            cluster.transport.partition("node2", "node0")
            cluster.transport.partition("node2", "node1")
            cluster.run_for(35 * MSEC)
            assert cluster.membership.is_suspect("node2")
            assert not cluster.membership.is_dead("node2")
            cluster.transport.heal("node2", "node0")
            cluster.transport.heal("node2", "node1")
            cluster.run_for(150 * MSEC)
            assert not cluster.membership.is_dead("node2")
            assert not cluster.membership.is_suspect("node2")
            assert _cluster_metric(
                cluster, "nodes_fenced_total") == 0
            assert _cluster_metric(
                cluster, "refutations_total") >= 1
            # Refutation is what bumped the incarnation.
            assert cluster.membership.incarnation("node2") >= 1
        finally:
            cluster.shutdown()

    def test_partition_past_deadline_still_kills(self):
        """Same topology, but the partition outlives the staleness
        deadline: suspicion hardens into death and failover runs."""
        cluster = self._make()
        try:
            cluster.run_for(50 * MSEC)
            cluster.transport.partition("node2", "node0")
            cluster.transport.partition("node2", "node1")
            cluster.run_for(120 * MSEC)
            assert cluster.membership.is_dead("node2")
        finally:
            cluster.shutdown()


class TestReadmit:
    def test_readmitted_node_hosts_new_deployments(self):
        """After fence + readmit the node is a first-class member
        again: alive in the view, eligible for placement, and able to
        run a fresh deployment."""
        from conftest import make_descriptor_xml
        from repro.core import ComponentState

        cluster = Cluster(("node0", "node1", "node2"), seed=17,
                          heartbeat_interval_ns=10 * MSEC,
                          miss_limit=3)
        try:
            cluster.run_for(50 * MSEC)
            cluster.transport.partition("node2", "node0")
            cluster.transport.partition("node2", "node1")
            cluster.run_for(100 * MSEC)
            assert cluster.membership.is_dead("node2")
            cluster.transport.heal("node2", "node0")
            cluster.transport.heal("node2", "node1")
            cluster.run_for(100 * MSEC)
            assert cluster.membership.fence_acked("node2")
            cluster.membership.readmit("node2")
            cluster.run_for(50 * MSEC)
            assert not cluster.membership.is_dead("node2")
            target = cluster.deploy(make_descriptor_xml(
                "BACK00", cpuusage=0.1), node="node2")
            assert target == "node2"
            cluster.run_for(30 * MSEC)
            assert cluster.node("node2").drcr.component_state(
                "BACK00") is ComponentState.ACTIVE
            # Readmission bumped the incarnation so stale DEAD gossip
            # cannot re-kill the node.
            assert cluster.membership.incarnation("node2") >= 1
        finally:
            cluster.shutdown()


class TestMessageComplexity:
    def _idle_rate(self, n, seed=3):
        """Steady-state cluster messages per heartbeat interval for an
        idle n-node fleet (kernel timers muted by a long period)."""
        names = ["node%02d" % index for index in range(n)]
        cluster = Cluster(names, seed=seed,
                          heartbeat_interval_ns=10 * MSEC,
                          miss_limit=3,
                          timer_period_ns=10_000 * MSEC)
        try:
            cluster.run_for(100 * MSEC)  # converge digests/pulls
            before = _cluster_metric(cluster, "messages_sent_total")
            cluster.run_for(200 * MSEC)  # 20 intervals
            after = _cluster_metric(cluster, "messages_sent_total")
            return (after - before) / 20.0
        finally:
            cluster.shutdown()

    def test_per_interval_traffic_grows_subquadratically(self):
        """Doubling the fleet must not quadruple the per-interval
        message count -- the SWIM probe budget is O(n), unlike the old
        full heartbeat mesh's O(n^2)."""
        rate_small = self._idle_rate(8)
        rate_large = self._idle_rate(16)
        ratio = rate_large / rate_small
        # Linear doubles (2.0); the old mesh quadrupled (4.0).  Allow
        # headroom for the gossip piggyback tail.
        assert ratio < 3.0

    def test_same_seed_is_deterministic(self):
        assert self._idle_rate(8, seed=11) == \
            self._idle_rate(8, seed=11)


class TestIncarnations:
    def test_incarnations_start_at_zero(self):
        cluster = Cluster(("node0", "node1", "node2"), seed=17)
        try:
            cluster.run_for(100 * MSEC)
            for name in cluster.nodes:
                assert cluster.membership.incarnation(name) == 0
        finally:
            cluster.shutdown()
